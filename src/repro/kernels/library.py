"""Concrete radial kernels.

The Gaussian RBF is the kernel the paper uses in all experiments
(``w_ij = exp(-||X_i - X_j||^2 / sigma^2)``, with ``sigma = h_n``); note it
violates the compact-support condition (ii) of Theorem II.1 — the paper's
synthetic experiments satisfy it only because the inputs themselves are
truncated to ``[0, 1]^p``.  The compactly-supported kernels here
(truncated Gaussian, boxcar, Epanechnikov, triangular, tricube, cosine)
satisfy all three conditions exactly and are used in the kernel ablation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernels.base import RadialKernel
from repro.utils.validation import check_positive_scalar

__all__ = [
    "GaussianKernel",
    "TruncatedGaussianKernel",
    "BoxcarKernel",
    "EpanechnikovKernel",
    "TriangularKernel",
    "TricubeKernel",
    "CosineKernel",
    "CauchyKernel",
    "kernel_by_name",
]


class GaussianKernel(RadialKernel):
    """Gaussian RBF profile ``exp(-r^2)``.

    With the library's scaling convention this yields
    ``w_ij = exp(-||X_i - X_j||^2 / h^2)``, matching the paper's RBF with
    ``sigma = h``.  Violates condition (ii): support is all of R^d.
    """

    name = "gaussian"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        return np.exp(-np.square(radii))

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return math.inf

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        # K(u) = exp(-1) on the unit ball boundary, so (e^-1, 1) is valid.
        return (math.exp(-1.0), 1.0)


class TruncatedGaussianKernel(RadialKernel):
    """Gaussian profile cut to zero beyond ``cutoff`` radii.

    ``K(u) = exp(-||u||^2)`` for ``||u|| <= cutoff``, else 0.  Satisfies all
    three theorem conditions; the natural "fix" that makes the paper's RBF
    experiments literally satisfy Theorem II.1.
    """

    name = "truncated_gaussian"

    def __init__(self, cutoff: float = 3.0):
        self.cutoff = check_positive_scalar(cutoff, "cutoff")

    def profile(self, radii: np.ndarray) -> np.ndarray:
        values = np.exp(-np.square(radii))
        return np.where(radii <= self.cutoff, values, 0.0)

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return self.cutoff

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        delta = min(1.0, self.cutoff)
        return (math.exp(-delta * delta), delta)

    def __repr__(self) -> str:
        return f"TruncatedGaussianKernel(cutoff={self.cutoff!r})"


class BoxcarKernel(RadialKernel):
    """Uniform (boxcar) profile: 1 inside the unit ball, 0 outside.

    The kernel under which the hard criterion's Nadaraya-Watson link is a
    plain local average of labels within distance ``h``.
    """

    name = "boxcar"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        return (radii <= 1.0).astype(np.float64)

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return 1.0

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        return (1.0, 1.0)


class EpanechnikovKernel(RadialKernel):
    """Epanechnikov profile ``max(0, 1 - r^2)`` — MSE-optimal in 1-d KDE."""

    name = "epanechnikov"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.square(radii))

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return 1.0

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        return (0.75, 0.5)


class TriangularKernel(RadialKernel):
    """Triangular profile ``max(0, 1 - r)``."""

    name = "triangular"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - radii)

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return 1.0

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        return (0.5, 0.5)


class TricubeKernel(RadialKernel):
    """Tricube profile ``(1 - r^3)^3`` on the unit ball (LOESS weighting)."""

    name = "tricube"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        inside = np.maximum(0.0, 1.0 - np.power(radii, 3))
        return np.power(inside, 3)

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return 1.0

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        # At r = 0.5: (1 - 0.125)^3 = 0.669921875.
        return (0.669921875, 0.5)


class CosineKernel(RadialKernel):
    """Cosine profile ``cos(pi r / 2)`` on the unit ball."""

    name = "cosine"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        values = np.cos(np.pi * radii / 2.0)
        return np.where(radii <= 1.0, np.maximum(values, 0.0), 0.0)

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return 1.0

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        # cos(pi/4) = sqrt(2)/2 at r = 0.5.
        return (math.sqrt(2.0) / 2.0, 0.5)


class CauchyKernel(RadialKernel):
    """Cauchy profile ``1 / (1 + r^2)``.

    Heavy-tailed and *not* compactly supported; included to demonstrate a
    kernel that fails condition (ii) badly (its tails never vanish), for
    the kernel ablation.
    """

    name = "cauchy"

    def profile(self, radii: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.square(radii))

    @property
    def upper_bound(self) -> float:
        return 1.0

    @property
    def support_radius(self) -> float:
        return math.inf

    @property
    def ball_lower_bound(self) -> tuple[float, float]:
        return (0.5, 1.0)


_REGISTRY: dict[str, type[RadialKernel]] = {
    cls.name: cls
    for cls in (
        GaussianKernel,
        TruncatedGaussianKernel,
        BoxcarKernel,
        EpanechnikovKernel,
        TriangularKernel,
        TricubeKernel,
        CosineKernel,
        CauchyKernel,
    )
}


def kernel_by_name(name: str, **kwargs) -> RadialKernel:
    """Instantiate a kernel from its registry name.

    >>> kernel_by_name("gaussian")
    GaussianKernel()
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown kernel {name!r}; known kernels: {known}") from None
    return cls(**kwargs)
