"""Bandwidth selection rules.

Theorem II.1 requires ``h_n -> 0`` with ``n h_n^d -> inf``.  The paper's
synthetic experiments use ``h_n = (log n / n)^(1/d)`` with ``d = 5``
(:func:`paper_bandwidth_rule`), which satisfies both limits.  The COIL
experiment instead sets ``sigma^2`` to the median of pairwise squared
distances (:func:`median_heuristic`).  Scott's and Silverman's rules and a
k-NN distance rule are provided for the bandwidth ablation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DataValidationError
from repro.kernels.base import pairwise_sq_distances
from repro.utils.validation import check_matrix_2d

__all__ = [
    "paper_bandwidth_rule",
    "median_heuristic",
    "scott_rule",
    "silverman_rule",
    "knn_distance_rule",
]


def paper_bandwidth_rule(n: int, dim: int) -> float:
    """The paper's bandwidth: ``h_n = (log n / n)^(1/d)``.

    Satisfies the theorem's two limits: ``h_n -> 0`` and
    ``n h_n^d = log n -> inf``.

    Parameters
    ----------
    n:
        Number of *labeled* samples (must be >= 2 so that ``log n > 0``).
    dim:
        Input dimension ``d``.
    """
    if n < 2:
        raise DataValidationError(f"paper bandwidth rule requires n >= 2, got {n}")
    if dim < 1:
        raise DataValidationError(f"dim must be >= 1, got {dim}")
    return float((math.log(n) / n) ** (1.0 / dim))


def median_heuristic(x: np.ndarray, *, subsample: int | None = None, seed=None) -> float:
    """Bandwidth from the median pairwise distance.

    Returns ``h = sqrt(median ||x_i - x_j||^2)`` over distinct pairs, so
    that the Gaussian kernel's ``sigma^2 = h^2`` equals the median squared
    distance — exactly the paper's COIL setting.

    Parameters
    ----------
    x:
        Input matrix ``(n, d)`` with ``n >= 2``.
    subsample:
        If given and smaller than ``n``, compute the median over a random
        subsample of rows of this size (for large inputs).
    seed:
        Seed for the subsample draw.
    """
    x = check_matrix_2d(x, "x")
    if x.shape[0] < 2:
        raise DataValidationError("median heuristic requires at least 2 samples")
    if subsample is not None and subsample < x.shape[0]:
        if subsample < 2:
            raise DataValidationError("subsample must be >= 2")
        from repro.utils.rng import as_rng

        idx = as_rng(seed).choice(x.shape[0], size=subsample, replace=False)
        x = x[idx]
    sq = pairwise_sq_distances(x)
    off_diag = sq[np.triu_indices(x.shape[0], k=1)]
    med = float(np.median(off_diag))
    if med <= 0:
        raise DataValidationError(
            "median pairwise distance is zero (all inputs identical); "
            "choose the bandwidth manually"
        )
    return math.sqrt(med)


def _spread(x: np.ndarray) -> float:
    """Robust per-coordinate spread: mean over dims of min(std, IQR/1.349)."""
    stds = np.std(x, axis=0, ddof=1)
    q75, q25 = np.percentile(x, [75, 25], axis=0)
    iqr_scaled = (q75 - q25) / 1.349
    spread = np.where(iqr_scaled > 0, np.minimum(stds, iqr_scaled), stds)
    value = float(np.mean(spread))
    if value <= 0:
        raise DataValidationError(
            "data spread is zero (constant inputs); choose the bandwidth manually"
        )
    return value


def scott_rule(x: np.ndarray) -> float:
    """Scott's multivariate rule: ``h = spread * n^(-1/(d+4))``."""
    x = check_matrix_2d(x, "x")
    n, d = x.shape
    if n < 2:
        raise DataValidationError("scott rule requires at least 2 samples")
    return _spread(x) * n ** (-1.0 / (d + 4))


def silverman_rule(x: np.ndarray) -> float:
    """Silverman's multivariate rule: ``h = spread * (4/(d+2))^(1/(d+4)) * n^(-1/(d+4))``."""
    x = check_matrix_2d(x, "x")
    n, d = x.shape
    if n < 2:
        raise DataValidationError("silverman rule requires at least 2 samples")
    return _spread(x) * (4.0 / (d + 2)) ** (1.0 / (d + 4)) * n ** (-1.0 / (d + 4))


def knn_distance_rule(x: np.ndarray, k: int = 7) -> float:
    """Bandwidth as the mean distance to the k-th nearest neighbour.

    A local-scale rule common in spectral clustering; with this bandwidth
    every point has roughly ``k`` strong graph neighbours.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    if not 1 <= k < n:
        raise DataValidationError(f"k must satisfy 1 <= k < n; got k={k}, n={n}")
    sq = pairwise_sq_distances(x)
    np.fill_diagonal(sq, np.inf)
    kth = np.partition(sq, kth=k - 1, axis=1)[:, k - 1]
    value = float(np.mean(np.sqrt(kth)))
    if value <= 0:
        raise DataValidationError(
            "k-NN distances are all zero (duplicate inputs); "
            "choose the bandwidth manually"
        )
    return value
