"""Radial kernel base class and pairwise-distance helpers."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_matrix_2d, check_positive_scalar

__all__ = [
    "RadialKernel",
    "KernelConditionReport",
    "pairwise_sq_distances",
    "CHUNK_AUTO_ELEMENTS",
    "CHUNK_AUTO_BYTES",
]

#: ``pairwise_sq_distances`` switches from the one-shot expression to
#: row-blocked computation once the output exceeds this many *float64*
#: elements (4M doubles = 32 MB): beyond it the one-shot path's
#: *temporaries* (``x @ y.T``, the broadcast sum) would triple the peak
#: footprint.  Below it the historical expression runs unchanged
#: (bit-identical).
CHUNK_AUTO_ELEMENTS = 2**22

#: The auto-chunk rule measured in *bytes*: the cutoff is 32 MB of
#: output regardless of dtype, so a float32 output (4-byte elements)
#: chunks at ``2**23`` elements — twice as many as float64.  The
#: element-count constant above is the float64 specialization kept for
#: backwards compatibility.
CHUNK_AUTO_BYTES = CHUNK_AUTO_ELEMENTS * 8


def _as_2d_floating(array, name: str) -> np.ndarray:
    """Validate a 2-d finite matrix, preserving float32 inputs.

    Everything else goes through :func:`check_matrix_2d` and lands as
    float64, exactly as before; float32 ndarrays keep their dtype so the
    mixed-precision paths never pay a silent 2x memory upcast.
    """
    arr = np.asarray(array)
    if arr.dtype != np.float32:
        return check_matrix_2d(arr, name)
    if arr.ndim != 2:
        raise DataValidationError(f"{name} must be 2-d, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        bad = int(np.sum(~np.isfinite(arr)))
        raise DataValidationError(
            f"{name} contains {bad} non-finite (NaN/inf) entries"
        )
    return arr


def _fill_sq_blocked(x, y, x_norms, y_norms, out, block_rows: int) -> None:
    """Row-blocked ``||x_i - y_j||^2`` into ``out``, no (n, m) temporaries.

    One scratch buffer of ``(block_rows, m)`` is reused across blocks;
    each block costs a GEMM plus three in-place element passes.
    """
    n, m = out.shape
    y_t = y.T
    scratch = np.empty((min(block_rows, n), m), dtype=out.dtype)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block = scratch[: stop - start]
        np.matmul(x[start:stop], y_t, out=block)
        block *= -2.0
        block += x_norms[start:stop, None]
        block += y_norms[None, :]
        np.maximum(block, 0.0, out=block)
        out[start:stop] = block


def pairwise_sq_distances(
    x: np.ndarray,
    y: np.ndarray | None = None,
    *,
    chunk_size: int | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances between rows of ``x`` and rows of ``y``.

    Parameters
    ----------
    x:
        Array of shape ``(n, d)``.
    y:
        Optional array of shape ``(m, d)``; defaults to ``x``.
    chunk_size:
        Rows per computation block.  ``None`` (default) picks
        automatically: outputs up to :data:`CHUNK_AUTO_BYTES` (32 MB —
        :data:`CHUNK_AUTO_ELEMENTS` float64 elements, twice that many
        float32 elements, since the rule accounts for the dtype width)
        use the historical one-shot expression (bit-identical to
        previous releases); larger outputs are computed in row blocks
        sized to keep temporaries near 32 MB, avoiding the 3x
        peak-memory spike of the one-shot temporaries.  An explicit
        positive integer forces blocked computation with that many rows
        per block.
    out:
        Optional preallocated ``(n, m)`` output array matching the
        result dtype, for callers that reuse one buffer across repeated
        computations.

    Returns
    -------
    ndarray of shape ``(n, m)`` with entries ``||x_i - y_j||^2``, clipped at
    zero to remove tiny negative values from floating-point cancellation.
    The result is float32 when *both* inputs are float32 ndarrays and
    float64 otherwise (inputs are validated and coerced exactly as
    before for every other dtype).
    """
    x = _as_2d_floating(x, "x")
    if y is None:
        y = x
    else:
        y = _as_2d_floating(y, "y")
        if y.shape[1] != x.shape[1]:
            raise DataValidationError(
                f"x and y must have the same number of columns; "
                f"got {x.shape[1]} and {y.shape[1]}"
            )
    dtype = np.promote_types(x.dtype, y.dtype)
    if dtype != np.float32:
        dtype = np.dtype(np.float64)
        x = np.asarray(x, dtype=np.float64)
        y = x if y is x else np.asarray(y, dtype=np.float64)
    n, m = x.shape[0], y.shape[0]
    if chunk_size is not None and (int(chunk_size) != chunk_size or chunk_size < 1):
        raise DataValidationError(
            f"chunk_size must be a positive integer, got {chunk_size!r}"
        )
    if out is not None:
        if out.shape != (n, m) or out.dtype != dtype:
            raise DataValidationError(
                f"out must be a {dtype} array of shape {(n, m)}, "
                f"got shape {out.shape} dtype {out.dtype}"
            )
    x_norms = np.einsum("ij,ij->i", x, x)
    y_norms = np.einsum("ij,ij->i", y, y)
    # The auto rule is byte-based: 32 MB of output at the result dtype's
    # width (2^22 elements for float64, 2^23 for float32).
    auto_elements = CHUNK_AUTO_BYTES // dtype.itemsize
    if chunk_size is None and n * m <= auto_elements:
        sq = x_norms[:, None] + y_norms[None, :] - 2.0 * (x @ y.T)
        np.maximum(sq, 0.0, out=sq)
        if out is not None:
            out[...] = sq
            sq = out
    else:
        if out is None:
            out = np.empty((n, m), dtype=dtype)
        block_rows = (
            int(chunk_size)
            if chunk_size is not None
            else max(1, auto_elements // max(1, m))
        )
        _fill_sq_blocked(x, y, x_norms, y_norms, out, block_rows)
        sq = out
    if y is x:
        np.fill_diagonal(sq, 0.0)
    return sq


@dataclass(frozen=True)
class KernelConditionReport:
    """Which of Theorem II.1's kernel conditions (i)-(iii) a kernel meets.

    Attributes
    ----------
    bounded:
        Condition (i): ``K <= k* < inf``.
    compact_support:
        Condition (ii): ``K(u) = 0`` outside a bounded set.
    lower_bounded_on_ball:
        Condition (iii): ``K >= beta`` on a ball of radius ``delta > 0``.
    """

    bounded: bool
    compact_support: bool
    lower_bounded_on_ball: bool

    @property
    def all_satisfied(self) -> bool:
        return self.bounded and self.compact_support and self.lower_bounded_on_ball

    def summary(self) -> str:
        """One-line human-readable report."""
        marks = {True: "yes", False: "NO"}
        return (
            f"(i) bounded: {marks[self.bounded]}; "
            f"(ii) compact support: {marks[self.compact_support]}; "
            f"(iii) >= beta on a ball: {marks[self.lower_bounded_on_ball]}"
        )


class RadialKernel(abc.ABC):
    """A radial kernel ``K(u) = profile(||u||)``.

    Subclasses implement :meth:`profile` on non-negative radii and declare
    the theorem constants via properties.  The kernel is evaluated on
    *scaled* differences: the similarity between inputs is
    ``K((X_i - X_j) / h) = profile(||X_i - X_j|| / h)``.
    """

    #: Short registry name, set by subclasses.
    name: str = "radial"

    @abc.abstractmethod
    def profile(self, radii: np.ndarray) -> np.ndarray:
        """Evaluate the radial profile on an array of non-negative radii."""

    @property
    @abc.abstractmethod
    def upper_bound(self) -> float:
        """Condition (i) constant ``k*``: a finite upper bound of ``K``."""

    @property
    @abc.abstractmethod
    def support_radius(self) -> float:
        """Radius beyond which ``K`` vanishes; ``inf`` for full support."""

    @property
    @abc.abstractmethod
    def ball_lower_bound(self) -> tuple[float, float]:
        """A valid condition-(iii) pair ``(beta, delta)``.

        ``K(u) >= beta`` whenever ``||u|| <= delta``.  Every kernel in this
        library is positive and non-increasing near the origin, so such a
        pair always exists; the theorem's constants ``M`` and ``s`` are
        built from it in :mod:`repro.core.theory`.
        """

    # ------------------------------------------------------------------
    # Concrete API
    # ------------------------------------------------------------------

    def __call__(self, diffs: np.ndarray) -> np.ndarray:
        """Evaluate ``K`` on an array of difference vectors ``(..., d)``."""
        diffs = np.asarray(diffs, dtype=np.float64)
        radii = np.sqrt(np.einsum("...j,...j->...", diffs, diffs))
        return self.evaluate_radii(radii)

    def evaluate_radii(self, radii) -> np.ndarray:
        """Evaluate the profile, validating non-negative radii."""
        radii = np.asarray(radii, dtype=np.float64)
        if radii.size and radii.min() < 0:
            raise DataValidationError("radii must be non-negative")
        return self.profile(radii)

    def gram(
        self,
        x: np.ndarray,
        y: np.ndarray | None = None,
        *,
        bandwidth: float,
    ) -> np.ndarray:
        """Kernel matrix ``W[i, j] = K((x_i - y_j) / bandwidth)``.

        When ``y`` is ``None`` the matrix is the symmetric Gram matrix of
        ``x`` with unit diagonal (for kernels with ``profile(0) = 1``).
        """
        bandwidth = check_positive_scalar(bandwidth, "bandwidth")
        sq = pairwise_sq_distances(x, y)
        radii = np.sqrt(sq) / bandwidth
        return self.profile(radii)

    def theorem_conditions(self) -> KernelConditionReport:
        """Report conditions (i)-(iii) of Theorem II.1 for this kernel."""
        beta, delta = self.ball_lower_bound
        return KernelConditionReport(
            bounded=math.isfinite(self.upper_bound),
            compact_support=math.isfinite(self.support_radius),
            lower_bounded_on_ball=(beta > 0 and delta > 0),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
