"""Kernel functions and bandwidth selection.

The paper builds the similarity matrix ``W`` from a kernel function via
``w_ij = K((X_i - X_j) / h_n)`` where ``h_n`` is a bandwidth.  Theorem II.1
requires ``K`` to satisfy three conditions:

(i)   ``K`` is bounded by some ``k* < inf``;
(ii)  the support of ``K`` is compact;
(iii) ``K >= beta * 1_B`` for some ``beta > 0`` on a closed ball ``B`` of
      radius ``delta > 0`` centered at the origin.

Every kernel class here records the constants ``k*``, the support radius,
and a valid ``(beta, delta)`` pair, and reports which conditions hold via
:meth:`~repro.kernels.base.RadialKernel.theorem_conditions`.
"""

from repro.kernels.bandwidth import (
    knn_distance_rule,
    median_heuristic,
    paper_bandwidth_rule,
    scott_rule,
    silverman_rule,
)
from repro.kernels.base import (
    KernelConditionReport,
    RadialKernel,
    pairwise_sq_distances,
)
from repro.kernels.library import (
    BoxcarKernel,
    CauchyKernel,
    CosineKernel,
    EpanechnikovKernel,
    GaussianKernel,
    TriangularKernel,
    TricubeKernel,
    TruncatedGaussianKernel,
    kernel_by_name,
)

__all__ = [
    "RadialKernel",
    "KernelConditionReport",
    "pairwise_sq_distances",
    "GaussianKernel",
    "TruncatedGaussianKernel",
    "BoxcarKernel",
    "EpanechnikovKernel",
    "TriangularKernel",
    "TricubeKernel",
    "CosineKernel",
    "CauchyKernel",
    "kernel_by_name",
    "paper_bandwidth_rule",
    "median_heuristic",
    "scott_rule",
    "silverman_rule",
    "knn_distance_rule",
]
