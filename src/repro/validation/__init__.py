"""Numeric verification of the consistency proof's constructs (Section IV)."""

from repro.validation.consistency import ConsistencyCurve, run_consistency_curve
from repro.validation.proof_constructs import (
    PhiConcentration,
    ProofConstructSnapshot,
    proof_construct_snapshot,
    run_phi_concentration,
    run_proof_construct_sweep,
)

__all__ = [
    "ProofConstructSnapshot",
    "proof_construct_snapshot",
    "run_proof_construct_sweep",
    "PhiConcentration",
    "run_phi_concentration",
    "ConsistencyCurve",
    "run_consistency_curve",
]
