"""Numerical verification of the Section IV proof constructs.

The consistency proof decomposes the hard solution as

    f_(n+a) = NW_(n+a) - g_(n+a) + (S)_a D22^{-1} W21 Y_n

and establishes, with probability approaching one:

1. *tiny elements*: ``||D22^{-1} W22||_max <= M / (n h^d)``;
2. the Neumann series ``S = sum_k (D22^{-1} W22)^k`` converges with
   ``||S||_max <= 2M / (n h^d)``;
3. the NW-denominator correction ``g_(n+a)`` is bounded by
   ``sum_{k>n} w_{k,n+a} / d_{n+a} <= mM/(n h^d)`` and vanishes;
4. hence ``max_a |f_(n+a) - NW_(n+a)| -> 0``: the hard criterion inherits
   the Nadaraya-Watson estimator's consistency.

:func:`proof_construct_snapshot` measures every quantity on one sampled
problem; :func:`run_proof_construct_sweep` tracks them along a growing-n
schedule, which is the numerical content of the proof: each measured
quantity must shrink at (or below) its theoretical envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.kernels.library import GaussianKernel
from repro.utils.rng import spawn_rngs

__all__ = [
    "ProofConstructSnapshot",
    "proof_construct_snapshot",
    "run_proof_construct_sweep",
    "PhiConcentration",
    "run_phi_concentration",
]


@dataclass(frozen=True)
class ProofConstructSnapshot:
    """Every proof-tracked quantity measured on one sampled problem.

    Attributes
    ----------
    n, m, bandwidth:
        Problem size and the bandwidth used.
    tiny_elements_max:
        ``||D22^{-1} W22||_max`` (proof step 1's left-hand side).
    envelope:
        The scale ``1 / (n h^d)`` the proof's bound is proportional to.
    spectral_radius:
        Spectral radius of ``D22^{-1} W22`` (< 1 iff the Neumann series
        converges).
    neumann_max:
        ``||S||_max`` of the converged series (proof step 2).
    g_max:
        ``max_a |g_(n+a)|`` — the NW-denominator correction (step 3).
    g_envelope:
        The proof's bound on ``|g|``: ``max_a sum_{k>n} w_{k,n+a}/d_{n+a}``.
    hard_nw_gap:
        ``max_a |f_(n+a) - NW_(n+a)|`` (step 4's conclusion).
    """

    n: int
    m: int
    bandwidth: float
    tiny_elements_max: float
    envelope: float
    spectral_radius: float
    neumann_max: float
    g_max: float
    g_envelope: float
    hard_nw_gap: float


def proof_construct_snapshot(
    *,
    n_labeled: int,
    n_unlabeled: int,
    bandwidth: float | None = None,
    model: str = "model1",
    seed=None,
) -> ProofConstructSnapshot:
    """Measure the proof constructs on one draw of the paper's DGP."""
    data = make_synthetic_dataset(n_labeled, n_unlabeled, model=model, seed=seed)
    dim = data.x_labeled.shape[1]
    if bandwidth is None:
        bandwidth = paper_bandwidth_rule(n_labeled, dim)
    graph = full_kernel_graph(data.x_all, kernel=GaussianKernel(), bandwidth=bandwidth)
    weights = graph.dense_weights()
    n, m = n_labeled, n_unlabeled

    degrees = weights.sum(axis=1)
    w21 = weights[n:, :n]
    w22 = weights[n:, n:]
    d22 = degrees[n:]
    iterated = w22 / d22[:, None]  # D22^{-1} W22

    tiny_max = float(np.max(iterated))
    radius = float(np.max(np.abs(np.linalg.eigvals(iterated)))) if m else 0.0
    if radius < 1.0:
        neumann = np.linalg.inv(np.eye(m) - iterated) - np.eye(m)
        neumann_max = float(np.max(np.abs(neumann)))
    else:
        neumann_max = float("inf")

    # g_(n+a): difference between the NW denominator (labeled-only) and
    # the full degree d_{n+a}; its proof bound is the unlabeled weight mass.
    labeled_mass = w21.sum(axis=1)
    unlabeled_mass = w22.sum(axis=1)
    nw = nadaraya_watson_from_weights(weights, data.y_labeled)
    first_order = (w21 @ data.y_labeled) / d22
    g = nw - first_order
    g_envelope = float(np.max(unlabeled_mass / (labeled_mass + unlabeled_mass)))

    hard = solve_hard_criterion(weights, data.y_labeled, check_reachability=False)
    hard_nw_gap = float(np.max(np.abs(hard.unlabeled_scores - nw)))

    return ProofConstructSnapshot(
        n=n,
        m=m,
        bandwidth=float(bandwidth),
        tiny_elements_max=tiny_max,
        envelope=1.0 / (n * bandwidth**dim),
        spectral_radius=radius,
        neumann_max=neumann_max,
        g_max=float(np.max(np.abs(g))),
        g_envelope=g_envelope,
        hard_nw_gap=hard_nw_gap,
    )


@dataclass(frozen=True)
class PhiConcentration:
    """Concentration of the proof's ball-hit ratio ``Phi_n(a)``.

    The proof's first probabilistic step defines

        Phi_n(a) = sum_{i<=n} I{||X_i - X_{n+a}|| <= delta h} / (n p(X_{n+a}))

    and shows by Chebyshev that ``P(|Phi_n(a) - 1| >= eps)`` is at most
    ``1/(eps^2 s n h^d) -> 0``.  With *uniform* inputs on ``[0,1]^d``
    and interior query points, ``p(x) = V_d (delta h)^d`` exactly, so
    Phi is computable without estimating a density and the bound can be
    checked numerically.

    Attributes
    ----------
    n_values:
        Labeled sample sizes.
    exceedance:
        Empirical ``P(|Phi - 1| >= eps)`` per n.
    chebyshev_bound:
        The proof's bound ``1 / (eps^2 n p)`` per n.
    epsilon:
        The deviation threshold.
    """

    n_values: tuple[int, ...]
    exceedance: tuple[float, ...]
    chebyshev_bound: tuple[float, ...]
    epsilon: float

    @property
    def bound_holds(self) -> bool:
        """Empirical exceedance below the Chebyshev envelope everywhere."""
        return all(
            emp <= bound + 1e-12
            for emp, bound in zip(self.exceedance, self.chebyshev_bound)
        )

    @property
    def concentrates(self) -> bool:
        """Exceedance decreases from the smallest to the largest n."""
        return self.exceedance[-1] <= self.exceedance[0]


def run_phi_concentration(
    *,
    n_values: tuple[int, ...] = (100, 400, 1600),
    dim: int = 2,
    delta_h: float = 0.15,
    epsilon: float = 0.3,
    n_replicates: int = 200,
    seed=None,
) -> PhiConcentration:
    """Verify the proof's Chebyshev step under uniform inputs.

    Parameters
    ----------
    n_values:
        Labeled sizes to sweep (``n (delta h)^d`` should grow).
    dim:
        Input dimension (kept small so balls carry measurable mass).
    delta_h:
        The ball radius ``delta * h`` (held fixed across n for a clean
        comparison of the concentration rate).
    epsilon:
        Deviation threshold in ``P(|Phi - 1| >= eps)``.
    n_replicates:
        Independent (sample, query) draws per n.
    """
    from repro.core.theory import volume_unit_ball
    from repro.exceptions import ConfigurationError

    if not 0 < delta_h < 0.5:
        raise ConfigurationError(
            f"delta_h must be in (0, 0.5) so interior queries exist, "
            f"got {delta_h}"
        )
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    ball_mass = volume_unit_ball(dim) * delta_h**dim
    if ball_mass >= 1:
        raise ConfigurationError(
            "delta_h ball exceeds the unit cube; decrease delta_h or dim"
        )
    exceedance = []
    bounds = []
    for n, rng in zip(n_values, spawn_rngs(seed, len(n_values))):
        hits = 0
        for _ in range(n_replicates):
            x = rng.uniform(0.0, 1.0, size=(n, dim))
            query = rng.uniform(delta_h, 1.0 - delta_h, size=dim)
            count = int(
                np.sum(np.linalg.norm(x - query[None, :], axis=1) <= delta_h)
            )
            phi = count / (n * ball_mass)
            hits += abs(phi - 1.0) >= epsilon
        exceedance.append(hits / n_replicates)
        bounds.append(min(1.0, 1.0 / (epsilon**2 * n * ball_mass)))
    return PhiConcentration(
        n_values=tuple(n_values),
        exceedance=tuple(exceedance),
        chebyshev_bound=tuple(bounds),
        epsilon=epsilon,
    )


def run_proof_construct_sweep(
    *,
    n_values: tuple[int, ...] = (50, 100, 200, 400, 800),
    n_unlabeled: int = 20,
    seed=None,
) -> list[ProofConstructSnapshot]:
    """Measure the proof constructs along a growing-n schedule.

    With m fixed and the paper's bandwidth, every tracked quantity must
    shrink as n grows — the numerical shadow of "with probability
    approaching one".
    """
    if len(n_values) < 2:
        raise ConfigurationError("need at least two n values to see a trend")
    snapshots = []
    for n, rng in zip(n_values, spawn_rngs(seed, len(n_values))):
        snapshots.append(
            proof_construct_snapshot(n_labeled=n, n_unlabeled=n_unlabeled, seed=rng)
        )
    return snapshots
