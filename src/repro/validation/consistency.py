"""Empirical consistency curves.

Theorem II.1 says the hard criterion's unlabeled scores converge in
probability to the true regression function when ``m = o(n h_n^d)``.
:func:`run_consistency_curve` traces the empirical convergence: for a
growing-n schedule it estimates, over replicates, both the RMSE of the
hard criterion and of the Nadaraya-Watson estimator against the true
``q(X)``, plus the probability that the worst-case score error exceeds a
fixed epsilon (the literal definition of convergence in probability).
The curve must decrease in n, and the hard criterion must shadow NW —
the proof's mechanism made visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule

__all__ = ["ConsistencyCurve", "run_consistency_curve"]


@dataclass(frozen=True)
class ConsistencyCurve:
    """Empirical consistency trace along a growing-n schedule.

    Attributes
    ----------
    n_values:
        Labeled sample sizes.
    hard_rmse, nw_rmse:
        Mean RMSE of the hard criterion and of Nadaraya-Watson against
        the true regression function at each n.
    exceedance:
        Mean fraction of replicates where
        ``max_a |f_(n+a) - q(X_(n+a))| > epsilon``.
    epsilon:
        The threshold in the exceedance probability.
    n_replicates:
        Replicates per n.
    """

    n_values: tuple[int, ...]
    hard_rmse: tuple[float, ...]
    nw_rmse: tuple[float, ...]
    exceedance: tuple[float, ...]
    epsilon: float
    n_replicates: int

    @property
    def rmse_decreases(self) -> bool:
        """Overall downward RMSE trend (first vs last grid point)."""
        return self.hard_rmse[-1] < self.hard_rmse[0]

    def to_rows(self) -> list[list]:
        return [
            [n, hard, nw, prob]
            for n, hard, nw, prob in zip(
                self.n_values, self.hard_rmse, self.nw_rmse, self.exceedance
            )
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["n", "hard_rmse", "nw_rmse", "P(max err > eps)"]


def _consistency_replicate(
    rng, *, n: int, n_unlabeled: int, model: str, epsilon: float
) -> dict[str, float]:
    """One consistency-curve replicate (module-level so it pickles for n_jobs)."""
    data = make_synthetic_dataset(n, n_unlabeled, model=model, seed=rng)
    bandwidth = paper_bandwidth_rule(n, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    hard = solve_hard_criterion(
        graph.weights, data.y_labeled, check_reachability=False
    )
    nw = nadaraya_watson_from_weights(graph.weights, data.y_labeled)
    errors = np.abs(hard.unlabeled_scores - data.q_unlabeled)
    return {
        "hard_rmse": float(np.sqrt(np.mean(errors**2))),
        "nw_rmse": float(
            np.sqrt(np.mean((nw - data.q_unlabeled) ** 2))
        ),
        "exceed": float(np.max(errors) > epsilon),
    }


def run_consistency_curve(
    *,
    n_values: tuple[int, ...] = (25, 50, 100, 200, 400, 800),
    n_unlabeled: int = 20,
    epsilon: float = 0.35,
    model: str = "model1",
    n_replicates: int = 100,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> ConsistencyCurve:
    """Trace empirical consistency of the hard criterion along growing n."""
    if len(n_values) < 2:
        raise ConfigurationError("need at least two n values to see a trend")
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")

    hard_rmse = []
    nw_rmse = []
    exceedance = []
    for j, n in enumerate(n_values):
        summary = run_replicates(
            partial(
                _consistency_replicate,
                n=n,
                n_unlabeled=n_unlabeled,
                model=model,
                epsilon=epsilon,
            ),
            n_replicates=n_replicates,
            seed=None if seed is None else (hash((seed, j)) % (2**32)),
            n_jobs=n_jobs,
            label=f"consistency[n={n}]",
            progress=progress,
        )
        hard_rmse.append(summary.means["hard_rmse"])
        nw_rmse.append(summary.means["nw_rmse"])
        exceedance.append(summary.means["exceed"])
    return ConsistencyCurve(
        n_values=tuple(n_values),
        hard_rmse=tuple(hard_rmse),
        nw_rmse=tuple(nw_rmse),
        exceedance=tuple(exceedance),
        epsilon=epsilon,
        n_replicates=n_replicates,
    )
