"""Incremental label acquisition for the hard criterion.

Re-solving Eq. (5) after labeling one more vertex costs O(m^3).  The
Gaussian-field view gives the same update in O(m^2): the harmonic
solution is the posterior mean of a Gaussian field, so clamping one more
vertex ``k`` to a value ``y`` is *conditioning* the Gaussian, with the
standard closed-form update

    mean'  = mean_{-k} + (y - mean_k) * Sigma_{-k,k} / Sigma_{kk}
    Sigma' = Sigma_{-k,-k} - Sigma_{-k,k} Sigma_{k,-k} / Sigma_{kk}.

:class:`IncrementalHarmonicLabeler` maintains the posterior and applies
these updates per observation; the test suite verifies the result equals
a from-scratch Eq. (5) solve with the enlarged labeled set after every
step.  This is the engine that makes pool-based active learning with
per-step retraining affordable.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertainty import GaussianFieldPosterior, gaussian_field_posterior
from repro.exceptions import DataValidationError

__all__ = ["IncrementalHarmonicLabeler"]


class IncrementalHarmonicLabeler:
    """Maintains the hard-criterion solution under one-by-one labeling.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, initially-labeled vertices
        first.
    y_labeled:
        The initial ``n`` observed responses.

    Notes
    -----
    Unlabeled vertices are tracked by their *original* index in the full
    vertex set; :meth:`observe` takes original indices, so callers need
    no bookkeeping as the unlabeled set shrinks.
    """

    def __init__(self, weights, y_labeled):
        posterior = gaussian_field_posterior(weights, y_labeled)
        n = posterior.n_labeled
        total = posterior.mean.shape[0] + n
        self._mean = posterior.mean.copy()
        self._covariance = posterior.covariance.copy()
        #: original vertex index of each remaining unlabeled position
        self._vertices = list(range(n, total))
        self._observed: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def unlabeled_vertices(self) -> tuple[int, ...]:
        """Original indices of the still-unlabeled vertices."""
        return tuple(self._vertices)

    @property
    def scores(self) -> np.ndarray:
        """Current harmonic scores of the remaining unlabeled vertices."""
        return self._mean.copy()

    @property
    def variances(self) -> np.ndarray:
        """Current posterior variances of the remaining unlabeled vertices."""
        return np.diagonal(self._covariance).copy()

    @property
    def observed(self) -> dict[int, float]:
        """Labels acquired so far, keyed by original vertex index."""
        return dict(self._observed)

    def score_of(self, vertex: int) -> float:
        """Current score of one unlabeled vertex (by original index)."""
        return float(self._mean[self._position(vertex)])

    def _position(self, vertex: int) -> int:
        try:
            return self._vertices.index(vertex)
        except ValueError:
            raise DataValidationError(
                f"vertex {vertex} is not an unlabeled vertex "
                f"(already observed or initially labeled)"
            ) from None

    # ------------------------------------------------------------------
    # The O(m^2) update
    # ------------------------------------------------------------------

    def observe(self, vertex: int, value: float) -> "IncrementalHarmonicLabeler":
        """Clamp one unlabeled vertex to an observed value.

        Applies exact Gaussian conditioning; after this call ``scores``
        equals the hard-criterion solution with the enlarged labeled
        set, and ``vertex`` leaves the unlabeled set.
        """
        if not np.isfinite(value):
            raise DataValidationError(f"value must be finite, got {value}")
        k = self._position(vertex)
        variance_k = self._covariance[k, k]
        if variance_k <= 0:
            raise DataValidationError(
                f"vertex {vertex} has non-positive posterior variance "
                f"{variance_k}; the field is degenerate there"
            )
        column = self._covariance[:, k].copy()
        gain = column / variance_k
        self._mean = self._mean + (float(value) - self._mean[k]) * gain
        self._covariance = self._covariance - np.outer(gain, column)
        # Symmetrize to stop floating-point drift over many updates.
        self._covariance = 0.5 * (self._covariance + self._covariance.T)

        keep = np.arange(self._mean.shape[0]) != k
        self._mean = self._mean[keep]
        self._covariance = self._covariance[np.ix_(keep, keep)]
        self._vertices.pop(k)
        self._observed[int(vertex)] = float(value)
        return self

    def posterior(self, field_scale: float = 1.0) -> GaussianFieldPosterior:
        """Snapshot the current state as a :class:`GaussianFieldPosterior`."""
        return GaussianFieldPosterior(
            mean=self._mean.copy(),
            covariance=field_scale**2 * self._covariance.copy(),
            n_labeled=-1,  # mixed original/acquired; callers use .observed
            field_scale=field_scale,
        )
