"""The soft criterion (Laplacian-regularized least squares).

Solves Eq. (2)/(3) of the paper:

    min_f  sum_{i<=n} (Y_i - f_i)^2 + (lambda/2) sum_ij w_ij (f_i - f_j)^2
         = (f - Y)^T V (f - Y) + lambda f^T L f,

with ``V = diag(1,...,1,0,...,0)`` (ones on the ``n`` labeled positions)
and ``L = D - W`` the unnormalized Laplacian.  Two backends:

* ``method="full"`` — solve the ``(n+m)``-dimensional stationarity system
  ``(V + lambda L) f = (Y_n; 0)`` directly; this is the paper's
  ``O((n+m)^3)`` form and requires ``lambda > 0``.
* ``method="schur"`` — the paper's Eq. (4), obtained from the 2x2 block
  inverse:

      f_u = (D22 - W22 - lambda W21 (I_n + lambda D11 - lambda W11)^{-1} W12)^{-1}
            W21 (I_n + lambda D11 - lambda W11)^{-1} Y_n,

  which at ``lambda = 0`` reduces *exactly* to the hard criterion's
  Eq. (5) — Proposition II.1.  The labeled block is then recovered from
  the first block row.

Sparse weight matrices stay sparse end to end: the stationarity system
``V + lambda L`` is assembled in CSR and handed to the sparse
factorization in :func:`repro.linalg.solvers.solve_spd` — the weights
are never densified.  Because the Schur route's intermediate
``(I + lam D11 - lam W11)^{-1} W12`` block is inherently dense, sparse
inputs requesting ``method="schur"`` are answered through the (equal, by
the 2x2 block-inverse identity) sparse full system instead; the
``FitResult.method`` records that rerouting as ``"schur->sparse_full"``.

Proposition II.2's ``lambda -> inf`` limit (the constant labeled-mean
prediction that makes the soft criterion inconsistent) is exposed as
:func:`soft_lambda_infinity_limit`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

import math

from repro import obs
from repro.core.hard import _coerce_weights, solve_hard_criterion
from repro.core.result import FitResult
from repro.exceptions import ConfigurationError, DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.linalg.solvers import SolveInfo, solve_spd, solve_square
from repro.obs import probes
from repro.utils.validation import check_labels, check_positive_scalar, check_weight_matrix

__all__ = ["solve_soft_criterion", "soft_lambda_infinity_limit", "soft_criterion_objective"]


def solve_soft_criterion(
    weights,
    y_labeled,
    lam: float,
    *,
    method: str = "schur",
    solver: str = "direct",
    check_reachability: bool = True,
    workspace=None,
) -> FitResult:
    """Solve the soft criterion for tuning parameter ``lam``.

    Parameters
    ----------
    weights:
        ``(n+m, n+m)`` symmetric non-negative weight matrix, labeled
        vertices first (dense, sparse, or ``SimilarityGraph``).
    y_labeled:
        Observed responses ``Y_1..Y_n``.
    lam:
        Tuning parameter ``lambda >= 0``.  ``lam = 0`` delegates to the
        hard criterion (Proposition II.1).
    method:
        ``"schur"`` (Eq. 4, an ``m x m`` solve after an ``n x n`` solve)
        or ``"full"`` (Eq. 3's ``(n+m) x (n+m)`` stationarity system;
        requires ``lam > 0``).
    solver:
        Backend for the SPD solves (``"direct"``, ``"cg"``, ...).
    check_reachability:
        Validate labeled reachability first (needed for well-posedness at
        small ``lam``; at ``lam > 0`` a disconnected unlabeled component
        also makes ``V + lam L`` singular).
    workspace:
        Optional :class:`~repro.linalg.workspace.SolveWorkspace` built on
        this graph.  When given, the solve is routed through the
        workspace's cached factorizations / eigenbasis / continuation
        state (``method`` and ``solver`` are ignored; the workspace's
        backend decides), amortizing repeated solves across a sweep.
    """
    if workspace is not None:
        y_labeled = check_labels(y_labeled, name="y_labeled")
        if check_reachability:
            require_labeled_reachability(workspace.weights, y_labeled.shape[0])
        return workspace.solve_soft(y_labeled, lam)
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    lam = check_positive_scalar(lam, "lam", allow_zero=True)
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    m = total - n

    if lam == 0.0:
        hard = solve_hard_criterion(
            weights, y_labeled, method=solver, check_reachability=check_reachability
        )
        return FitResult(
            scores=hard.scores,
            n_labeled=n,
            lam=0.0,
            method=f"{method}->hard",
            criterion="soft",
            details=dict(hard.details),
            solve_info=hard.solve_info,
        )

    if check_reachability:
        require_labeled_reachability(weights, n)

    if method not in ("full", "schur"):
        raise ConfigurationError(f"method must be 'full' or 'schur', got {method!r}")

    if sparse.issparse(weights):
        return _solve_full_sparse(weights, y_labeled, lam, n, m, solver, method)
    if method == "full":
        return _solve_full(weights, y_labeled, lam, n, m, solver)
    return _solve_schur(weights, y_labeled, lam, n, m)


def _solve_full(weights: np.ndarray, y: np.ndarray, lam: float, n: int, m: int, solver: str) -> FitResult:
    """Solve ``(V + lam L) f = (y; 0)`` over all n+m vertices."""
    total = n + m
    with obs.span("repro.solve_soft", n=n, m=m, lam=lam, method="full") as span:
        degrees = weights.sum(axis=1)
        laplacian = np.diag(degrees) - weights
        system = lam * laplacian
        system[np.arange(n), np.arange(n)] += 1.0
        rhs = np.zeros(total)
        rhs[:n] = y
        if span.recording:
            probes.record_graph_stats(span, weights, n)
            probes.record_spd_system(span, system)
        scores, info = solve_spd(system, rhs, method=solver, return_info=True)
        probes.record_solve_info(span, info)
        registry = obs.get_registry()
        registry.counter("solves.soft").inc()
        registry.histogram("solves.soft.system_size").observe(total)
        return FitResult(
            scores=scores,
            n_labeled=n,
            lam=lam,
            method="full",
            criterion="soft",
            details={"system_size": total},
            solve_info=info,
        )


def _solve_full_sparse(
    weights, y: np.ndarray, lam: float, n: int, m: int, solver: str, requested: str
) -> FitResult:
    """Solve ``(V + lam L) f = (y; 0)`` without densifying the weights.

    The system is assembled as ``lam * (D - W) + diag(V)`` in CSR and
    solved by the sparse factorization (or an iterative backend).  Used
    for both ``method="full"`` and — because its intermediates densify —
    ``method="schur"`` on sparse inputs; the two are algebraically equal.
    """
    total = n + m
    with obs.span(
        "repro.solve_soft", n=n, m=m, lam=lam, method=f"{requested}:sparse"
    ) as span:
        degrees = np.asarray(weights.sum(axis=1)).ravel()
        laplacian = sparse.diags(degrees, format="csr") - weights.tocsr()
        labeled_indicator = np.zeros(total)
        labeled_indicator[:n] = 1.0
        system = (
            lam * laplacian + sparse.diags(labeled_indicator, format="csr")
        ).tocsr()
        rhs = np.zeros(total)
        rhs[:n] = y
        if span.recording:
            probes.record_graph_stats(span, weights, n)
            probes.record_spd_system(span, system)
        scores, info = solve_spd(system, rhs, method=solver, return_info=True)
        probes.record_solve_info(span, info)
        registry = obs.get_registry()
        registry.counter("solves.soft").inc()
        registry.histogram("solves.soft.system_size").observe(total)
        method = "full" if requested == "full" else "schur->sparse_full"
        return FitResult(
            scores=scores,
            n_labeled=n,
            lam=lam,
            method=method,
            criterion="soft",
            details={"system_size": total, "nnz": int(system.nnz)},
            solve_info=info,
        )


def _solve_schur(weights: np.ndarray, y: np.ndarray, lam: float, n: int, m: int) -> FitResult:
    """The paper's Eq. (4): Schur-complement form on the unlabeled block."""
    with obs.span("repro.solve_soft", n=n, m=m, lam=lam, method="schur") as span:
        probes.record_schur_blocks(span, n, m)
        w11 = weights[:n, :n]
        w12 = weights[:n, n:]
        w21 = weights[n:, :n]
        w22 = weights[n:, n:]
        degrees = weights.sum(axis=1)
        d11 = degrees[:n]
        d22 = degrees[n:]

        # inner = I_n + lam*D11 - lam*W11 (n x n, SPD for lam >= 0).
        inner = -lam * w11
        inner[np.arange(n), np.arange(n)] += 1.0 + lam * d11
        inner_inv_y = solve_square(inner, y)  # (I + lam D11 - lam W11)^{-1} Y_n

        if m == 0:
            # No unlabeled block: Eq. (3) reduces to the labeled stationarity
            # system (I + lam L11) f_l = y with L11 = D11 - W11.
            return FitResult(
                scores=inner_inv_y, n_labeled=n, lam=lam, method="schur",
                criterion="soft", details={"system_size": n},
                solve_info=SolveInfo(method="lu", size=n),
            )

        inner_inv_w12 = np.linalg.solve(inner, w12)  # n x m
        grounded = np.diag(d22) - w22  # D22 - W22, m x m
        system = grounded - lam * (w21 @ inner_inv_w12)
        schur_rhs = w21 @ inner_inv_y
        if span.recording:
            probes.record_graph_stats(span, weights, n)
            probes.record_spd_system(span, system)
        f_unlabeled = solve_square(system, schur_rhs)
        residual = (
            float(np.linalg.norm(schur_rhs - system @ f_unlabeled))
            if span.recording
            else math.nan
        )
        info = SolveInfo(method="lu", size=m, final_residual=residual)
        probes.record_solve_info(span, info)
        registry = obs.get_registry()
        registry.counter("solves.soft").inc()
        registry.histogram("solves.soft.system_size").observe(m)

        # Recover the labeled block from the first stationarity row:
        # (I + lam D11 - lam W11) f_l = y + lam W12 f_u.
        f_labeled = solve_square(inner, y + lam * (w12 @ f_unlabeled))
        scores = np.concatenate([f_labeled, f_unlabeled])
        return FitResult(
            scores=scores,
            n_labeled=n,
            lam=lam,
            method="schur",
            criterion="soft",
            details={"system_size": m},
            solve_info=info,
        )


def soft_lambda_infinity_limit(y_labeled, n_total: int) -> np.ndarray:
    """Proposition II.2's ``lambda = inf`` solution on a connected graph.

    Every vertex is forced to the common value ``mean(Y_n)`` — a constant
    prediction that cannot converge to the random variable
    ``q(X_{n+a})``, which is the paper's inconsistency counterexample.
    """
    y_labeled = check_labels(y_labeled, name="y_labeled")
    if n_total < y_labeled.shape[0]:
        raise DataValidationError(
            f"n_total={n_total} is smaller than the number of labels "
            f"{y_labeled.shape[0]}"
        )
    return np.full(n_total, float(np.mean(y_labeled)))


def soft_criterion_objective(weights, y_labeled, scores, lam: float) -> float:
    """Eq. (2)'s objective value for a candidate score vector.

    Used by tests to confirm the closed-form solutions are stationary
    minima: any perturbation must not decrease this value.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    scores = check_labels(scores, weights.shape[0], name="scores")
    y_labeled = check_labels(y_labeled, name="y_labeled")
    lam = check_positive_scalar(lam, "lam", allow_zero=True)
    n = y_labeled.shape[0]
    loss = float(np.sum((y_labeled - scores[:n]) ** 2))
    if sparse.issparse(weights):
        coo = weights.tocoo()
        diffs = scores[coo.row] - scores[coo.col]
        penalty = float(np.sum(coo.data * diffs * diffs))
    else:
        diffs = scores[:, None] - scores[None, :]
        penalty = float(np.sum(weights * diffs * diffs))
    return loss + 0.5 * lam * penalty
