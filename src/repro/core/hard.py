"""The hard criterion (Zhu-Ghahramani-Lafferty harmonic functions).

Solves Eq. (1) of the paper:

    min_f  sum_ij w_ij (f_i - f_j)^2   subject to  f_i = Y_i, i <= n,

whose unlabeled-block closed form is Eq. (5):

    f_u = (D22 - W22)^{-1} W21 Y_n,

where ``D`` is the full degree matrix (degrees include edges to labeled
vertices and any self-weights) and subscript 2 denotes the unlabeled
block.  The matrix ``D22 - W22`` is a *grounded Laplacian*: symmetric, and
positive definite exactly when every unlabeled vertex can reach a labeled
vertex through positive-weight edges — checked up front so singular
systems fail with an actionable :class:`DisconnectedGraphError` instead of
a numerics error.

Solver backends: ``"direct"`` (dense Cholesky), ``"cg"``, ``"jacobi"``,
``"gauss_seidel"``, ``"sparse"`` (symmetric-mode sparse LU), all verified
to agree in the test suite.  Sparse weight matrices are never densified:
the grounded system is assembled in CSR and ``method="direct"`` is
rerouted to the sparse factorization, whose input nnz and factor fill-in
are reported through :class:`~repro.linalg.solvers.SolveInfo`.  The cost
is ``O(m^3)`` for the dense direct backend — the paper's Section II
complexity claim, benchmarked in ``bench_complexity``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro import obs
from repro.core.result import FitResult
from repro.exceptions import DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.graph.similarity import SimilarityGraph
from repro.linalg.solvers import solve_spd
from repro.obs import probes
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = ["solve_hard_criterion", "hard_criterion_objective"]


def _coerce_weights(weights):
    """Accept a SimilarityGraph, dense ndarray or scipy sparse matrix."""
    if isinstance(weights, SimilarityGraph):
        return weights.weights
    return weights


def solve_hard_criterion(
    weights,
    y_labeled,
    *,
    method: str = "direct",
    tol: float = 1e-10,
    max_iter: int | None = None,
    check_reachability: bool = True,
    workspace=None,
) -> FitResult:
    """Solve the hard criterion on a full similarity graph.

    Parameters
    ----------
    weights:
        ``(n+m, n+m)`` symmetric non-negative weight matrix (dense, scipy
        sparse, or a :class:`~repro.graph.similarity.SimilarityGraph`),
        with the ``n`` labeled vertices first.
    y_labeled:
        Observed responses ``Y_1..Y_n``; its length determines ``n``.
    method:
        Linear-solver backend (see module docstring).
    tol, max_iter:
        Tolerances for the iterative backends.
    check_reachability:
        When true (default), validate that every unlabeled vertex reaches
        a labeled one before solving; disable only if already checked.
    workspace:
        Optional :class:`~repro.linalg.workspace.SolveWorkspace` built on
        this graph; when given, the grounded system's factorization is
        cached across calls (``method``/``tol``/``max_iter`` are ignored).

    Returns
    -------
    FitResult
        With ``scores[:n] == y_labeled`` exactly and ``scores[n:]`` equal
        to Eq. (5)'s solution.
    """
    if workspace is not None:
        y_labeled = check_labels(y_labeled, name="y_labeled")
        if check_reachability:
            require_labeled_reachability(workspace.weights, y_labeled.shape[0])
        return workspace.solve_hard(y_labeled)
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    m = total - n

    if m == 0:
        scores = y_labeled.copy()
        return FitResult(
            scores=scores, n_labeled=n, lam=0.0, method=method,
            criterion="hard", details={"m": 0},
        )

    if check_reachability:
        require_labeled_reachability(weights, n)

    with obs.span("repro.solve_hard", n=n, m=m, method=method) as span:
        if sparse.issparse(weights):
            w21 = weights[n:, :n]
            w22 = weights[n:, n:]
            degrees = np.asarray(weights.sum(axis=1)).ravel()[n:]
            system = sparse.diags(degrees, format="csr") - w22
            rhs = np.asarray(w21 @ y_labeled).ravel()
            if method == "direct":
                method = "sparse"
        else:
            w21 = weights[n:, :n]
            w22 = weights[n:, n:]
            degrees = weights.sum(axis=1)[n:]
            system = np.diag(degrees) - w22
            rhs = w21 @ y_labeled

        if span.recording:
            probes.record_graph_stats(span, weights, n)
            probes.record_spd_system(span, system)

        f_unlabeled, info = solve_spd(
            system, rhs, method=method, tol=tol, max_iter=max_iter, return_info=True
        )
        probes.record_solve_info(span, info)
        registry = obs.get_registry()
        registry.counter("solves.hard").inc()
        registry.histogram("solves.hard.system_size").observe(m)
        scores = np.concatenate([y_labeled, f_unlabeled])
        return FitResult(
            scores=scores,
            n_labeled=n,
            lam=0.0,
            method=method,
            criterion="hard",
            details={"m": m, "system_size": m},
            solve_info=info,
        )


def hard_criterion_objective(weights, scores) -> float:
    """The hard criterion's objective ``sum_ij w_ij (f_i - f_j)^2``.

    Equal to ``2 f^T L f`` for the unnormalized Laplacian ``L``; used by
    tests to confirm the closed-form solution actually minimizes Eq. (1)
    over perturbations that keep the labeled scores fixed.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    scores = check_labels(scores, weights.shape[0], name="scores")
    if sparse.issparse(weights):
        coo = weights.tocoo()
        diffs = scores[coo.row] - scores[coo.col]
        return float(np.sum(coo.data * diffs * diffs))
    diffs = scores[:, None] - scores[None, :]
    return float(np.sum(weights * diffs * diffs))
