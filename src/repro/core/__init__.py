"""Core graph-based semi-supervised learning (the paper's contribution).

Implements the hard criterion (Eq. 1/5), the soft criterion (Eq. 2/3/4),
their iterative label-propagation forms, the Nadaraya-Watson estimator the
consistency proof links to (Eq. 6), estimator-style wrappers, supervised
baselines, and the theory/assumption checkers of Theorem II.1.
"""

from repro.core.anchors import (
    AnchoredFit,
    AnchoredLabelPropagation,
    solve_anchored,
)
from repro.core.baselines import KNNClassifier, KNNRegressor, MeanPredictor
from repro.core.eigenbasis import EigenbasisRegressor, solve_eigenbasis
from repro.core.incremental import IncrementalHarmonicLabeler
from repro.core.variants import solve_soft_criterion_normalized
from repro.core.multiclass import (
    MulticlassFit,
    MulticlassLabelPropagation,
    solve_multiclass_hard,
)
from repro.core.uncertainty import GaussianFieldPosterior, gaussian_field_posterior
from repro.core.estimators import (
    GraphSSLClassifier,
    GraphSSLRegressor,
    HardLabelPropagation,
    NadarayaWatsonClassifier,
    NadarayaWatsonRegressor,
    SoftLabelPropagation,
)
from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson, nadaraya_watson_from_weights
from repro.core.propagation import (
    local_global_consistency,
    propagate_labels,
    propagate_soft,
)
from repro.core.result import FitResult, PropagationResult
from repro.core.soft import soft_lambda_infinity_limit, solve_soft_criterion
from repro.core.theory import (
    TheoremAssumptionReport,
    check_theorem_assumptions,
    consistency_ratio,
    tiny_element_bound,
    volume_unit_ball,
)

__all__ = [
    "solve_hard_criterion",
    "solve_soft_criterion",
    "soft_lambda_infinity_limit",
    "nadaraya_watson",
    "nadaraya_watson_from_weights",
    "propagate_labels",
    "local_global_consistency",
    "FitResult",
    "PropagationResult",
    "HardLabelPropagation",
    "SoftLabelPropagation",
    "GraphSSLRegressor",
    "GraphSSLClassifier",
    "NadarayaWatsonRegressor",
    "NadarayaWatsonClassifier",
    "KNNRegressor",
    "KNNClassifier",
    "MeanPredictor",
    "TheoremAssumptionReport",
    "check_theorem_assumptions",
    "consistency_ratio",
    "tiny_element_bound",
    "volume_unit_ball",
    "GaussianFieldPosterior",
    "gaussian_field_posterior",
    "IncrementalHarmonicLabeler",
    "MulticlassFit",
    "MulticlassLabelPropagation",
    "solve_multiclass_hard",
    "AnchoredFit",
    "AnchoredLabelPropagation",
    "solve_anchored",
    "solve_soft_criterion_normalized",
    "propagate_soft",
    "EigenbasisRegressor",
    "solve_eigenbasis",
]
