"""Assumption checking and theoretical quantities from Theorem II.1.

Theorem II.1's conditions, and the constants the proof tracks:

* kernel conditions (i)-(iii) — delegated to
  :meth:`~repro.kernels.base.RadialKernel.theorem_conditions`;
* bandwidth limits ``h_n -> 0`` and ``n h_n^d -> inf`` — checkable for a
  *rule* ``h(n)`` by evaluating it along a growing-n schedule;
* the growth condition ``m = o(n h_n^d)`` — summarized by the finite-n
  ratio ``m / (n h_n^d)`` (:func:`consistency_ratio`), which the proof
  requires to vanish;
* the "tiny elements" constant ``M = 2 k* / (s beta)`` with
  ``s = s* V_d(1) delta^d / 2`` built from the kernel's condition-(iii)
  ball and the density lower bound ``s*``
  (:func:`tiny_element_bound` gives the proof's envelope
  ``M / (n h^d)`` on ``||D22^{-1} W22||_max``).

:func:`check_theorem_assumptions` assembles everything into a
:class:`TheoremAssumptionReport` and optionally raises
:class:`~repro.exceptions.AssumptionViolationError` in strict mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import AssumptionViolationError, DataValidationError
from repro.kernels.base import KernelConditionReport, RadialKernel
from repro.utils.validation import check_positive_scalar

__all__ = [
    "volume_unit_ball",
    "consistency_ratio",
    "tiny_element_bound",
    "TheoremAssumptionReport",
    "check_theorem_assumptions",
]


def volume_unit_ball(dim: int) -> float:
    """Volume of the unit Euclidean ball in ``dim`` dimensions.

    ``V_d = pi^{d/2} / Gamma(d/2 + 1)``; the proof uses
    ``V_d(delta h) = V_d * (delta h)^d`` to lower-bound the ball-hit
    probability ``p(X_{n+a})``.
    """
    if dim < 1:
        raise DataValidationError(f"dim must be >= 1, got {dim}")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


def consistency_ratio(n: int, m: int, bandwidth: float, dim: int) -> float:
    """The theorem's growth ratio ``m / (n h^d)``.

    Theorem II.1 requires this to tend to zero (``m = o(n h_n^d)``); at
    finite samples a small value indicates the consistent regime and a
    large value the regime where Figures 2/4 show RMSE growing with m.
    """
    if n < 1:
        raise DataValidationError(f"n must be >= 1, got {n}")
    if m < 0:
        raise DataValidationError(f"m must be >= 0, got {m}")
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    if dim < 1:
        raise DataValidationError(f"dim must be >= 1, got {dim}")
    return m / (n * bandwidth**dim)


def tiny_element_bound(
    kernel: RadialKernel,
    n: int,
    bandwidth: float,
    dim: int,
    density_lower_bound: float,
) -> float:
    """The proof's envelope ``M / (n h^d)`` on ``||D22^{-1} W22||_max``.

    With ``(beta, delta)`` the kernel's condition-(iii) ball constants and
    ``s* = density_lower_bound``, the proof sets
    ``s = s* V_d(1) delta^d / 2`` and ``M = 2 k* / (s beta)``; every entry
    of ``D22^{-1} W22`` is at most ``M / (n h^d)`` with probability
    approaching one.  ``repro.validation.proof_constructs`` verifies this
    numerically.
    """
    if n < 1:
        raise DataValidationError(f"n must be >= 1, got {n}")
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    density_lower_bound = check_positive_scalar(density_lower_bound, "density_lower_bound")
    beta, delta = kernel.ball_lower_bound
    if beta <= 0 or delta <= 0:
        raise AssumptionViolationError(
            f"kernel {kernel.name!r} has no positive condition-(iii) ball"
        )
    k_star = kernel.upper_bound
    if not math.isfinite(k_star):
        raise AssumptionViolationError(f"kernel {kernel.name!r} is unbounded")
    s = density_lower_bound * volume_unit_ball(dim) * delta**dim / 2.0
    big_m = 2.0 * k_star / (s * beta)
    return big_m / (n * bandwidth**dim)


@dataclass(frozen=True)
class TheoremAssumptionReport:
    """Finite-sample snapshot of Theorem II.1's assumptions.

    Attributes
    ----------
    kernel_conditions:
        Conditions (i)-(iii) of the kernel.
    n, m, dim, bandwidth:
        The problem size and bandwidth checked.
    effective_labeled_mass:
        ``n h^d`` — must diverge for consistency.
    growth_ratio:
        ``m / (n h^d)`` — must vanish for consistency.
    growth_ok:
        Heuristic finite-sample check ``growth_ratio < growth_tolerance``.
    """

    kernel_conditions: KernelConditionReport
    n: int
    m: int
    dim: int
    bandwidth: float
    effective_labeled_mass: float
    growth_ratio: float
    growth_ok: bool

    @property
    def all_satisfied(self) -> bool:
        return self.kernel_conditions.all_satisfied and self.growth_ok

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"kernel: {self.kernel_conditions.summary()}",
            f"n={self.n}, m={self.m}, d={self.dim}, h={self.bandwidth:.4g}",
            f"n h^d = {self.effective_labeled_mass:.4g} (must grow)",
            f"m/(n h^d) = {self.growth_ratio:.4g} "
            f"({'ok' if self.growth_ok else 'TOO LARGE'}; must vanish)",
        ]
        return "\n".join(lines)


def check_theorem_assumptions(
    kernel: RadialKernel,
    *,
    n: int,
    m: int,
    dim: int,
    bandwidth: float,
    growth_tolerance: float = 1.0,
    strict: bool = False,
) -> TheoremAssumptionReport:
    """Assemble a finite-sample report of Theorem II.1's assumptions.

    Parameters
    ----------
    kernel, n, m, dim, bandwidth:
        The problem instance to check.
    growth_tolerance:
        Finite-sample threshold on ``m/(n h^d)``; the asymptotic condition
        is that the ratio vanishes, so any fixed threshold is heuristic.
    strict:
        If true, raise :class:`AssumptionViolationError` when any
        condition fails (used by the validation experiments; estimators
        never enforce this because the paper's own RBF experiments violate
        condition (ii)).
    """
    if n < 1 or m < 0:
        raise DataValidationError(f"need n >= 1 and m >= 0, got n={n}, m={m}")
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    report = TheoremAssumptionReport(
        kernel_conditions=kernel.theorem_conditions(),
        n=n,
        m=m,
        dim=dim,
        bandwidth=bandwidth,
        effective_labeled_mass=n * bandwidth**dim,
        growth_ratio=consistency_ratio(n, m, bandwidth, dim),
        growth_ok=consistency_ratio(n, m, bandwidth, dim) < growth_tolerance,
    )
    if strict and not report.all_satisfied:
        raise AssumptionViolationError(
            "Theorem II.1 assumptions violated:\n" + report.summary()
        )
    return report
