"""Criterion variants with normalized graph Laplacians.

The paper's criteria use the unnormalized Laplacian ``L = D - W``.  A
common variant (Zhou et al. 2004's regularizer) penalizes with the
symmetric-normalized Laplacian ``L_sym = I - D^{-1/2} W D^{-1/2}``
instead, which reweights the smoothness penalty by vertex degrees:

    min_f  sum_{i<=n} (Y_i - f_i)^2 + lam * f^T L_sym f.

:func:`solve_soft_criterion_normalized` solves its stationarity system
``(V + lam L_sym) f = (y; 0)``.  The degree normalization changes which
functions count as "smooth" — high-degree hubs are allowed larger score
differences — and the ablation bench compares both penalties on the
paper's workload.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.hard import _coerce_weights
from repro.core.result import FitResult
from repro.exceptions import DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.graph.laplacian import normalized_laplacian
from repro.linalg.solvers import solve_square
from repro.utils.validation import check_labels, check_positive_scalar, check_weight_matrix

__all__ = ["solve_soft_criterion_normalized"]


def solve_soft_criterion_normalized(
    weights,
    y_labeled,
    lam: float,
    *,
    check_reachability: bool = True,
) -> FitResult:
    """Soft criterion with the symmetric-normalized Laplacian penalty.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first; every
        vertex needs positive degree.
    y_labeled:
        Observed responses on the first ``n`` vertices.
    lam:
        Penalty weight; must be > 0 (at 0 the unlabeled block is
        unconstrained — use the hard criterion for the clamped limit).
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    lam = check_positive_scalar(lam, "lam")
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    if check_reachability:
        require_labeled_reachability(weights, n)

    lap = normalized_laplacian(weights)
    rhs = np.zeros(total)
    rhs[:n] = y_labeled
    if sparse.issparse(lap):
        # Sparse graphs stay sparse: add the labeled indicator as a
        # diagonal matrix (entry-assignment on CSR would be both slow
        # and a SparseEfficiencyWarning).
        labeled_indicator = np.zeros(total)
        labeled_indicator[:n] = 1.0
        system = (
            lam * lap.tocsr() + sparse.diags(labeled_indicator, format="csr")
        ).tocsr()
    else:
        system = lam * lap
        system[np.arange(n), np.arange(n)] += 1.0
    scores = solve_square(system, rhs)
    return FitResult(
        scores=scores,
        n_labeled=n,
        lam=lam,
        method="normalized",
        criterion="soft-normalized",
        details={"laplacian": "symmetric"},
    )
