"""The Nadaraya-Watson kernel regression estimator (Eq. 6).

The consistency proof works by showing the hard criterion's solution

    f_u = (D22 - W22)^{-1} W21 Y_n

equals the Nadaraya-Watson estimator

    q_hat(X_{n+a}) = sum_{i<=n} w_{n+a,i} Y_i / sum_{k<=n} w_{n+a,k}

plus two vanishing corrections (the ``g_{n+a}`` term and the Neumann
remainder ``(S)_a D22^{-1} W21 Y_n``).  This module provides the
estimator both from a precomputed weight matrix
(:func:`nadaraya_watson_from_weights`, so the correspondence can be
verified on the *same* graph) and directly from data
(:func:`nadaraya_watson`).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import DataValidationError
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.utils.validation import (
    check_labels,
    check_matrix_2d,
    check_positive_scalar,
    check_weight_matrix,
)

__all__ = ["nadaraya_watson", "nadaraya_watson_from_weights"]


def nadaraya_watson_from_weights(weights, y_labeled) -> np.ndarray:
    """Eq. (6) on a precomputed full graph: labeled-weighted label average.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Responses on the first ``n`` vertices.

    Returns
    -------
    ndarray of length ``m`` with
    ``q_hat[a] = sum_i w_{n+a,i} y_i / sum_k w_{n+a,k}``, sums over the
    *labeled* vertices only (this is what distinguishes Eq. 6 from the
    first-order term of Eq. 5, whose denominator ``d_{n+a}`` also counts
    unlabeled neighbours).

    Raises
    ------
    DataValidationError
        If some unlabeled vertex has zero total weight to the labeled set
        (the estimator is undefined there).
    """
    weights = check_weight_matrix(weights)
    y_labeled = check_labels(y_labeled, name="y_labeled")
    n = y_labeled.shape[0]
    total = weights.shape[0]
    if n >= total:
        raise DataValidationError(
            f"need at least one unlabeled vertex; graph has {total} vertices "
            f"and {n} labels"
        )
    if sparse.issparse(weights):
        # The labeled-cross block stays sparse: both the row sums and the
        # weighted label average are sparse matvecs.
        w21 = weights.tocsr()[n:, :n]
        denominators = np.asarray(w21.sum(axis=1)).ravel()
        numerators = np.asarray(w21 @ y_labeled).ravel()
    else:
        w21 = weights[n:, :n]
        denominators = w21.sum(axis=1)
        numerators = w21 @ y_labeled
    zero = np.flatnonzero(denominators <= 0)
    if zero.size:
        raise DataValidationError(
            f"Nadaraya-Watson is undefined for unlabeled vertices "
            f"{(zero[:10] + n).tolist()}: zero total weight to the labeled set"
        )
    return numerators / denominators


def nadaraya_watson(
    x_labeled: np.ndarray,
    y_labeled: np.ndarray,
    x_query: np.ndarray,
    *,
    kernel: RadialKernel | None = None,
    bandwidth: float,
) -> np.ndarray:
    """Eq. (6) from raw data: kernel-weighted average of labeled responses.

    Parameters
    ----------
    x_labeled:
        Labeled inputs ``(n, d)``.
    y_labeled:
        Responses of length ``n``.
    x_query:
        Query points ``(m, d)``.
    kernel:
        Radial kernel, Gaussian RBF by default.
    bandwidth:
        Kernel bandwidth ``h``.
    """
    x_labeled = check_matrix_2d(x_labeled, "x_labeled")
    x_query = check_matrix_2d(x_query, "x_query")
    y_labeled = check_labels(y_labeled, x_labeled.shape[0], name="y_labeled")
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    kernel = kernel or GaussianKernel()

    cross = kernel.gram(x_query, x_labeled, bandwidth=bandwidth)  # (m, n)
    denominators = cross.sum(axis=1)
    zero = np.flatnonzero(denominators <= 0)
    if zero.size:
        raise DataValidationError(
            f"Nadaraya-Watson is undefined at query points {zero[:10].tolist()}: "
            f"no labeled point within the kernel support; increase the bandwidth"
        )
    return (cross @ y_labeled) / denominators
