"""Iterative label propagation and the local-global-consistency baseline.

:func:`propagate_labels` is Zhu et al. (2003)'s fixed-point form of the
hard criterion:

    f_u <- D22^{-1} (W22 f_u + W21 Y_n),   f_l clamped to Y_n,

whose fixed point solves ``(D22 - W22) f_u = W21 Y_n`` — i.e. exactly
Eq. (5) — whenever the spectral radius of ``D22^{-1} W22`` is below one
(guaranteed by labeled reachability; this is the quantity the proof's
"tiny elements" argument bounds).

:func:`local_global_consistency` is Zhou et al. (2004)'s variant,
``f = (1 - alpha) (I - alpha S)^{-1} y0`` with the symmetric-normalized
similarity ``S = D^{-1/2} W D^{-1/2}``, included as the extra baseline
the paper cites as reference [12].
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro import obs
from repro.core.hard import _coerce_weights
from repro.core.result import FitResult, PropagationResult
from repro.exceptions import ConfigurationError, ConvergenceError, DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.linalg.solvers import solve_square
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = ["propagate_labels", "propagate_soft", "local_global_consistency"]


def propagate_labels(
    weights,
    y_labeled,
    *,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    check_reachability: bool = True,
) -> PropagationResult:
    """Run Zhu et al.'s label-propagation iteration to its fixed point.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Observed responses (length ``n``).
    tol:
        Stop when the max-norm update falls below ``tol``.
    max_iter:
        Iteration cap; exceeding it raises
        :class:`~repro.exceptions.ConvergenceError`.
    check_reachability:
        Verify labeled reachability first (the iteration diverges or
        stalls on orphan components).

    Returns
    -------
    PropagationResult
        Fixed-point scores plus the per-iteration update-norm trace.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    m = total - n
    if check_reachability:
        require_labeled_reachability(weights, n)

    if m == 0:
        fit = FitResult(
            scores=y_labeled.copy(), n_labeled=n, lam=0.0,
            method="propagation", criterion="hard", details={"m": 0},
        )
        return PropagationResult(fit=fit, iterations=0, delta_norms=(), converged=True)

    if sparse.issparse(weights):
        w21 = weights[n:, :n].tocsr()
        w22 = weights[n:, n:].tocsr()
        degrees = np.asarray(weights.sum(axis=1)).ravel()[n:]
    else:
        w21 = weights[n:, :n]
        w22 = weights[n:, n:]
        degrees = weights.sum(axis=1)[n:]
    if np.any(degrees <= 0):
        raise DataValidationError(
            "label propagation requires every unlabeled vertex to have "
            "positive degree"
        )

    with obs.span("repro.propagate_labels", n=n, m=m) as span:
        source = np.asarray(w21 @ y_labeled).ravel() / degrees
        f_unlabeled = source.copy()  # start from the one-step NW-like guess
        deltas: list[float] = []
        for iteration in range(1, max_iter + 1):
            updated = np.asarray(w22 @ f_unlabeled).ravel() / degrees + source
            delta = float(np.max(np.abs(updated - f_unlabeled)))
            deltas.append(delta)
            f_unlabeled = updated
            if delta <= tol:
                if span.recording:
                    span.set_attribute("iterations", iteration)
                    span.set_attribute("final_delta", delta)
                registry = obs.get_registry()
                registry.counter("propagation.hard.runs").inc()
                registry.histogram("propagation.hard.iterations").observe(iteration)
                fit = FitResult(
                    scores=np.concatenate([y_labeled, f_unlabeled]),
                    n_labeled=n, lam=0.0, method="propagation",
                    criterion="hard", details={"iterations": iteration},
                )
                return PropagationResult(
                    fit=fit, iterations=iteration, delta_norms=tuple(deltas), converged=True
                )
        raise ConvergenceError(
            f"label propagation did not converge in {max_iter} iterations "
            f"(last update {deltas[-1]:.3e} > tol {tol:.1e})",
            iterations=max_iter,
            residual=deltas[-1],
        )


def propagate_soft(
    weights,
    y_labeled,
    lam: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    check_reachability: bool = True,
) -> PropagationResult:
    """Jacobi fixed-point iteration for the *soft* criterion.

    Delalleau et al. (2005) solve Eq. (3)'s stationarity system
    ``(V + lam L) f = (y; 0)`` by the Jacobi sweep

        f_i <- ( y_i [i <= n] + lam sum_j w_ij f_j )
               / ( [i <= n] + lam d_i ),

    which needs only matrix-vector products — ``O((n+m)^2)`` per sweep
    instead of the ``O((n+m)^3)`` direct solve.  The fixed point is the
    soft solution; the test suite verifies agreement with the
    closed-form Eq. (4).

    Parameters
    ----------
    weights, y_labeled:
        As in :func:`propagate_labels`.
    lam:
        Tuning parameter; must be > 0 (use :func:`propagate_labels` for
        the hard criterion's fixed point).
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    if lam <= 0:
        raise DataValidationError(
            f"propagate_soft requires lam > 0 (got {lam}); "
            f"use propagate_labels for the hard criterion"
        )
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    if check_reachability:
        require_labeled_reachability(weights, n)

    if sparse.issparse(weights):
        matvec = lambda v: np.asarray(weights @ v).ravel()
        degrees = np.asarray(weights.sum(axis=1)).ravel()
    else:
        matvec = lambda v: weights @ v
        degrees = weights.sum(axis=1)

    indicator = np.zeros(total)
    indicator[:n] = 1.0
    denominator = indicator + lam * degrees
    if np.any(denominator <= 0):
        raise DataValidationError(
            "soft propagation requires every unlabeled vertex to have "
            "positive degree"
        )
    rhs = np.zeros(total)
    rhs[:n] = y_labeled

    with obs.span("repro.propagate_soft", n=n, m=total - n, lam=lam) as span:
        scores = rhs / denominator  # one-sweep warm start
        deltas: list[float] = []
        for iteration in range(1, max_iter + 1):
            updated = (rhs + lam * matvec(scores)) / denominator
            delta = float(np.max(np.abs(updated - scores)))
            deltas.append(delta)
            scores = updated
            if delta <= tol:
                if span.recording:
                    span.set_attribute("iterations", iteration)
                    span.set_attribute("final_delta", delta)
                registry = obs.get_registry()
                registry.counter("propagation.soft.runs").inc()
                registry.histogram("propagation.soft.iterations").observe(iteration)
                fit = FitResult(
                    scores=scores, n_labeled=n, lam=lam,
                    method="propagation", criterion="soft",
                    details={"iterations": iteration},
                )
                return PropagationResult(
                    fit=fit, iterations=iteration, delta_norms=tuple(deltas),
                    converged=True,
                )
        raise ConvergenceError(
            f"soft propagation did not converge in {max_iter} iterations "
            f"(last update {deltas[-1]:.3e} > tol {tol:.1e})",
            iterations=max_iter,
            residual=deltas[-1],
        )


def local_global_consistency(
    weights,
    y_labeled,
    *,
    alpha: float = 0.99,
) -> FitResult:
    """Zhou et al. (2004) learning with local and global consistency.

    Solves ``f = (1 - alpha) (I - alpha S)^{-1} y0`` where
    ``S = D^{-1/2} W D^{-1/2}`` and ``y0`` extends the labels by zeros on
    unlabeled vertices.  ``alpha`` in ``(0, 1)`` trades initial labels
    against graph smoothness.

    Returned scores are *not* clamped on labeled vertices — like the soft
    criterion, this method smooths the labeled responses too.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )

    if sparse.issparse(weights):
        degrees = np.asarray(weights.sum(axis=1)).ravel()
    else:
        degrees = weights.sum(axis=1)
    if np.any(degrees <= 0):
        raise DataValidationError(
            "local-global consistency requires strictly positive degrees"
        )
    inv_sqrt = 1.0 / np.sqrt(degrees)
    y0 = np.zeros(total)
    y0[:n] = y_labeled
    if sparse.issparse(weights):
        # S = D^{-1/2} W D^{-1/2} built by diagonal scaling keeps the
        # graph's sparsity pattern; I - alpha S is solved sparsely.
        scale = sparse.diags(inv_sqrt, format="csr")
        sym = scale @ weights.tocsr() @ scale
        system = (sparse.identity(total, format="csr") - alpha * sym).tocsr()
    else:
        sym = (inv_sqrt[:, None] * weights) * inv_sqrt[None, :]
        system = np.eye(total) - alpha * sym
    scores = (1.0 - alpha) * solve_square(system, y0)
    return FitResult(
        scores=scores,
        n_labeled=n,
        lam=alpha,
        method="lgc",
        criterion="lgc",
        details={"alpha": alpha},
    )
