"""Multiclass graph-based SSL via one-vs-rest score columns.

The paper binarizes the 6-class COIL data, but the criteria extend to K
classes in the standard way: encode labels as a one-hot matrix
``Y in {0,1}^{n x K}``, solve the (hard or soft) criterion once per
column — a single factorization serves all K right-hand sides — and
predict the argmax column.  For the hard criterion each score column is
the probability of the random walk absorbing in that class, so rows sum
to one and the scores form a proper class-posterior estimate (Zhu et
al. 2003's multiclass harmonic solution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.hard import _coerce_weights
from repro.exceptions import DataValidationError, NotFittedError
from repro.graph.components import require_labeled_reachability
from repro.graph.similarity import build_similarity_graph
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.linalg.solvers import factorize_spd
from repro.utils.validation import check_matrix_2d, check_weight_matrix

__all__ = ["MulticlassFit", "solve_multiclass_hard", "MulticlassLabelPropagation"]


def _encode_labels(y_labeled) -> tuple[np.ndarray, np.ndarray]:
    """One-hot encode integer-like class labels; returns (onehot, classes)."""
    y = np.asarray(y_labeled)
    if y.ndim != 1 or y.shape[0] == 0:
        raise DataValidationError("y_labeled must be a non-empty 1-d array")
    classes = np.unique(y)
    if classes.shape[0] < 2:
        raise DataValidationError(
            f"multiclass propagation needs >= 2 classes, got {classes.shape[0]}"
        )
    onehot = (y[:, None] == classes[None, :]).astype(np.float64)
    return onehot, classes


def class_mass_normalize(scores: np.ndarray, priors: np.ndarray) -> np.ndarray:
    """Zhu et al.'s class mass normalization (CMN).

    Rescales column ``k`` so that the total predicted mass of class ``k``
    matches its labeled prior: ``scores[:, k] * priors[k] / mass_k`` with
    ``mass_k = mean(scores[:, k])``.  On weak graphs the raw harmonic
    columns track small label-count imbalances; CMN removes that bias
    while preserving each column's ranking.
    """
    scores = np.asarray(scores, dtype=np.float64)
    priors = np.asarray(priors, dtype=np.float64)
    if scores.ndim != 2 or priors.shape != (scores.shape[1],):
        raise DataValidationError(
            f"scores must be (m, K) and priors length K; got {scores.shape} "
            f"and {priors.shape}"
        )
    if np.any(priors <= 0):
        raise DataValidationError("priors must be strictly positive")
    masses = scores.mean(axis=0)
    if np.any(masses <= 0):
        raise DataValidationError(
            "every class column needs positive total score mass for CMN"
        )
    return scores * (priors / masses)[None, :]


@dataclass(frozen=True)
class MulticlassFit:
    """Multiclass hard-criterion solution.

    Attributes
    ----------
    scores:
        ``(m, K)`` class scores on the unlabeled block; rows sum to 1.
    classes:
        The class values, in score-column order.
    priors:
        Labeled class proportions (used by class mass normalization).
    """

    scores: np.ndarray
    classes: np.ndarray
    priors: np.ndarray

    def predict(self, *, class_mass_normalization: bool = True) -> np.ndarray:
        """Argmax class per unlabeled vertex.

        ``class_mass_normalization`` (default on, as Zhu et al.
        recommend) rebalances columns to the labeled priors before the
        argmax; set it False for the raw harmonic decision.
        """
        scores = self.scores
        if class_mass_normalization:
            scores = class_mass_normalize(scores, self.priors)
        return self.classes[np.argmax(scores, axis=1)]

    def predict_proba(self, *, class_mass_normalization: bool = True) -> np.ndarray:
        """Row-normalized class probabilities."""
        scores = self.scores
        if class_mass_normalization:
            scores = class_mass_normalize(scores, self.priors)
        clipped = np.clip(scores, 0.0, None)
        row_sums = clipped.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return clipped / row_sums


def solve_multiclass_hard(weights, y_labeled, *, check_reachability: bool = True) -> MulticlassFit:
    """Hard criterion with K one-vs-rest columns, one factorization.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Class labels (any hashable numeric values) of the first n
        vertices.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    onehot, classes = _encode_labels(y_labeled)
    n = onehot.shape[0]
    total = weights.shape[0]
    if n >= total:
        raise DataValidationError(
            f"need at least one unlabeled vertex; graph has {total} vertices "
            f"and {n} labels"
        )
    if check_reachability:
        require_labeled_reachability(weights, n)
    if sparse.issparse(weights):
        # Sparse graphs stay sparse: ground the Laplacian in CSR and
        # factor it once; the K one-vs-rest columns share the single
        # factorization through a (m, K) block back-substitution.
        csr = weights.tocsr()
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        grounded = sparse.diags(degrees[n:], format="csr") - csr[n:, n:]
        rhs = np.asarray(csr[n:, :n] @ onehot)
        scores = factorize_spd(grounded).solve(rhs)
    else:
        degrees = weights.sum(axis=1)
        grounded = np.diag(degrees[n:]) - weights[n:, n:]
        rhs = weights[n:, :n] @ onehot  # (m, K): one rhs per class
        scores = np.linalg.solve(grounded, rhs)
    priors = onehot.mean(axis=0)
    return MulticlassFit(scores=scores, classes=classes, priors=priors)


class MulticlassLabelPropagation:
    """Estimator-style multiclass transduction with the hard criterion.

    Mirrors :class:`~repro.core.estimators.GraphSSLClassifier` but for K
    classes: ``fit(x_labeled, y_labeled, x_unlabeled)`` builds the graph
    and solves all one-vs-rest columns; ``predict`` returns argmax
    classes, ``predict_proba`` the row-normalized scores.
    """

    def __init__(
        self,
        *,
        kernel: RadialKernel | None = None,
        bandwidth="median",
        graph: str = "full",
        graph_params: dict | None = None,
    ):
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self.graph = graph
        self.graph_params = dict(graph_params or {})
        self.fit_: MulticlassFit | None = None
        self.bandwidth_: float | None = None

    def fit(self, x_labeled, y_labeled, x_unlabeled) -> "MulticlassLabelPropagation":
        from repro.core.estimators import _resolve_bandwidth

        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
        if x_unlabeled.shape[1] != x_labeled.shape[1]:
            raise DataValidationError(
                f"x_labeled has {x_labeled.shape[1]} columns but x_unlabeled "
                f"has {x_unlabeled.shape[1]}"
            )
        x_all = np.vstack([x_labeled, x_unlabeled])
        self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_all, x_labeled.shape[0])
        graph = build_similarity_graph(
            x_all,
            construction=self.graph,
            kernel=self.kernel,
            bandwidth=self.bandwidth_,
            **self.graph_params,
        )
        self.fit_ = solve_multiclass_hard(graph.weights, y_labeled)
        return self

    def _require_fit(self) -> MulticlassFit:
        if self.fit_ is None:
            raise NotFittedError(
                "MulticlassLabelPropagation.predict called before fit"
            )
        return self.fit_

    def predict(self, *, class_mass_normalization: bool = True) -> np.ndarray:
        return self._require_fit().predict(
            class_mass_normalization=class_mass_normalization
        )

    def predict_proba(self, *, class_mass_normalization: bool = True) -> np.ndarray:
        return self._require_fit().predict_proba(
            class_mass_normalization=class_mass_normalization
        )

    @property
    def classes_(self) -> np.ndarray:
        return self._require_fit().classes
