"""Anchor-subset approximation for large unlabeled sets.

Reference [10] of the paper (Delalleau, Bengio & Le Roux 2005) — the
origin of the soft criterion — is mainly about *scaling* graph SSL: pick
a subset of points (the anchors), minimize the criterion over anchor
scores only, and extend to every other point with the induction formula

    f(x) = sum_{a in anchors} w(x, a) f_a / sum_{a} w(x, a).

This module implements that scheme on top of this library's solvers:

* anchors always include every labeled point (their scores are the
  data); the unlabeled anchor subset is chosen uniformly at random or as
  the nearest unlabeled points to k-means centers;
* the criterion (hard or soft, via ``lam``) is solved on the anchor
  subgraph — ``O(#anchors^3)`` instead of ``O((n+m)^3)``;
* non-anchor unlabeled points get induced scores.

With all unlabeled points as anchors the result equals the exact
solution; the tests assert this and the ablation bench measures the
accuracy/speed trade-off along the anchor budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.soft import solve_soft_criterion
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.utils.kmeans import kmeans
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_matrix_2d, check_positive_scalar

__all__ = ["AnchoredFit", "solve_anchored", "AnchoredLabelPropagation"]


@dataclass(frozen=True)
class AnchoredFit:
    """Solution of the anchor-subset approximation.

    Attributes
    ----------
    unlabeled_scores:
        Scores for every unlabeled point (anchored ones from the reduced
        solve, the rest induced).
    anchor_indices:
        Indices (into the unlabeled block) of the unlabeled anchors.
    n_anchors_total:
        Total anchor count (labeled + unlabeled anchors).
    """

    unlabeled_scores: np.ndarray
    anchor_indices: np.ndarray
    n_anchors_total: int


def _select_unlabeled_anchors(
    x_unlabeled: np.ndarray, count: int, method: str, rng
) -> np.ndarray:
    m = x_unlabeled.shape[0]
    if count >= m:
        return np.arange(m)
    if method == "random":
        return np.sort(rng.choice(m, size=count, replace=False))
    if method == "kmeans":
        result = kmeans(x_unlabeled, count, seed=rng)
        # Nearest actual point to each center, deduplicated then topped
        # up randomly to the requested count.
        from repro.kernels.base import pairwise_sq_distances

        sq = pairwise_sq_distances(result.centers, x_unlabeled)
        nearest = np.unique(np.argmin(sq, axis=1))
        if nearest.shape[0] < count:
            remaining = np.setdiff1d(np.arange(m), nearest)
            extra = rng.choice(
                remaining, size=count - nearest.shape[0], replace=False
            )
            nearest = np.concatenate([nearest, extra])
        return np.sort(nearest)
    raise ConfigurationError(
        f"anchor method must be 'random' or 'kmeans', got {method!r}"
    )


def solve_anchored(
    x_labeled,
    y_labeled,
    x_unlabeled,
    *,
    n_anchors: int,
    lam: float = 0.0,
    anchor_method: str = "kmeans",
    kernel: RadialKernel | None = None,
    bandwidth: float,
    seed=None,
) -> AnchoredFit:
    """Solve the criterion on an anchor subset and induce the rest.

    Parameters
    ----------
    x_labeled, y_labeled, x_unlabeled:
        The transductive problem.
    n_anchors:
        Number of *unlabeled* anchor points (labeled points are always
        anchors).  Values >= m reproduce the exact solution.
    lam:
        Criterion tuning parameter (0 = hard criterion).
    anchor_method:
        ``"kmeans"`` (coverage-seeking, default) or ``"random"``.
    kernel, bandwidth:
        Similarity kernel and scale.
    seed:
        Seed for anchor selection.
    """
    x_labeled = check_matrix_2d(x_labeled, "x_labeled")
    x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
    if x_unlabeled.shape[1] != x_labeled.shape[1]:
        raise DataValidationError(
            f"x_labeled has {x_labeled.shape[1]} columns but x_unlabeled "
            f"has {x_unlabeled.shape[1]}"
        )
    y_labeled = check_labels(y_labeled, x_labeled.shape[0], name="y_labeled")
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    if n_anchors < 1:
        raise ConfigurationError(f"n_anchors must be >= 1, got {n_anchors}")
    kernel = kernel or GaussianKernel()
    rng = as_rng(seed)

    anchor_idx = _select_unlabeled_anchors(x_unlabeled, n_anchors, anchor_method, rng)
    x_anchor_unlabeled = x_unlabeled[anchor_idx]
    x_anchors = np.vstack([x_labeled, x_anchor_unlabeled])

    weights = kernel.gram(x_anchors, bandwidth=bandwidth)
    fit = solve_soft_criterion(weights, y_labeled, lam)
    anchor_scores = fit.scores  # length n + #anchors

    m = x_unlabeled.shape[0]
    scores = np.empty(m)
    scores[anchor_idx] = fit.unlabeled_scores

    others = np.setdiff1d(np.arange(m), anchor_idx)
    if others.size:
        cross = kernel.gram(x_unlabeled[others], x_anchors, bandwidth=bandwidth)
        denominators = cross.sum(axis=1)
        zero = np.flatnonzero(denominators <= 0)
        if zero.size:
            raise DataValidationError(
                f"induction undefined for {zero.size} non-anchor points "
                f"(no anchor within the kernel support); increase the "
                f"bandwidth or the anchor budget"
            )
        scores[others] = (cross @ anchor_scores) / denominators

    return AnchoredFit(
        unlabeled_scores=scores,
        anchor_indices=anchor_idx,
        n_anchors_total=x_anchors.shape[0],
    )


class AnchoredLabelPropagation:
    """Estimator wrapper over :func:`solve_anchored`.

    Mirrors :class:`~repro.core.estimators.GraphSSLRegressor` but caps
    the linear-system size at ``n + n_anchors``, trading exactness for
    an ``O((n + n_anchors)^3)`` solve independent of m.
    """

    def __init__(
        self,
        n_anchors: int,
        *,
        lam: float = 0.0,
        anchor_method: str = "kmeans",
        kernel: RadialKernel | None = None,
        bandwidth="median",
        seed=None,
    ):
        if n_anchors < 1:
            raise ConfigurationError(f"n_anchors must be >= 1, got {n_anchors}")
        self.n_anchors = n_anchors
        self.lam = check_positive_scalar(lam, "lam", allow_zero=True)
        self.anchor_method = anchor_method
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self.seed = seed
        self.fit_: AnchoredFit | None = None
        self.bandwidth_: float | None = None

    def fit(self, x_labeled, y_labeled, x_unlabeled) -> "AnchoredLabelPropagation":
        from repro.core.estimators import _resolve_bandwidth

        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
        x_all = np.vstack([x_labeled, x_unlabeled]) if x_unlabeled.size else x_labeled
        self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_all, x_labeled.shape[0])
        self.fit_ = solve_anchored(
            x_labeled,
            y_labeled,
            x_unlabeled,
            n_anchors=self.n_anchors,
            lam=self.lam,
            anchor_method=self.anchor_method,
            kernel=self.kernel,
            bandwidth=self.bandwidth_,
            seed=self.seed,
        )
        return self

    def predict(self) -> np.ndarray:
        if self.fit_ is None:
            raise NotFittedError("AnchoredLabelPropagation.predict called before fit")
        return self.fit_.unlabeled_scores.copy()

    def fit_predict(self, x_labeled, y_labeled, x_unlabeled) -> np.ndarray:
        return self.fit(x_labeled, y_labeled, x_unlabeled).predict()
