"""Result containers returned by the criterion solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linalg.solvers import SolveInfo

__all__ = ["FitResult", "PropagationResult"]


@dataclass(frozen=True)
class FitResult:
    """Solution of a graph-SSL criterion on a fixed transductive problem.

    Attributes
    ----------
    scores:
        Full score vector ``f`` of length ``n + m`` (labeled first).  For
        the hard criterion the labeled entries equal the observed
        responses exactly; for the soft criterion they are shrunk toward
        graph-smoothness.
    n_labeled:
        Number of labeled vertices ``n``.
    lam:
        Tuning parameter ``lambda`` (0 for the hard criterion).
    method:
        Solver backend that produced the scores.
    criterion:
        ``"hard"`` or ``"soft"``.
    details:
        Free-form solver metadata (iteration counts, residuals, ...).
    solve_info:
        Convergence evidence from the main linear solve — a
        :class:`~repro.linalg.solvers.SolveInfo` with the backend that
        ran, iterations, final residual, and converged flag.  ``None``
        only for results that never touch a linear system (e.g. the
        zero-unlabeled degenerate case).
    """

    scores: np.ndarray
    n_labeled: int
    lam: float
    method: str
    criterion: str
    details: dict = field(default_factory=dict)
    solve_info: "SolveInfo | None" = None

    @property
    def labeled_scores(self) -> np.ndarray:
        """Scores on the labeled vertices (first ``n`` entries)."""
        return self.scores[: self.n_labeled]

    @property
    def unlabeled_scores(self) -> np.ndarray:
        """Scores on the unlabeled vertices — the paper's f̂_(n+1):(n+m)."""
        return self.scores[self.n_labeled :]

    @property
    def n_unlabeled(self) -> int:
        return self.scores.shape[0] - self.n_labeled


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of the iterative label-propagation fixed point.

    Wraps a :class:`FitResult` together with the iteration trace so
    convergence behaviour can be inspected and benchmarked.
    """

    fit: FitResult
    iterations: int
    delta_norms: tuple[float, ...]
    converged: bool

    @property
    def scores(self) -> np.ndarray:
        return self.fit.scores

    @property
    def unlabeled_scores(self) -> np.ndarray:
        return self.fit.unlabeled_scores
