"""Uncertainty quantification for the hard criterion.

Zhu et al. (2003) derive the hard criterion as the posterior mean of a
*Gaussian random field* over the graph: scores have the prior
``p(f) ∝ exp(-f^T L f / (2 sigma^2))``; conditioning on the labeled
scores gives a Gaussian posterior on the unlabeled block with

    mean        f_u   = (D22 - W22)^{-1} W21 y        (Eq. 5)
    covariance  Sigma = sigma^2 (D22 - W22)^{-1}.

The posterior variance ``diag(Sigma)`` is therefore a principled
confidence score for each transductive prediction: small variance means
the vertex is strongly tied (in the effective-resistance sense) to the
labeled set.  This powers the variance-based query strategy in
:mod:`repro.active`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.hard import _coerce_weights
from repro.exceptions import DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.linalg.solvers import factorize_spd
from repro.utils.validation import check_labels, check_positive_scalar, check_weight_matrix

__all__ = ["GaussianFieldPosterior", "gaussian_field_posterior"]


@dataclass(frozen=True)
class GaussianFieldPosterior:
    """Posterior of the Gaussian-random-field view of the hard criterion.

    Attributes
    ----------
    mean:
        Posterior mean on the unlabeled block — identical to Eq. (5)'s
        hard-criterion scores.
    covariance:
        Posterior covariance ``sigma^2 (D22 - W22)^{-1}`` (m x m).
    n_labeled:
        Number of labeled (conditioned-on) vertices.
    field_scale:
        The field scale ``sigma``.
    """

    mean: np.ndarray
    covariance: np.ndarray
    n_labeled: int
    field_scale: float

    @property
    def variance(self) -> np.ndarray:
        """Per-vertex posterior variances (the confidence scores)."""
        return np.diagonal(self.covariance).copy()

    def standard_deviation(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def credible_interval(self, z: float = 1.96) -> tuple[np.ndarray, np.ndarray]:
        """Symmetric ``mean ± z * sd`` interval per unlabeled vertex."""
        if z <= 0:
            raise DataValidationError(f"z must be > 0, got {z}")
        sd = self.standard_deviation()
        return self.mean - z * sd, self.mean + z * sd

    def most_uncertain(self, count: int = 1) -> np.ndarray:
        """Indices (into the unlabeled block) of the largest variances."""
        if not 1 <= count <= self.mean.shape[0]:
            raise DataValidationError(
                f"count must be in [1, {self.mean.shape[0]}], got {count}"
            )
        order = np.argsort(-self.variance, kind="stable")
        return order[:count]


def gaussian_field_posterior(
    weights,
    y_labeled,
    *,
    field_scale: float = 1.0,
    check_reachability: bool = True,
) -> GaussianFieldPosterior:
    """Compute the Gaussian-field posterior on the unlabeled block.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Observed scores on the labeled vertices.
    field_scale:
        The field's sigma; scales the covariance only (the mean — and
        hence the hard criterion — is invariant to it).
    check_reachability:
        Verify the grounded Laplacian is non-singular first.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    field_scale = check_positive_scalar(field_scale, "field_scale")
    n = y_labeled.shape[0]
    total = weights.shape[0]
    if n >= total:
        raise DataValidationError(
            f"need at least one unlabeled vertex; graph has {total} vertices "
            f"and {n} labels"
        )
    if check_reachability:
        require_labeled_reachability(weights, n)
    m = total - n
    if sparse.issparse(weights):
        # Keep the graph sparse: factor the grounded Laplacian once and
        # back-substitute the identity columns for the inverse.  The
        # posterior covariance itself is inherently dense (it is the
        # requested m x m output), but the (n+m)^2 weights never are.
        csr = weights.tocsr()
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        grounded = sparse.diags(degrees[n:], format="csr") - csr[n:, n:]
        factor = factorize_spd(grounded)
        mean = factor.solve(np.asarray(csr[n:, :n] @ y_labeled).ravel())
        inverse = factor.solve(np.eye(m))
    else:
        degrees = weights.sum(axis=1)
        grounded = np.diag(degrees[n:]) - weights[n:, n:]
        inverse = np.linalg.inv(grounded)
        mean = inverse @ (weights[n:, :n] @ y_labeled)
    covariance = field_scale**2 * inverse
    return GaussianFieldPosterior(
        mean=mean,
        covariance=covariance,
        n_labeled=n,
        field_scale=field_scale,
    )
