"""Laplacian-eigenbasis regression (Belkin & Niyogi's family).

A different route to semi-supervised learning on the same graph:
instead of penalizing roughness, *restrict* the hypothesis space to the
span of the first ``p`` Laplacian eigenvectors — the graph's smoothest
functions — and least-squares fit their coefficients on the labeled
vertices:

    f = U_p a,    a = argmin ||y - (U_p)_labeled a||^2.

This is the regularization-by-dimension method of Belkin, Matveeva &
Niyogi (2004), the paper's reference [13], and serves as a third
baseline family alongside the hard/soft criteria: it also uses the
unlabeled data (through the eigenvectors) but controls capacity by
truncation rather than a penalty weight.

The method's premise is that the graph's low eigenvectors are
*informative* — true for clustered/manifold data (it solves two moons
from a dozen labels) but false for the paper's nearly-flat synthetic
kernel graphs, where all non-constant eigenvectors are interchangeable
noise and the method degrades sharply.  The baseline is included with
that caveat; the tests exercise both regimes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.hard import _coerce_weights
from repro.core.result import FitResult
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.graph.laplacian import laplacian
from repro.graph.similarity import build_similarity_graph
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.utils.validation import check_labels, check_matrix_2d, check_weight_matrix

__all__ = ["solve_eigenbasis", "EigenbasisRegressor"]


def solve_eigenbasis(
    weights,
    y_labeled,
    *,
    n_components: int,
    ridge: float = 1e-6,
) -> FitResult:
    """Least-squares fit in the span of the smoothest eigenvectors.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Observed responses of the first ``n`` vertices.
    n_components:
        Basis size ``p``; must satisfy ``1 <= p <= min(n, n+m)`` (more
        components than labels would make the fit underdetermined).
    ridge:
        Tikhonov regularization on the coefficients.  Eigenvectors can
        be almost orthogonal to the labeled rows (localized on the
        unlabeled region), in which case plain least squares explodes
        their coefficients; a small ridge keeps such directions muted.
    """
    weights = check_weight_matrix(_coerce_weights(weights))
    y_labeled = check_labels(y_labeled, name="y_labeled")
    total = weights.shape[0]
    n = y_labeled.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    if not 1 <= n_components <= min(n, total):
        raise ConfigurationError(
            f"n_components must be in [1, {min(n, total)}], got {n_components}"
        )
    if ridge < 0:
        raise ConfigurationError(f"ridge must be >= 0, got {ridge}")
    lap = laplacian(weights)
    dense = np.asarray(lap.todense()) if sparse.issparse(lap) else lap
    _, vectors = np.linalg.eigh(dense)
    basis = vectors[:, :n_components]  # smoothest first (ascending eigenvalues)
    design = basis[:n]
    gram = design.T @ design + ridge * np.eye(n_components)
    coefficients = np.linalg.solve(gram, design.T @ y_labeled)
    scores = basis @ coefficients
    return FitResult(
        scores=scores,
        n_labeled=n,
        lam=float(n_components),
        method="eigenbasis",
        criterion="eigenbasis",
        details={"n_components": n_components},
    )


class EigenbasisRegressor:
    """Estimator wrapper over :func:`solve_eigenbasis`.

    Mirrors :class:`~repro.core.estimators.GraphSSLRegressor`: ``fit``
    builds the graph over labeled + unlabeled inputs and fits the
    truncated eigenbasis; ``predict`` returns the unlabeled scores.
    """

    def __init__(
        self,
        n_components: int = 10,
        *,
        ridge: float = 1e-6,
        kernel: RadialKernel | None = None,
        bandwidth="median",
        graph: str = "full",
        graph_params: dict | None = None,
    ):
        if n_components < 1:
            raise ConfigurationError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components
        self.ridge = ridge
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self.graph = graph
        self.graph_params = dict(graph_params or {})
        self.result_: FitResult | None = None
        self.bandwidth_: float | None = None

    def fit(self, x_labeled, y_labeled, x_unlabeled) -> "EigenbasisRegressor":
        from repro.core.estimators import _resolve_bandwidth

        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
        if x_unlabeled.shape[1] != x_labeled.shape[1]:
            raise DataValidationError(
                f"x_labeled has {x_labeled.shape[1]} columns but x_unlabeled "
                f"has {x_unlabeled.shape[1]}"
            )
        x_all = np.vstack([x_labeled, x_unlabeled])
        self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_all, x_labeled.shape[0])
        graph = build_similarity_graph(
            x_all,
            construction=self.graph,
            kernel=self.kernel,
            bandwidth=self.bandwidth_,
            **self.graph_params,
        )
        self.result_ = solve_eigenbasis(
            graph.weights, y_labeled,
            n_components=self.n_components, ridge=self.ridge,
        )
        return self

    def predict(self) -> np.ndarray:
        if self.result_ is None:
            raise NotFittedError("EigenbasisRegressor.predict called before fit")
        return self.result_.unlabeled_scores.copy()

    def fit_predict(self, x_labeled, y_labeled, x_unlabeled) -> np.ndarray:
        return self.fit(x_labeled, y_labeled, x_unlabeled).predict()
