"""Estimator-style wrappers over the criterion solvers.

These provide a familiar ``fit`` / ``predict`` workflow around the
functional core.  Graph-based SSL is *transductive*: ``fit`` receives both
the labeled data and the unlabeled inputs whose scores are wanted, builds
the similarity graph over their union, and solves the chosen criterion;
``predict`` then simply returns the unlabeled scores.

    >>> model = HardLabelPropagation(bandwidth="paper")
    >>> scores = model.fit(x_labeled, y, x_unlabeled).predict()

Bandwidths may be a positive float or one of the named rules:
``"paper"`` (``(log n / n)^{1/d}``, the synthetic-experiment rule),
``"median"`` (median pairwise distance, the COIL rule), ``"scott"``,
``"silverman"``, ``"knn"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson
from repro.core.result import FitResult
from repro.core.soft import solve_soft_criterion
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.graph.similarity import SimilarityGraph, build_similarity_graph
from repro.kernels.bandwidth import (
    knn_distance_rule,
    median_heuristic,
    paper_bandwidth_rule,
    scott_rule,
    silverman_rule,
)
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.utils.validation import check_labels, check_matrix_2d, check_positive_scalar

__all__ = [
    "GraphSSLRegressor",
    "GraphSSLClassifier",
    "HardLabelPropagation",
    "SoftLabelPropagation",
    "NadarayaWatsonRegressor",
    "NadarayaWatsonClassifier",
]

_BANDWIDTH_RULES = ("paper", "median", "scott", "silverman", "knn")


def _resolve_bandwidth(rule, x_all: np.ndarray, n_labeled: int) -> float:
    """Turn a bandwidth spec (float or rule name) into a number."""
    if isinstance(rule, str):
        if rule == "paper":
            return paper_bandwidth_rule(n_labeled, x_all.shape[1])
        if rule == "median":
            return median_heuristic(x_all)
        if rule == "scott":
            return scott_rule(x_all)
        if rule == "silverman":
            return silverman_rule(x_all)
        if rule == "knn":
            return knn_distance_rule(x_all)
        raise ConfigurationError(
            f"unknown bandwidth rule {rule!r}; known rules: {_BANDWIDTH_RULES} "
            f"(or pass a positive float)"
        )
    return check_positive_scalar(rule, "bandwidth")


class GraphSSLRegressor:
    """Transductive graph-SSL regression with a tunable criterion.

    Parameters
    ----------
    lam:
        Tuning parameter ``lambda >= 0``; 0 is the hard criterion.
    kernel:
        Radial kernel (Gaussian RBF by default, as in the paper).
    bandwidth:
        Positive float or a rule name (see module docstring).
    graph:
        Graph construction: ``"full"`` (the paper's), ``"knn"`` or
        ``"epsilon"``.
    graph_params:
        Extra parameters for the construction (e.g. ``{"k": 10}``).
    solver:
        Linear-solver backend for the criterion.
    soft_method:
        ``"schur"`` (Eq. 4) or ``"full"`` (Eq. 3) for ``lam > 0``.
    """

    def __init__(
        self,
        lam: float = 0.0,
        *,
        kernel: RadialKernel | None = None,
        bandwidth="paper",
        graph: str = "full",
        graph_params: dict | None = None,
        solver: str = "direct",
        soft_method: str = "schur",
    ):
        self.lam = check_positive_scalar(lam, "lam", allow_zero=True)
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self.graph = graph
        self.graph_params = dict(graph_params or {})
        self.solver = solver
        self.soft_method = soft_method
        self.result_: FitResult | None = None
        self.graph_: SimilarityGraph | None = None
        self.bandwidth_: float | None = None
        self._x_all: np.ndarray | None = None

    def fit(self, x_labeled, y_labeled, x_unlabeled) -> "GraphSSLRegressor":
        """Build the graph over labeled + unlabeled inputs and solve.

        ``x_unlabeled`` may have zero rows, in which case ``predict``
        returns an empty array.
        """
        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
        if x_unlabeled.shape[1] != x_labeled.shape[1]:
            raise DataValidationError(
                f"x_labeled has {x_labeled.shape[1]} columns but x_unlabeled "
                f"has {x_unlabeled.shape[1]}"
            )
        y_labeled = check_labels(y_labeled, x_labeled.shape[0], name="y_labeled")

        x_all = np.vstack([x_labeled, x_unlabeled])
        self._x_all = x_all
        self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_all, x_labeled.shape[0])
        self.graph_ = build_similarity_graph(
            x_all,
            construction=self.graph,
            kernel=self.kernel,
            bandwidth=self.bandwidth_,
            **self.graph_params,
        )
        if self.lam == 0.0:
            self.result_ = solve_hard_criterion(
                self.graph_.weights, y_labeled, method=self.solver
            )
        else:
            self.result_ = solve_soft_criterion(
                self.graph_.weights,
                y_labeled,
                self.lam,
                method=self.soft_method,
                solver=self.solver,
            )
        return self

    def predict(self) -> np.ndarray:
        """Scores on the unlabeled inputs passed to ``fit``."""
        if self.result_ is None:
            raise NotFittedError(f"{type(self).__name__}.predict called before fit")
        return self.result_.unlabeled_scores.copy()

    def fit_predict(self, x_labeled, y_labeled, x_unlabeled) -> np.ndarray:
        """Convenience: ``fit`` then ``predict``."""
        return self.fit(x_labeled, y_labeled, x_unlabeled).predict()

    def induce(self, x_new) -> np.ndarray:
        """Out-of-sample extension (Delalleau et al. 2005's induction).

        Transductive solutions are defined only on the fitted vertices;
        the standard induction formula extends them to a new point as
        the kernel-weighted average of *all* fitted scores:

            f(x) = sum_j K((x - x_j)/h) f_j / sum_j K((x - x_j)/h),

        which is the minimizer of the criterion when the new point is
        appended with every existing score held fixed.  Raises
        :class:`DataValidationError` for points with no support overlap
        (all kernel weights zero).
        """
        if self.result_ is None or self.bandwidth_ is None:
            raise NotFittedError(f"{type(self).__name__}.induce called before fit")
        x_new = check_matrix_2d(x_new, "x_new")
        if x_new.shape[1] != self._x_all.shape[1]:
            raise DataValidationError(
                f"x_new has {x_new.shape[1]} columns but the model was fit "
                f"on {self._x_all.shape[1]}"
            )
        cross = self.kernel.gram(x_new, self._x_all, bandwidth=self.bandwidth_)
        denominators = cross.sum(axis=1)
        zero = np.flatnonzero(denominators <= 0)
        if zero.size:
            raise DataValidationError(
                f"induction undefined at points {zero[:10].tolist()}: no "
                f"fitted point within the kernel support; increase the "
                f"bandwidth or refit including these points"
            )
        return (cross @ self.result_.scores) / denominators

    @property
    def scores_(self) -> np.ndarray:
        """Full fitted score vector (labeled first)."""
        if self.result_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return self.result_.scores


class HardLabelPropagation(GraphSSLRegressor):
    """The hard criterion (Eq. 1/5): ``lambda`` fixed to zero.

    The paper's recommended method — consistent under Theorem II.1 and
    free of tuning-parameter selection.
    """

    def __init__(self, **kwargs):
        if "lam" in kwargs:
            raise ConfigurationError(
                "HardLabelPropagation fixes lam=0; use SoftLabelPropagation "
                "or GraphSSLRegressor to set lam"
            )
        super().__init__(lam=0.0, **kwargs)


class SoftLabelPropagation(GraphSSLRegressor):
    """The soft criterion (Eq. 2/4) with explicit ``lam > 0``.

    Shown inconsistent for large ``lam`` by Proposition II.2; provided for
    the paper's comparisons.
    """

    def __init__(self, lam: float, **kwargs):
        lam = check_positive_scalar(lam, "lam")
        super().__init__(lam=lam, **kwargs)


class GraphSSLClassifier(GraphSSLRegressor):
    """Binary transductive classification on 0/1 labels.

    Fits the regression scores, interprets them as estimates of
    ``P(Y=1|X)`` (clipped to [0, 1] for ``predict_proba``), and
    thresholds at 0.5 for hard labels.  Scores are kept unclipped
    internally so AUC computations see the raw ranking.
    """

    def fit(self, x_labeled, y_labeled, x_unlabeled) -> "GraphSSLClassifier":
        y_arr = check_labels(y_labeled, name="y_labeled")
        unique = np.unique(y_arr)
        if not np.all(np.isin(unique, (0.0, 1.0))):
            raise DataValidationError(
                f"GraphSSLClassifier requires binary 0/1 labels, got {unique[:5]}"
            )
        super().fit(x_labeled, y_arr, x_unlabeled)
        return self

    def decision_scores(self) -> np.ndarray:
        """Raw unlabeled scores (unclipped; suitable for ROC/AUC)."""
        return super().predict()

    def predict_proba(self) -> np.ndarray:
        """Scores clipped to [0, 1] as probability estimates."""
        return np.clip(super().predict(), 0.0, 1.0)

    def predict(self) -> np.ndarray:
        """Hard 0/1 labels at the 0.5 threshold."""
        return (self.decision_scores() >= 0.5).astype(np.float64)

    def induce_proba(self, x_new) -> np.ndarray:
        """Out-of-sample class probabilities via the induction formula."""
        return np.clip(self.induce(x_new), 0.0, 1.0)

    def induce_labels(self, x_new) -> np.ndarray:
        """Out-of-sample hard labels at the 0.5 threshold."""
        return (self.induce(x_new) >= 0.5).astype(np.float64)


class NadarayaWatsonRegressor:
    """Inductive Nadaraya-Watson kernel regression (Eq. 6).

    Unlike the graph criteria this is inductive: ``fit`` stores the
    labeled data only and ``predict`` takes arbitrary query points.  The
    consistency proof shows the hard criterion converges to this
    estimator; tests verify their numerical agreement on shared graphs.
    """

    def __init__(self, *, kernel: RadialKernel | None = None, bandwidth="paper"):
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.bandwidth_: float | None = None

    def fit(self, x_labeled, y_labeled) -> "NadarayaWatsonRegressor":
        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        self._y = check_labels(y_labeled, x_labeled.shape[0], name="y_labeled")
        self._x = x_labeled
        self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_labeled, x_labeled.shape[0])
        return self

    def predict(self, x_query) -> np.ndarray:
        if self._x is None or self._y is None or self.bandwidth_ is None:
            raise NotFittedError("NadarayaWatsonRegressor.predict called before fit")
        return nadaraya_watson(
            self._x, self._y, x_query, kernel=self.kernel, bandwidth=self.bandwidth_
        )

    def fit_predict(self, x_labeled, y_labeled, x_query) -> np.ndarray:
        return self.fit(x_labeled, y_labeled).predict(x_query)


class NadarayaWatsonClassifier(NadarayaWatsonRegressor):
    """Nadaraya-Watson on 0/1 labels with probability and label outputs."""

    def fit(self, x_labeled, y_labeled) -> "NadarayaWatsonClassifier":
        y_arr = check_labels(y_labeled, name="y_labeled")
        unique = np.unique(y_arr)
        if not np.all(np.isin(unique, (0.0, 1.0))):
            raise DataValidationError(
                f"NadarayaWatsonClassifier requires binary 0/1 labels, got {unique[:5]}"
            )
        super().fit(x_labeled, y_arr)
        return self

    def predict_proba(self, x_query) -> np.ndarray:
        """NW scores are convex label combinations, hence already in [0, 1]."""
        return super().predict(x_query)

    def predict(self, x_query) -> np.ndarray:
        return (self.predict_proba(x_query) >= 0.5).astype(np.float64)
