"""Supervised baselines.

The paper's comparisons are between the hard and soft criteria, but a
useful reproduction also shows where plain supervised learning on the
labeled set lands.  These baselines are written from scratch:

* :class:`KNNRegressor` / :class:`KNNClassifier` — k-nearest-neighbour
  prediction (uniform or distance weighting);
* :class:`MeanPredictor` — the global labeled mean, which is exactly the
  soft criterion's ``lambda = inf`` limit (Proposition II.2), so the soft
  criterion at large ``lambda`` can be checked against it directly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.kernels.base import pairwise_sq_distances
from repro.utils.validation import check_labels, check_matrix_2d

__all__ = ["KNNRegressor", "KNNClassifier", "MeanPredictor"]


class KNNRegressor:
    """k-nearest-neighbour regression.

    Parameters
    ----------
    k:
        Number of neighbours.
    weighting:
        ``"uniform"`` (plain average) or ``"distance"`` (inverse-distance
        weights, with exact matches short-circuiting to the matched
        label).
    """

    def __init__(self, k: int = 5, weighting: str = "uniform"):
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if weighting not in ("uniform", "distance"):
            raise ConfigurationError(
                f"weighting must be 'uniform' or 'distance', got {weighting!r}"
            )
        self.k = k
        self.weighting = weighting
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        """Store the training set (lazy learner)."""
        x = check_matrix_2d(x, "x")
        y = check_labels(y, x.shape[0], name="y")
        if self.k > x.shape[0]:
            raise DataValidationError(
                f"k={self.k} exceeds the number of training samples {x.shape[0]}"
            )
        self._x = x
        self._y = y
        return self

    def predict(self, x_query: np.ndarray) -> np.ndarray:
        """Predict by (weighted) average over the k nearest neighbours."""
        if self._x is None or self._y is None:
            raise NotFittedError("KNNRegressor.predict called before fit")
        x_query = check_matrix_2d(x_query, "x_query")
        sq = pairwise_sq_distances(x_query, self._x)
        neighbour_idx = np.argpartition(sq, kth=self.k - 1, axis=1)[:, : self.k]
        rows = np.arange(x_query.shape[0])[:, None]
        neighbour_sq = sq[rows, neighbour_idx]
        neighbour_y = self._y[neighbour_idx]
        if self.weighting == "uniform":
            return neighbour_y.mean(axis=1)
        predictions = np.empty(x_query.shape[0])
        for i in range(x_query.shape[0]):
            dists = np.sqrt(neighbour_sq[i])
            exact = dists == 0
            if np.any(exact):
                predictions[i] = float(np.mean(neighbour_y[i][exact]))
                continue
            inv = 1.0 / dists
            predictions[i] = float(np.sum(inv * neighbour_y[i]) / np.sum(inv))
        return predictions


class KNNClassifier(KNNRegressor):
    """k-NN binary classification on 0/1 labels.

    ``predict_proba`` is the neighbour label average; ``predict``
    thresholds it at 0.5.
    """

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        y_arr = check_labels(y, name="y")
        unique = np.unique(y_arr)
        if not np.all(np.isin(unique, (0.0, 1.0))):
            raise DataValidationError(
                f"KNNClassifier requires binary 0/1 labels, got values {unique[:5]}"
            )
        super().fit(x, y_arr)
        return self

    def predict_proba(self, x_query: np.ndarray) -> np.ndarray:
        """Estimated probability of the positive class."""
        return super().predict(x_query)

    def predict(self, x_query: np.ndarray) -> np.ndarray:
        """Hard 0/1 labels at the 0.5 threshold."""
        return (self.predict_proba(x_query) >= 0.5).astype(np.float64)


class MeanPredictor:
    """Predict the global labeled mean everywhere.

    This is the soft criterion's ``lambda = inf`` limit on a connected
    graph (Proposition II.2) and the hard criterion's exact solution in
    the Section III toy geometry, making it the natural floor baseline.
    """

    def __init__(self):
        self._mean: float | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MeanPredictor":
        check_matrix_2d(x, "x")
        y = check_labels(y, name="y")
        self._mean = float(np.mean(y))
        return self

    def predict(self, x_query: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise NotFittedError("MeanPredictor.predict called before fit")
        x_query = check_matrix_2d(x_query, "x_query")
        return np.full(x_query.shape[0], self._mean)
