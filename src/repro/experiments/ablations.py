"""Ablation experiments for the design choices DESIGN.md calls out.

Each ablation holds the Figure-1 workload fixed (Model 1, hard
criterion) and swaps one axis:

* :func:`run_kernel_ablation` — kernel family (the theorem wants compact
  support; the paper's RBF has full support);
* :func:`run_bandwidth_ablation` — bandwidth rule (paper rule vs median
  heuristic vs Scott/Silverman/k-NN);
* :func:`run_graph_ablation` — full graph vs k-NN vs epsilon
  sparsifiers;
* :func:`run_solver_ablation` — direct vs CG vs Jacobi vs Gauss-Seidel
  vs label propagation, reporting both agreement with the direct solve
  and wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.propagation import propagate_labels
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_replicates
from repro.experiments.sweep import SweepResult
from repro.graph.similarity import build_similarity_graph
from repro.kernels.bandwidth import (
    knn_distance_rule,
    median_heuristic,
    paper_bandwidth_rule,
    scott_rule,
    silverman_rule,
)
from repro.kernels.library import kernel_by_name
from repro.metrics.regression import root_mean_squared_error
from repro.utils.timing import Stopwatch

__all__ = [
    "run_kernel_ablation",
    "run_bandwidth_ablation",
    "run_graph_ablation",
    "run_solver_ablation",
    "SolverAblationResult",
]

_DEFAULT_KERNELS = (
    "gaussian",
    "truncated_gaussian",
    "epanechnikov",
    "boxcar",
    "triangular",
    "tricube",
)
_DEFAULT_BANDWIDTH_RULES = ("paper", "median", "scott", "silverman", "knn")
_DEFAULT_GRAPHS = ("full", "knn", "epsilon", "local_scaling")


def _ablation_sweep(
    name: str,
    variants: tuple[str, ...],
    replicate_fn,
    *,
    n_replicates: int,
    seed,
    meta: dict,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Aggregate a single-metric replicate function over named variants."""
    summary = run_replicates(
        replicate_fn, n_replicates=n_replicates, seed=seed, n_jobs=n_jobs,
        label=name, progress=progress,
    )
    means = np.array([[summary.means[v] for v in variants]])
    stds = np.array([[summary.stds[v] for v in variants]])
    sems = np.array([[summary.sems[v] for v in variants]])
    return SweepResult(
        name=name,
        x_label="variant",
        x_values=variants,
        series_labels=("rmse",),
        means=means,
        stds=stds,
        sems=sems,
        metric="rmse",
        n_replicates=n_replicates,
        meta=meta,
    )


def _kernel_ablation_replicate(
    rng, *, kernels: tuple[str, ...], n_labeled: int, n_unlabeled: int
) -> dict[str, float]:
    """One kernel-ablation replicate (module-level so it pickles for n_jobs)."""
    instances = {name: kernel_by_name(name) for name in kernels}
    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=rng)
    base_bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    metrics = {}
    for name, kernel in instances.items():
        scale = 1.0 if not np.isfinite(kernel.support_radius) else 2.0
        graph = build_similarity_graph(
            data.x_all, kernel=kernel, bandwidth=scale * base_bandwidth
        )
        fit = solve_hard_criterion(graph.weights, data.y_labeled)
        metrics[name] = root_mean_squared_error(
            data.q_unlabeled, fit.unlabeled_scores
        )
    return metrics


def run_kernel_ablation(
    *,
    kernels: tuple[str, ...] = _DEFAULT_KERNELS,
    n_labeled: int = 200,
    n_unlabeled: int = 30,
    n_replicates: int = 50,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Hard-criterion RMSE under different kernel families.

    The bandwidth is scaled per kernel so that compactly-supported
    kernels (support radius 1) cover a similar neighbourhood as the
    Gaussian at the paper's bandwidth; without this, boxcar-style
    kernels would see far fewer neighbours and the comparison would
    conflate kernel shape with effective scale.
    """
    for name in kernels:  # validate names before any replicate runs
        kernel_by_name(name)

    return _ablation_sweep(
        "ablation_kernels", tuple(kernels),
        partial(
            _kernel_ablation_replicate,
            kernels=tuple(kernels),
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
        ),
        n_replicates=n_replicates, seed=seed,
        meta={"n": n_labeled, "m": n_unlabeled},
        n_jobs=n_jobs, progress=progress,
    )


def _resolve_bandwidth(rule: str, x, n: int) -> float:
    """Apply one named bandwidth rule (picklable, unlike a lambda table)."""
    if rule == "paper":
        return paper_bandwidth_rule(n, x.shape[1])
    if rule == "median":
        return median_heuristic(x)
    if rule == "scott":
        return scott_rule(x)
    if rule == "silverman":
        return silverman_rule(x)
    if rule == "knn":
        return knn_distance_rule(x)
    raise ConfigurationError(f"unknown bandwidth rule {rule!r}")


def _bandwidth_ablation_replicate(
    rng, *, rules: tuple[str, ...], n_labeled: int, n_unlabeled: int
) -> dict[str, float]:
    """One bandwidth-ablation replicate (module-level so it pickles)."""
    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=rng)
    metrics = {}
    for rule in rules:
        bandwidth = _resolve_bandwidth(rule, data.x_all, n_labeled)
        graph = build_similarity_graph(data.x_all, bandwidth=bandwidth)
        fit = solve_hard_criterion(graph.weights, data.y_labeled)
        metrics[rule] = root_mean_squared_error(
            data.q_unlabeled, fit.unlabeled_scores
        )
    return metrics


def run_bandwidth_ablation(
    *,
    rules: tuple[str, ...] = _DEFAULT_BANDWIDTH_RULES,
    n_labeled: int = 200,
    n_unlabeled: int = 30,
    n_replicates: int = 50,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Hard-criterion RMSE under different bandwidth-selection rules."""
    unknown = [r for r in rules if r not in _DEFAULT_BANDWIDTH_RULES]
    if unknown:
        raise ConfigurationError(f"unknown bandwidth rules {unknown}")

    return _ablation_sweep(
        "ablation_bandwidth", tuple(rules),
        partial(
            _bandwidth_ablation_replicate,
            rules=tuple(rules),
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
        ),
        n_replicates=n_replicates, seed=seed,
        meta={"n": n_labeled, "m": n_unlabeled},
        n_jobs=n_jobs, progress=progress,
    )


def _graph_ablation_replicate(
    rng,
    *,
    constructions: tuple[str, ...],
    n_labeled: int,
    n_unlabeled: int,
    knn_k: int,
    epsilon_scale: float,
) -> dict[str, float]:
    """One graph-ablation replicate (module-level so it pickles)."""
    from repro.graph.similarity import local_scaling_graph

    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=rng)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    metrics = {}
    for construction in constructions:
        if construction == "local_scaling":
            graph = local_scaling_graph(data.x_all, k=min(knn_k, 7))
        else:
            params = {}
            if construction == "knn":
                params["k"] = knn_k
            elif construction == "epsilon":
                params["radius"] = epsilon_scale * bandwidth
            graph = build_similarity_graph(
                data.x_all, construction=construction,
                bandwidth=bandwidth, **params,
            )
        fit = solve_hard_criterion(graph.weights, data.y_labeled)
        metrics[construction] = root_mean_squared_error(
            data.q_unlabeled, fit.unlabeled_scores
        )
    return metrics


def run_graph_ablation(
    *,
    constructions: tuple[str, ...] = _DEFAULT_GRAPHS,
    n_labeled: int = 200,
    n_unlabeled: int = 30,
    knn_k: int = 20,
    epsilon_scale: float = 1.5,
    n_replicates: int = 50,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Hard-criterion RMSE under full vs sparsified graph constructions."""
    unknown = [c for c in constructions if c not in _DEFAULT_GRAPHS]
    if unknown:
        raise ConfigurationError(f"unknown graph constructions {unknown}")

    return _ablation_sweep(
        "ablation_graph", tuple(constructions),
        partial(
            _graph_ablation_replicate,
            constructions=tuple(constructions),
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            knn_k=knn_k,
            epsilon_scale=epsilon_scale,
        ),
        n_replicates=n_replicates, seed=seed,
        meta={"n": n_labeled, "m": n_unlabeled, "k": knn_k},
        n_jobs=n_jobs, progress=progress,
    )


@dataclass(frozen=True)
class SolverAblationResult:
    """Solver-backend comparison on one hard-criterion problem.

    Attributes
    ----------
    methods:
        Backend names (``"direct"`` is the reference).
    max_deviation:
        Per-method max-norm deviation from the direct solution.
    seconds:
        Mean wall-clock per solve.
    """

    methods: tuple[str, ...]
    max_deviation: tuple[float, ...]
    seconds: tuple[float, ...]

    def to_rows(self) -> list[list]:
        return [
            [method, dev, sec]
            for method, dev, sec in zip(self.methods, self.max_deviation, self.seconds)
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["solver", "max|f-f_direct|", "seconds"]


def run_solver_ablation(
    *,
    methods: tuple[str, ...] = ("direct", "cg", "jacobi", "gauss_seidel", "propagation"),
    n_labeled: int = 300,
    n_unlabeled: int = 100,
    repeats: int = 3,
    seed: int = 0,
) -> SolverAblationResult:
    """Compare solver backends for agreement and speed on one problem."""
    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=seed)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = build_similarity_graph(data.x_all, bandwidth=bandwidth)
    reference = solve_hard_criterion(
        graph.weights, data.y_labeled, method="direct"
    ).unlabeled_scores

    watch = Stopwatch()
    deviations = []
    for method in methods:
        scores = None
        for _ in range(repeats):
            with watch.measure(method):
                if method == "propagation":
                    scores = propagate_labels(
                        graph.weights, data.y_labeled, check_reachability=False
                    ).unlabeled_scores
                else:
                    scores = solve_hard_criterion(
                        graph.weights, data.y_labeled, method=method,
                        check_reachability=False,
                    ).unlabeled_scores
        deviations.append(float(np.max(np.abs(scores - reference))))
    return SolverAblationResult(
        methods=tuple(methods),
        max_deviation=tuple(deviations),
        seconds=tuple(watch.mean(method) for method in methods),
    )
