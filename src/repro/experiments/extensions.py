"""Extension experiments: the paper's stated future-work directions.

Section VI lists two open directions, both implemented here:

* :func:`run_metric_study` — "investigate the theoretical properties of
  other indicators of prediction accuracy such as AUC and MCC":
  evaluates hard vs soft under AUC, MCC and accuracy on the synthetic
  workload, testing whether the RMSE ordering (hard best, worse with
  lambda) transfers to ranking/association metrics.
* :func:`run_m_growth_study` — "investigate the behavior when the
  unlabeled data grow faster than the labeled data": couples m to n via
  ``m = round(c * n^gamma)`` and traces RMSE along growing n for
  sublinear, linear and superlinear gamma, alongside the theorem's
  ratio ``m/(n h^d)``.  The conjecture (from the paper's Figure 2
  discussion) is that consistency survives exactly when the ratio
  vanishes — and that the hard criterion stays ahead of the soft one
  even when it does not.

A third study targets the paper's practical message head-on:

* :func:`run_tuned_lambda_study` — gives the soft criterion every
  advantage by cross-validating lambda per replicate
  (:mod:`repro.model_selection`), then compares against the untuned
  hard criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_replicates
from repro.experiments.sweep import SweepResult
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.classification import accuracy, auc, matthews_corrcoef
from repro.metrics.regression import root_mean_squared_error
from repro.model_selection.search import select_lambda

__all__ = [
    "run_metric_study",
    "run_m_growth_study",
    "MGrowthResult",
    "run_tuned_lambda_study",
    "TunedLambdaResult",
]


def _metric_study_replicate(
    rng,
    *,
    n_labeled: int,
    n_unlabeled: int,
    lambdas: tuple[float, ...],
    metrics: tuple[str, ...],
    model: str,
) -> dict[str, float]:
    """One metric-study replicate (module-level so it pickles for n_jobs)."""
    data = make_synthetic_dataset(n_labeled, n_unlabeled, model=model, seed=rng)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    out = {}
    for lam in lambdas:
        fit = solve_soft_criterion(
            graph.weights, data.y_labeled, lam, check_reachability=False
        )
        scores = fit.unlabeled_scores
        hidden = data.y_unlabeled
        if hidden.min() == hidden.max():
            # Degenerate replicate; score it neutrally.
            values = {"auc": 0.5, "mcc": 0.0, "accuracy": float(np.mean((scores >= 0.5) == hidden))}
        else:
            predictions = (scores >= 0.5).astype(float)
            values = {
                "auc": auc(hidden, scores),
                "mcc": matthews_corrcoef(hidden, predictions),
                "accuracy": accuracy(hidden, predictions),
            }
        for metric in metrics:
            out[f"{metric}@lambda={lam:g}"] = values[metric]
    return out


def run_metric_study(
    *,
    n_labeled: int = 200,
    n_unlabeled: int = 100,
    lambdas: tuple[float, ...] = (0.0, 0.01, 0.1, 5.0),
    metrics: tuple[str, ...] = ("auc", "mcc", "accuracy"),
    model: str = "model1",
    n_replicates: int = 50,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Hard vs soft under AUC / MCC / accuracy (future-work metric study).

    Returns a sweep with one series per metric and the lambda grid on
    the x-axis.  AUC and MCC are *larger-is-better*; the paper's RMSE
    finding transfers if every series is maximal at lambda = 0.
    """
    known = {"auc", "mcc", "accuracy"}
    unknown = set(metrics) - known
    if unknown:
        raise ConfigurationError(f"unknown metrics {sorted(unknown)}; known: {sorted(known)}")

    replicate = partial(
        _metric_study_replicate,
        n_labeled=n_labeled,
        n_unlabeled=n_unlabeled,
        lambdas=tuple(lambdas),
        metrics=tuple(metrics),
        model=model,
    )
    summary = run_replicates(
        replicate, n_replicates=n_replicates, seed=seed, n_jobs=n_jobs,
        label="metric_study", progress=progress,
    )
    means = np.array(
        [[summary.means[f"{metric}@lambda={lam:g}"] for lam in lambdas] for metric in metrics]
    )
    stds = np.array(
        [[summary.stds[f"{metric}@lambda={lam:g}"] for lam in lambdas] for metric in metrics]
    )
    sems = np.array(
        [[summary.sems[f"{metric}@lambda={lam:g}"] for lam in lambdas] for metric in metrics]
    )
    return SweepResult(
        name="metric_study",
        x_label="lambda",
        x_values=tuple(lambdas),
        series_labels=tuple(metrics),
        means=means,
        stds=stds,
        sems=sems,
        metric="mixed (larger is better)",
        n_replicates=n_replicates,
        meta={"n": n_labeled, "m": n_unlabeled, "model": model},
    )


@dataclass(frozen=True)
class MGrowthResult:
    """RMSE along growing n with m coupled as ``m = round(c n^gamma)``.

    Attributes
    ----------
    gamma:
        The coupling exponent (1.0 = m proportional to n; > 1 is the
        regime the paper conjectures is inconsistent).
    n_values, m_values:
        The realized grid.
    hard_rmse, soft_rmse:
        Mean RMSE of the hard criterion and of the soft criterion at
        ``soft_lambda``.
    growth_ratio:
        The theorem's ``m / (n h^d)`` at each grid point.
    """

    gamma: float
    n_values: tuple[int, ...]
    m_values: tuple[int, ...]
    hard_rmse: tuple[float, ...]
    soft_rmse: tuple[float, ...]
    growth_ratio: tuple[float, ...]

    def hard_always_ahead(self) -> bool:
        """The paper's observation: hard beats soft in every regime."""
        return all(h <= s for h, s in zip(self.hard_rmse, self.soft_rmse))

    def to_rows(self) -> list[list]:
        return [
            [n, m, ratio, hard, soft]
            for n, m, ratio, hard, soft in zip(
                self.n_values, self.m_values, self.growth_ratio,
                self.hard_rmse, self.soft_rmse,
            )
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["n", "m", "m/(n h^d)", "hard_rmse", "soft_rmse"]


def _m_growth_replicate(
    rng,
    *,
    n: int,
    m: int,
    bandwidth: float,
    soft_lambda: float,
    model: str,
) -> dict[str, float]:
    """One m-growth replicate (module-level so it pickles for n_jobs)."""
    data = make_synthetic_dataset(n, m, model=model, seed=rng)
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    hard = solve_hard_criterion(
        graph.weights, data.y_labeled, check_reachability=False
    )
    soft = solve_soft_criterion(
        graph.weights, data.y_labeled, soft_lambda,
        check_reachability=False,
    )
    return {
        "hard": root_mean_squared_error(data.q_unlabeled, hard.unlabeled_scores),
        "soft": root_mean_squared_error(data.q_unlabeled, soft.unlabeled_scores),
    }


def run_m_growth_study(
    *,
    gamma: float,
    coefficient: float = 1.0,
    n_values: tuple[int, ...] = (50, 100, 200, 400, 800),
    soft_lambda: float = 0.1,
    model: str = "model1",
    n_replicates: int = 30,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> MGrowthResult:
    """Trace RMSE with m coupled to n by ``m = round(coefficient * n^gamma)``."""
    if gamma <= 0:
        raise ConfigurationError(f"gamma must be > 0, got {gamma}")
    if coefficient <= 0:
        raise ConfigurationError(f"coefficient must be > 0, got {coefficient}")
    hard_means = []
    soft_means = []
    m_values = []
    ratios = []
    for j, n in enumerate(n_values):
        m = max(1, int(round(coefficient * n**gamma)))
        m_values.append(m)
        bandwidth = paper_bandwidth_rule(n, 5)
        ratios.append(m / (n * bandwidth**5))

        summary = run_replicates(
            partial(
                _m_growth_replicate,
                n=n,
                m=m,
                bandwidth=bandwidth,
                soft_lambda=soft_lambda,
                model=model,
            ),
            n_replicates=n_replicates,
            seed=None if seed is None else (hash((seed, j)) % (2**32)),
            n_jobs=n_jobs,
            label=f"m_growth[n={n}]",
            progress=progress,
        )
        hard_means.append(summary.means["hard"])
        soft_means.append(summary.means["soft"])
    return MGrowthResult(
        gamma=gamma,
        n_values=tuple(n_values),
        m_values=tuple(m_values),
        hard_rmse=tuple(hard_means),
        soft_rmse=tuple(soft_means),
        growth_ratio=tuple(ratios),
    )


@dataclass(frozen=True)
class TunedLambdaResult:
    """Untuned hard criterion vs per-replicate CV-tuned soft criterion.

    Attributes
    ----------
    hard_rmse, tuned_rmse:
        Mean RMSE of lambda = 0 and of the CV-selected lambda.
    chosen_lambdas:
        The lambda each replicate's cross-validation picked.
    """

    hard_rmse: float
    tuned_rmse: float
    chosen_lambdas: tuple[float, ...]

    @property
    def hard_wins_or_ties(self) -> bool:
        return self.hard_rmse <= self.tuned_rmse + 1e-12

    def fraction_choosing_zero(self) -> float:
        """How often CV itself selects the hard criterion."""
        chosen = np.asarray(self.chosen_lambdas)
        return float(np.mean(chosen == 0.0))


def _tuned_lambda_replicate(
    rng,
    *,
    n_labeled: int,
    n_unlabeled: int,
    grid: tuple[float, ...],
    n_folds: int,
    model: str,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> dict[str, float]:
    """One tuned-lambda replicate (module-level so it pickles for n_jobs).

    The CV fold shuffles draw from the same generator that produced the
    dataset, exactly as the pre-``run_replicates`` implementation did, so
    the per-replicate stream (and every reported number) is unchanged.
    """
    data = make_synthetic_dataset(n_labeled, n_unlabeled, model=model, seed=rng)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    search = select_lambda(
        graph.weights, data.y_labeled, grid=grid, n_folds=n_folds, seed=rng,
        sweep_backend=sweep_backend, dtype_policy=dtype_policy,
    )
    tuned = solve_soft_criterion(
        graph.weights, data.y_labeled, search.best_value,
        check_reachability=False,
    )
    hard = solve_hard_criterion(
        graph.weights, data.y_labeled, check_reachability=False
    )
    return {
        "hard": root_mean_squared_error(data.q_unlabeled, hard.unlabeled_scores),
        "tuned": root_mean_squared_error(data.q_unlabeled, tuned.unlabeled_scores),
        "chosen": float(search.best_value),
    }


def run_tuned_lambda_study(
    *,
    n_labeled: int = 150,
    n_unlabeled: int = 30,
    grid: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    n_folds: int = 5,
    model: str = "model1",
    n_replicates: int = 20,
    seed=None,
    n_jobs: int = 1,
    progress=None,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> TunedLambdaResult:
    """Compare the untuned hard criterion with a CV-tuned soft criterion.

    ``sweep_backend`` is forwarded to the per-replicate
    :func:`~repro.model_selection.search.select_lambda` grid search.
    """
    from repro.experiments.amortize import check_sweep_backend

    check_sweep_backend(sweep_backend)
    summary = run_replicates(
        partial(
            _tuned_lambda_replicate,
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            grid=tuple(grid),
            n_folds=n_folds,
            model=model,
            sweep_backend=sweep_backend,
            dtype_policy=dtype_policy,
        ),
        n_replicates=n_replicates,
        seed=seed,
        n_jobs=n_jobs,
        label="tuned_lambda",
        progress=progress,
    )
    return TunedLambdaResult(
        hard_rmse=summary.means["hard"],
        tuned_rmse=summary.means["tuned"],
        chosen_lambdas=summary.values["chosen"],
    )
