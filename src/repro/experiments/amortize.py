"""Shared sweep-backend plumbing for the experiment drivers.

Every λ-sweep driver exposes ``sweep_backend``:

* ``"direct"`` (default) — per-point :func:`repro.core.soft.solve_soft_criterion`
  solves, bit-identical to previous releases;
* ``"exact"`` / ``"factored"`` / ``"spectral"`` — one
  :class:`~repro.linalg.workspace.SolveWorkspace` per replicate (or per
  fixed graph) amortizes assembly, factorization and warm starts across
  the grid.  ``"exact"`` stays bit-compatible with direct full-system
  solves; ``"factored"``/``"spectral"`` are approximate to solver
  tolerance (validated at atol 1e-8 in the parity suite).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["SWEEP_BACKEND_CHOICES", "check_sweep_backend", "make_workspace"]

SWEEP_BACKEND_CHOICES = ("direct", "exact", "factored", "spectral", "multigrid")


def check_sweep_backend(sweep_backend: str) -> str:
    """Validate a driver-level sweep backend name."""
    if sweep_backend not in SWEEP_BACKEND_CHOICES:
        raise ConfigurationError(
            f"sweep_backend must be one of {SWEEP_BACKEND_CHOICES}, "
            f"got {sweep_backend!r}"
        )
    return sweep_backend


def make_workspace(weights, sweep_backend: str, *, dtype_policy: str = "float64"):
    """A :class:`SolveWorkspace` for the backend, or ``None`` for direct.

    ``dtype_policy`` selects the smoothing precision for the multigrid
    backend (``"float32"`` halves smoothing-matrix memory; the outer
    PCG stays float64 — see docs/SCALING.md).  Other backends accept
    the knob but never read it.
    """
    check_sweep_backend(sweep_backend)
    if sweep_backend == "direct":
        return None
    from repro.linalg.workspace import SolveWorkspace

    return SolveWorkspace(weights, backend=sweep_backend, dtype_policy=dtype_policy)
