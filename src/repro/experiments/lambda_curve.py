"""The lambda-degradation curve: RMSE as a continuous function of lambda.

The paper samples four lambdas; this experiment traces the full curve on
a log grid from the hard criterion (lambda = 0) to deep in the
collapse regime, with the two theoretical anchors overlaid:

* at lambda = 0 the RMSE equals the hard criterion's (Prop. II.1);
* as lambda -> inf the RMSE approaches that of the constant
  labeled-mean prediction (Prop. II.2).

Proposition II.2's continuity remark — "the prediction cannot suddenly
jump from consistent to extremely inaccurate" — predicts a smooth
monotone-ish interpolation between the anchors, which is exactly what
the curve shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.hard import solve_hard_criterion
from repro.core.soft import soft_lambda_infinity_limit, solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.amortize import check_sweep_backend, make_workspace
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.regression import root_mean_squared_error

__all__ = ["LambdaCurve", "run_lambda_curve"]


@dataclass(frozen=True)
class LambdaCurve:
    """Mean RMSE along a lambda grid, with the two theoretical anchors.

    Attributes
    ----------
    lambdas:
        The grid (0 first, then increasing positives).
    rmse:
        Mean RMSE at each lambda.
    hard_rmse:
        Mean RMSE of the hard criterion (equals ``rmse[0]``).
    mean_rmse:
        Mean RMSE of the constant labeled-mean prediction (the
        lambda = inf anchor).
    n_replicates:
        Replicates behind every point.
    """

    lambdas: tuple[float, ...]
    rmse: tuple[float, ...]
    hard_rmse: float
    mean_rmse: float
    n_replicates: int

    @property
    def interpolates_anchors(self) -> bool:
        """Curve starts at the hard anchor and ends near the mean anchor."""
        starts = abs(self.rmse[0] - self.hard_rmse) < 1e-12
        ends = abs(self.rmse[-1] - self.mean_rmse) < 0.02
        return starts and ends

    def to_rows(self) -> list[list]:
        return [[lam, value] for lam, value in zip(self.lambdas, self.rmse)]

    @staticmethod
    def headers() -> list[str]:
        return ["lambda", "rmse"]


def _lambda_curve_replicate(
    rng,
    *,
    n_labeled: int,
    n_unlabeled: int,
    lambdas: tuple[float, ...],
    model: str,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> dict[str, float]:
    """One replicate: RMSE at each grid lambda plus the two anchors.

    Module-level (not a closure) so it pickles across the ``n_jobs``
    process boundary.  With a workspace ``sweep_backend``, one
    :class:`~repro.linalg.workspace.SolveWorkspace` serves the whole
    grid; the hard anchor is solved through the same workspace so the
    ``lambda = 0`` grid point stays *exactly* equal to it.
    """
    data = make_synthetic_dataset(n_labeled, n_unlabeled, model=model, seed=rng)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    workspace = make_workspace(
        graph.weights, sweep_backend, dtype_policy=dtype_policy
    )
    out = {}
    for lam in lambdas:
        if workspace is None:
            fit = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
        else:
            fit = workspace.solve_soft(data.y_labeled, lam)
        out[f"lam={lam:g}"] = root_mean_squared_error(
            data.q_unlabeled, fit.unlabeled_scores
        )
    if workspace is None:
        hard = solve_hard_criterion(
            graph.weights, data.y_labeled, check_reachability=False
        )
    else:
        hard = workspace.solve_hard(data.y_labeled)
    out["hard"] = root_mean_squared_error(
        data.q_unlabeled, hard.unlabeled_scores
    )
    limit = soft_lambda_infinity_limit(data.y_labeled, graph.n_vertices)
    out["mean"] = root_mean_squared_error(
        data.q_unlabeled, limit[n_labeled:]
    )
    return out


def run_lambda_curve(
    *,
    n_labeled: int = 150,
    n_unlabeled: int = 30,
    lambdas: tuple[float, ...] = (
        0.0, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0, 1e4,
    ),
    model: str = "model1",
    n_replicates: int = 50,
    seed=None,
    n_jobs: int = 1,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
    progress=None,
) -> LambdaCurve:
    """Trace mean RMSE along a dense lambda grid.

    ``sweep_backend`` selects how each replicate's grid is solved:
    ``"direct"`` (per-point, bit-identical to previous releases) or a
    workspace backend (``"exact"``/``"factored"``/``"spectral"``) that
    amortizes factorizations across the grid.
    """
    if lambdas[0] != 0.0 or list(lambdas[1:]) != sorted(set(lambdas[1:])):
        raise ConfigurationError(
            "lambdas must start at 0 and then strictly increase"
        )
    check_sweep_backend(sweep_backend)

    replicate = partial(
        _lambda_curve_replicate,
        n_labeled=n_labeled,
        n_unlabeled=n_unlabeled,
        lambdas=tuple(lambdas),
        model=model,
        sweep_backend=sweep_backend,
        dtype_policy=dtype_policy,
    )
    summary = run_replicates(
        replicate, n_replicates=n_replicates, seed=seed, n_jobs=n_jobs,
        label="lambda_curve", progress=progress,
    )
    return LambdaCurve(
        lambdas=tuple(lambdas),
        rmse=tuple(summary.means[f"lam={lam:g}"] for lam in lambdas),
        hard_rmse=summary.means["hard"],
        mean_rmse=summary.means["mean"],
        n_replicates=n_replicates,
    )
