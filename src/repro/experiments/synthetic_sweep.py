"""Shared driver for the synthetic-data figures (Figures 1-4).

All four figures share one workload: draw the Section V-A dataset, build
the RBF graph with the paper's bandwidth ``sigma = h_n = (log n/n)^{1/5}``,
solve the soft criterion at each lambda (lambda = 0 being the hard
criterion via Proposition II.1), and record the RMSE between the
estimated scores and the true regression function on the unlabeled
points.  The figures differ only in which of (n, m) is swept and which
logit model generates responses:

* Figure 1 — Model 1, m = 30 fixed, n swept;
* Figure 2 — Model 1, n = 100 fixed, m swept;
* Figure 3 — Model 2, m = 30 fixed, n swept;
* Figure 4 — Model 2, n = 100 fixed, m swept.

The expensive part of each replicate — the kernel matrix — is computed
once and reused across all lambdas.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_replicates
from repro.experiments.sweep import SweepResult
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.kernels.library import GaussianKernel
from repro.metrics.regression import root_mean_squared_error

__all__ = [
    "PAPER_LAMBDAS",
    "PAPER_N_GRID",
    "PAPER_M_GRID",
    "synthetic_replicate_rmse",
    "run_synthetic_sweep",
]

#: The paper's four tuning parameters (Figures 1-4).
PAPER_LAMBDAS = (0.0, 0.01, 0.1, 5.0)
#: The paper's n grid for Figures 1 and 3 (m fixed at 30).
PAPER_N_GRID = (10, 30, 50, 100, 200, 300, 500, 800, 1000, 1500)
#: The paper's m grid for Figures 2 and 4 (n fixed at 100).
PAPER_M_GRID = (30, 60, 100, 300, 500, 1000)


def synthetic_replicate_rmse(
    rng: np.random.Generator,
    *,
    n_labeled: int,
    n_unlabeled: int,
    model: str,
    lambdas: tuple[float, ...],
) -> dict[str, float]:
    """One replicate: dataset -> graph -> all-lambda RMSEs.

    Returns ``{"lambda=<v>": rmse}`` for each tuning parameter; the
    kernel matrix is shared across lambdas.
    """
    data = make_synthetic_dataset(n_labeled, n_unlabeled, model=model, seed=rng)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, kernel=GaussianKernel(), bandwidth=bandwidth)
    metrics = {}
    for lam in lambdas:
        fit = solve_soft_criterion(
            graph.weights, data.y_labeled, lam, method="schur",
            check_reachability=False,
        )
        metrics[f"lambda={lam:g}"] = root_mean_squared_error(
            data.q_unlabeled, fit.unlabeled_scores
        )
    return metrics


def run_synthetic_sweep(
    *,
    name: str,
    model: str,
    vary: str,
    values: tuple[int, ...],
    fixed: int,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
    n_replicates: int = 200,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Run one of Figures 1-4 (or a custom variant).

    Parameters
    ----------
    name:
        Result id (``"figure1"``...).
    model:
        ``"model1"`` (linear logit) or ``"model2"`` (interactions).
    vary:
        ``"n"`` (sweep labeled size) or ``"m"`` (sweep unlabeled size).
    values:
        Grid for the swept parameter.
    fixed:
        The other parameter's fixed value (paper: m=30 or n=100).
    lambdas:
        Tuning parameters; one series each.
    n_replicates:
        Replicates per grid point (paper: 1000; default trimmed for
        laptop-scale runs — the mean pattern is stable well before 200).
    seed:
        Master seed; every grid point spawns independent streams.
    n_jobs:
        Worker processes for the replicate fan-out (``1`` = serial,
        ``-1`` = one per CPU); results are identical at every setting.
    progress:
        Optional :class:`~repro.obs.progress.ProgressEmitter`; each grid
        point becomes one labelled progress task (``figure1[n=100]``).
        Defaults to the ambient emitter.
    """
    if vary not in ("n", "m"):
        raise ConfigurationError(f"vary must be 'n' or 'm', got {vary!r}")
    labels = tuple(f"lambda={lam:g}" for lam in lambdas)
    means = np.empty((len(labels), len(values)))
    stds = np.empty_like(means)
    sems = np.empty_like(means)
    for j, value in enumerate(values):
        n_labeled = value if vary == "n" else fixed
        n_unlabeled = value if vary == "m" else fixed
        summary = run_replicates(
            partial(
                synthetic_replicate_rmse,
                n_labeled=n_labeled,
                n_unlabeled=n_unlabeled,
                model=model,
                lambdas=tuple(lambdas),
            ),
            n_replicates=n_replicates,
            seed=None if seed is None else (hash((seed, j)) % (2**32)),
            n_jobs=n_jobs,
            label=f"{name}[{vary}={value}]",
            progress=progress,
        )
        for i, label in enumerate(labels):
            means[i, j] = summary.means[label]
            stds[i, j] = summary.stds[label]
            sems[i, j] = summary.sems[label]
    return SweepResult(
        name=name,
        x_label=vary,
        x_values=tuple(values),
        series_labels=labels,
        means=means,
        stds=stds,
        sems=sems,
        metric="rmse",
        n_replicates=n_replicates,
        meta={"model": model, ("m" if vary == "n" else "n"): fixed},
    )
