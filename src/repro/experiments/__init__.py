"""Experiment harness: configs, replicate runner, reporting, figure drivers."""

from repro.experiments.report import ascii_table, format_sweep_result, write_csv
from repro.experiments.runner import ReplicateSummary, run_replicates
from repro.experiments.sweep import SweepResult

__all__ = [
    "run_replicates",
    "ReplicateSummary",
    "SweepResult",
    "ascii_table",
    "format_sweep_result",
    "write_csv",
]
