"""Experiment harness: configs, replicate runner, reporting, figure drivers."""

from repro.experiments.executor import (
    ParallelFallbackWarning,
    ReplicateOutcome,
    execute_replicates,
    resolve_n_jobs,
)
from repro.experiments.report import ascii_table, format_sweep_result, write_csv
from repro.experiments.runner import (
    NonFiniteMetricWarning,
    ReplicateSummary,
    run_replicates,
)
from repro.experiments.sweep import SweepResult

__all__ = [
    "run_replicates",
    "ReplicateSummary",
    "NonFiniteMetricWarning",
    "ParallelFallbackWarning",
    "ReplicateOutcome",
    "execute_replicates",
    "resolve_n_jobs",
    "SweepResult",
    "ascii_table",
    "format_sweep_result",
    "write_csv",
]
