"""Process-based parallel execution of experiment replicates.

The paper's protocol repeats every synthetic configuration up to 1000
times; :func:`repro.experiments.runner.run_replicates` used to pay that
cost strictly serially.  This module fans ``replicate(rng)`` calls out
over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping two
contracts intact:

**Determinism.**  Workers never derive randomness themselves: the parent
spawns one :class:`numpy.random.SeedSequence` child per replicate (via
:func:`repro.utils.rng.spawn_seeds`, exactly as the serial path does)
and ships it to the worker, which builds its generator from that child.
Results come back in submission order, so aggregates computed from a
parallel run are bit-identical to the serial ones for the same master
seed.

**Observability.**  Each worker runs its replicate under a private
:class:`~repro.obs.trace.RecordingTracer` (only when the parent is
tracing) and a private :class:`~repro.obs.metrics.MetricsRegistry`, and
returns the recorded span subtree plus the registry state alongside the
metric values.  The parent grafts the spans into the session trace
(:meth:`RecordingTracer.adopt_records`) and folds the metric deltas into
the session registry (:meth:`MetricsRegistry.merge_state`), so
``trace-report`` and the :class:`~repro.obs.bench.BenchRecorder` solver
health extraction keep working under ``n_jobs > 1``.

**Progress.**  When a :class:`~repro.obs.progress.ProgressTask` is
passed in, the parent emits one completion event per replicate as worker
chunks finish (carrying the replicate's seed-stream index) and periodic
heartbeats even while no chunk completes — so a stalled pool is
distinguishable from a slow one.  Progress mode dispatches chunks as
individual futures and reassembles outcomes by index, which preserves
the bit-identical-aggregates contract: the caller still consumes
outcomes in seed order.

Parallelism is best-effort, never load-bearing: a callable that fails to
pickle, or a platform where the process pool cannot start, degrades to
serial execution with a :class:`ParallelFallbackWarning` — the caller
gets the same numbers either way.
"""

from __future__ import annotations

import math
import os
import pickle
import warnings
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError

__all__ = [
    "ParallelFallbackWarning",
    "ReplicateOutcome",
    "resolve_n_jobs",
    "default_chunksize",
    "execute_replicates",
]


class ParallelFallbackWarning(UserWarning):
    """A parallel run degraded to serial execution (results unaffected)."""


@dataclass(frozen=True)
class ReplicateOutcome:
    """Everything one worker sends back for one replicate.

    Attributes
    ----------
    index:
        The replicate's position in the seed stream (and therefore in
        every aggregate).
    metrics:
        The mapping ``replicate(rng)`` returned, values coerced to float.
    span_records:
        Flat pre-order span records from the worker's private tracer
        (empty when the parent was not tracing).
    metrics_state:
        The worker registry's :meth:`~repro.obs.MetricsRegistry.to_state`
        dump, mergeable into the parent registry.
    """

    index: int
    metrics: dict[str, float]
    span_records: list[dict] = field(default_factory=list)
    metrics_state: dict[str, dict] = field(default_factory=dict)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    anything else must be a positive integer.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 or -1 (one worker per CPU), got {n_jobs}"
        )
    return n_jobs


def default_chunksize(n_tasks: int, n_jobs: int) -> int:
    """Chunk tasks so each worker sees ~4 chunks (amortizes IPC overhead
    while keeping the pool load-balanced when replicate costs vary)."""
    if n_tasks < 1 or n_jobs < 1:
        return 1
    return max(1, math.ceil(n_tasks / (n_jobs * 4)))


def _run_replicate_task(task) -> ReplicateOutcome:
    """Worker entry point: run one replicate under private obs state.

    Mirrors the serial path in :func:`~repro.experiments.runner.run_replicates`:
    the replicate executes inside a ``repro.replicate`` span carrying the
    replicate index and one ``metric.<name>`` attribute per returned
    metric.
    """
    replicate, seed, index, record_spans = task
    registry = obs.MetricsRegistry()
    tracer = obs.RecordingTracer() if record_spans else None
    rng = np.random.default_rng(seed)
    with obs.use_registry(registry):
        if tracer is not None:
            with obs.use_tracer(tracer):
                with obs.span("repro.replicate", index=index) as span:
                    metrics = {
                        key: float(value)
                        for key, value in dict(replicate(rng)).items()
                    }
                    for key, value in metrics.items():
                        span.set_attribute(f"metric.{key}", value)
        else:
            metrics = {
                key: float(value) for key, value in dict(replicate(rng)).items()
            }
    return ReplicateOutcome(
        index=index,
        metrics=metrics,
        span_records=tracer.to_records() if tracer is not None else [],
        metrics_state=registry.to_state(),
    )


def _run_replicate_chunk(tasks) -> list[ReplicateOutcome]:
    """Worker entry point for progress mode: one chunk of replicate tasks."""
    return [_run_replicate_task(task) for task in tasks]


def _chunked(tasks, chunksize: int):
    return [tasks[i:i + chunksize] for i in range(0, len(tasks), chunksize)]


def _execute_with_progress(pool, tasks, chunksize, progress_task):
    """Dispatch chunks as futures, emitting progress while they complete.

    Returns outcomes reassembled in seed order.  Heartbeats fire from the
    waiting loop at the emitter's interval even when nothing completes;
    completion events fire in true completion order but carry the
    replicate's seed-stream index, so consumers can reconstruct ordering.
    """
    from concurrent.futures import FIRST_COMPLETED, wait

    interval = progress_task.heartbeat_interval
    pending = {pool.submit(_run_replicate_chunk, chunk) for chunk in _chunked(tasks, chunksize)}
    outcomes: list[ReplicateOutcome | None] = [None] * len(tasks)
    try:
        while pending:
            done, pending = wait(pending, timeout=interval, return_when=FIRST_COMPLETED)
            if not done:
                progress_task.heartbeat()
                continue
            for future in done:
                for outcome in future.result():
                    outcomes[outcome.index] = outcome
                    progress_task.replicate_done(outcome.index)
    finally:
        for future in pending:
            future.cancel()
    return outcomes


def execute_replicates(
    replicate: Callable[[np.random.Generator], Mapping[str, float]],
    seeds: Sequence[np.random.SeedSequence],
    *,
    n_jobs: int,
    chunksize: int | None = None,
    record_spans: bool | None = None,
    progress_task=None,
) -> list[ReplicateOutcome] | None:
    """Run ``replicate`` over pre-spawned ``seeds`` in a worker pool.

    Returns the outcomes in seed order, or ``None`` when the work should
    run serially instead — either because ``n_jobs`` resolves to 1, the
    callable cannot cross the process boundary, or the pool itself fails
    to operate (the latter two emit a :class:`ParallelFallbackWarning`).
    Exceptions raised *by the replicate itself* are real failures and
    propagate unchanged.

    Parameters
    ----------
    replicate:
        The per-replicate callable; must be picklable (module-level
        functions and :func:`functools.partial` over them are; closures
        and lambdas are not).
    seeds:
        One :class:`numpy.random.SeedSequence` per replicate, pre-spawned
        by the caller so parallel and serial runs share one seed stream.
    n_jobs:
        Worker count (``-1`` = one per CPU).
    chunksize:
        Tasks per pool dispatch; defaults to :func:`default_chunksize`.
    record_spans:
        Whether workers should record span subtrees; defaults to the
        parent's :func:`repro.obs.tracing_enabled`.
    progress_task:
        An active :class:`~repro.obs.progress.ProgressTask` to stream
        per-replicate completions and heartbeats through; ``None`` (or a
        disabled task) keeps the plain ``pool.map`` path.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or not seeds:
        return None
    if record_spans is None:
        record_spans = obs.tracing_enabled()
    try:
        pickle.dumps(replicate)
    except Exception as exc:  # pickle raises many unrelated types
        warnings.warn(
            f"replicate callable {replicate!r} cannot be pickled ({exc}); "
            f"falling back to serial execution",
            ParallelFallbackWarning,
            stacklevel=3,
        )
        return None

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    tasks = [
        (replicate, seed, index, record_spans)
        for index, seed in enumerate(seeds)
    ]
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), n_jobs)
    if progress_task is not None and not getattr(progress_task, "enabled", False):
        progress_task = None
    try:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            if progress_task is not None:
                return _execute_with_progress(pool, tasks, chunksize, progress_task)
            return list(pool.map(_run_replicate_task, tasks, chunksize=chunksize))
    except (BrokenProcessPool, OSError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); falling back to serial execution",
            ParallelFallbackWarning,
            stacklevel=3,
        )
        return None
