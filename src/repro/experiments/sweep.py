"""The common result container for figure-style parameter sweeps.

Every figure in the paper is a family of series (one per lambda, or one
per labeled ratio) over a swept x-axis (n, m, or lambda itself).
:class:`SweepResult` stores the aggregated series and provides the
monotonicity/ordering checks the reproduction asserts: "hard beats
soft", "RMSE increases with lambda", etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Aggregated series over a swept parameter.

    Attributes
    ----------
    name:
        Experiment id, e.g. ``"figure1"``.
    x_label, x_values:
        The swept parameter and its grid.
    series_labels:
        One label per series, e.g. ``("lambda=0", "lambda=0.01", ...)``.
    means, stds, sems:
        Arrays of shape ``(n_series, n_x)``.
    metric:
        Metric name (``"rmse"`` or ``"auc"``).
    n_replicates:
        Replicates behind each cell.
    meta:
        Free-form extra information (fixed parameters, dataset config).
    """

    name: str
    x_label: str
    x_values: tuple
    series_labels: tuple[str, ...]
    means: np.ndarray
    stds: np.ndarray
    sems: np.ndarray
    metric: str
    n_replicates: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        expected = (len(self.series_labels), len(self.x_values))
        for attr in ("means", "stds", "sems"):
            shape = getattr(self, attr).shape
            if shape != expected:
                raise ConfigurationError(
                    f"{attr} must have shape {expected}, got {shape}"
                )

    def series(self, label: str) -> np.ndarray:
        """Mean values of one series by its label."""
        try:
            index = self.series_labels.index(label)
        except ValueError:
            raise ConfigurationError(
                f"unknown series {label!r}; known: {self.series_labels}"
            ) from None
        return self.means[index]

    def to_rows(self) -> list[list]:
        """Rows of ``[x, mean_1, ..., mean_k]`` for table/CSV output."""
        rows = []
        for j, x in enumerate(self.x_values):
            rows.append([x] + [float(self.means[i, j]) for i in range(len(self.series_labels))])
        return rows

    def headers(self) -> list[str]:
        """Header row matching :meth:`to_rows`."""
        return [self.x_label] + list(self.series_labels)

    # ------------------------------------------------------------------
    # Shape checks used by the reproduction's assertions
    # ------------------------------------------------------------------

    def series_dominates(self, better: str, worse: str, *, slack: float = 0.0, larger_is_better: bool = False) -> bool:
        """True when series ``better`` beats ``worse`` at every x.

        ``slack`` forgives per-point violations up to that absolute size
        (replicate noise); for RMSE smaller is better, set
        ``larger_is_better`` for AUC.
        """
        a = self.series(better)
        b = self.series(worse)
        if larger_is_better:
            return bool(np.all(a >= b - slack))
        return bool(np.all(a <= b + slack))

    def series_trend(self, label: str) -> float:
        """Least-squares slope of one series against the x grid.

        Positive slope = the metric grows along the sweep; the figure
        assertions use the slope's sign rather than strict per-point
        monotonicity, which replicate noise would break.
        """
        x = np.asarray(self.x_values, dtype=np.float64)
        y = self.series(label)
        if x.size < 2:
            raise ConfigurationError("trend requires at least two x values")
        slope, _ = np.polyfit(x, y, deg=1)
        return float(slope)
