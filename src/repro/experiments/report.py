"""Plain-text and CSV reporting.

The environment has no plotting stack, so every figure is regenerated as
the *series the plot would show*: an aligned ASCII table (one row per
x-value, one column per series) plus an optional CSV.  The bench output
therefore contains the same information as the paper's figures.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.experiments.sweep import SweepResult

__all__ = ["ascii_table", "format_sweep_result", "markdown_table", "write_csv"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def ascii_table(headers: list[str], rows: list[list], *, min_width: int = 6) -> str:
    """Render an aligned fixed-width table with a header separator."""
    if not headers:
        raise ConfigurationError("ascii_table requires at least one header")
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(min_width, len(header), *(len(row[j]) for row in text_rows)) if text_rows else max(min_width, len(header))
        for j, header in enumerate(headers)
    ]
    def render(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


def format_sweep_result(result: SweepResult) -> str:
    """Headline + table for one sweep result (one figure)."""
    title = (
        f"{result.name}: mean {result.metric.upper()} over "
        f"{result.n_replicates} replicates"
    )
    extras = ", ".join(f"{k}={v}" for k, v in sorted(result.meta.items()))
    lines = [title]
    if extras:
        lines.append(f"  [{extras}]")
    lines.append(ascii_table(result.headers(), result.to_rows()))
    return "\n".join(lines)


def write_csv(path, headers: list[str], rows: list[list]) -> Path:
    """Write a header + rows CSV; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """Render a GitHub-flavored markdown table (for reports/docs)."""
    if not headers:
        raise ConfigurationError("markdown_table requires at least one header")
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in text_rows)
    return "\n".join(lines)
