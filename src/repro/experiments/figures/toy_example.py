"""Section III's toy example, verified numerically.

With all inputs identical the RBF weight matrix is all-ones and the
paper derives in closed form:

* ``(D22 - W22)^{-1}`` has ``(n+1)/(n(m+n))`` on the diagonal and
  ``1/(n(m+n))`` off it;
* the hard solution is ``mean(Y_1..Y_n)`` on every unlabeled vertex and
  ``Y_i`` on every labeled vertex.

:func:`run_toy_example` solves the toy problem with the production
solver over a grid of (n, m) and reports the worst deviation from both
closed forms — an end-to-end correctness check of Eq. (5)'s
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.datasets.toy import constant_input_toy
from repro.exceptions import ConfigurationError
from repro.graph.similarity import full_kernel_graph
from repro.utils.rng import spawn_rngs

__all__ = ["ToyExampleResult", "run_toy_example"]


@dataclass(frozen=True)
class ToyExampleResult:
    """Worst-case deviations of the solver from Section III's closed forms.

    Attributes
    ----------
    grid:
        The (n, m) pairs exercised.
    max_score_deviation:
        Worst ``|f_hat - mean(Y)|`` over all unlabeled vertices and grid
        points.
    max_inverse_deviation:
        Worst entrywise error of the computed ``(D22 - W22)^{-1}``
        against the paper's explicit formula.
    """

    grid: tuple[tuple[int, int], ...]
    max_score_deviation: float
    max_inverse_deviation: float

    @property
    def ok(self) -> bool:
        """Both deviations at numerical-noise level."""
        return self.max_score_deviation < 1e-8 and self.max_inverse_deviation < 1e-8


def run_toy_example(
    *,
    grid: tuple[tuple[int, int], ...] = ((5, 3), (20, 7), (50, 50), (10, 40)),
    seed=None,
) -> ToyExampleResult:
    """Verify the toy example's closed forms over a grid of (n, m)."""
    if not grid:
        raise ConfigurationError("grid must contain at least one (n, m) pair")
    worst_score = 0.0
    worst_inverse = 0.0
    for (n, m), rng in zip(grid, spawn_rngs(seed, len(grid))):
        toy = constant_input_toy(n, m, seed=rng)
        graph = full_kernel_graph(toy.x_all, bandwidth=1.0)
        fit = solve_hard_criterion(graph.weights, toy.y_labeled)
        worst_score = max(
            worst_score,
            float(np.max(np.abs(fit.unlabeled_scores - toy.expected_unlabeled_score))),
        )
        weights = graph.dense_weights()
        degrees = weights.sum(axis=1)
        grounded = np.diag(degrees[n:]) - weights[n:, n:]
        inverse = np.linalg.inv(grounded)
        expected = np.full(
            (m, m), toy.expected_inverse_off_diagonal
        )
        np.fill_diagonal(expected, toy.expected_inverse_diagonal)
        worst_inverse = max(worst_inverse, float(np.max(np.abs(inverse - expected))))
    return ToyExampleResult(
        grid=tuple(grid),
        max_score_deviation=worst_score,
        max_inverse_deviation=worst_inverse,
    )
