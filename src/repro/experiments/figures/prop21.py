"""Proposition II.1: the soft solution converges to the hard solution as
lambda -> 0.

The experiment solves the soft criterion along a decreasing lambda grid
on one synthetic problem and records the max-norm deviation from the
hard solution on the unlabeled block.  The deviations must decrease
monotonically and vanish in the limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.amortize import make_workspace
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule

__all__ = ["Prop21Result", "run_prop21_experiment"]


@dataclass(frozen=True)
class Prop21Result:
    """Soft-to-hard deviation along a vanishing lambda grid.

    Attributes
    ----------
    lambdas:
        The decreasing lambda grid.
    deviations:
        ``max_a |f_soft(lambda)_a - f_hard_a|`` over unlabeled vertices.
    """

    lambdas: tuple[float, ...]
    deviations: tuple[float, ...]

    @property
    def converges(self) -> bool:
        """Deviations non-increasing and final deviation tiny."""
        non_increasing = all(
            later <= earlier * (1 + 1e-9)
            for earlier, later in zip(self.deviations, self.deviations[1:])
        )
        return non_increasing and self.deviations[-1] < 1e-6

    def to_rows(self) -> list[list]:
        return [[lam, dev] for lam, dev in zip(self.lambdas, self.deviations)]

    @staticmethod
    def headers() -> list[str]:
        return ["lambda", "max|soft-hard|"]


def run_prop21_experiment(
    *,
    n_labeled: int = 100,
    n_unlabeled: int = 30,
    lambdas: tuple[float, ...] = (1.0, 0.1, 0.01, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10),
    seed: int = 0,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> Prop21Result:
    """Measure ``||f_soft(lambda) - f_hard||_max`` along a vanishing grid.

    A fixed-graph lambda sweep: with a workspace ``sweep_backend`` the
    grid shares one :class:`~repro.linalg.workspace.SolveWorkspace`
    instead of refactorizing per point; ``dtype_policy`` forwards the
    multigrid smoothing precision.
    """
    if any(lam <= 0 for lam in lambdas):
        raise ConfigurationError("lambdas must be strictly positive (0 IS the hard criterion)")
    if list(lambdas) != sorted(lambdas, reverse=True):
        raise ConfigurationError("lambdas must be strictly decreasing toward 0")
    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=seed)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    workspace = make_workspace(
        graph.weights, sweep_backend, dtype_policy=dtype_policy
    )
    hard = solve_hard_criterion(graph.weights, data.y_labeled, check_reachability=False)
    deviations = []
    for lam in lambdas:
        if workspace is None:
            soft = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, method="schur",
                check_reachability=False,
            )
        else:
            soft = workspace.solve_soft(data.y_labeled, lam)
        deviations.append(
            float(np.max(np.abs(soft.unlabeled_scores - hard.unlabeled_scores)))
        )
    return Prop21Result(lambdas=tuple(lambdas), deviations=tuple(deviations))
