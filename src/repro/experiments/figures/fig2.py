"""Figure 2: average RMSE vs m under Model 1 (n = 100).

Paper finding: RMSE increases as m grows (the regime outside Theorem
II.1's ``m = o(n h^d)`` condition) and increases with lambda; the hard
criterion remains best throughout.
"""

from __future__ import annotations

from repro.experiments.synthetic_sweep import (
    PAPER_LAMBDAS,
    PAPER_M_GRID,
    run_synthetic_sweep,
)
from repro.experiments.sweep import SweepResult

__all__ = ["run_figure2"]


def run_figure2(
    *,
    m_values: tuple[int, ...] = PAPER_M_GRID,
    n: int = 100,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
    n_replicates: int = 200,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Regenerate Figure 2's series (defaults follow the paper's grid)."""
    return run_synthetic_sweep(
        name="figure2",
        model="model1",
        vary="m",
        values=m_values,
        fixed=n,
        lambdas=lambdas,
        n_replicates=n_replicates,
        seed=seed,
        n_jobs=n_jobs,
        progress=progress,
    )
