"""Figure 1: average RMSE vs n under Model 1 (m = 30).

Paper finding: RMSE decreases as n grows for every lambda, the hard
criterion (lambda = 0) is uniformly best, and RMSE increases with
lambda.
"""

from __future__ import annotations

from repro.experiments.synthetic_sweep import (
    PAPER_LAMBDAS,
    PAPER_N_GRID,
    run_synthetic_sweep,
)
from repro.experiments.sweep import SweepResult

__all__ = ["run_figure1"]


def run_figure1(
    *,
    n_values: tuple[int, ...] = PAPER_N_GRID,
    m: int = 30,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
    n_replicates: int = 200,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Regenerate Figure 1's series (defaults follow the paper's grid)."""
    return run_synthetic_sweep(
        name="figure1",
        model="model1",
        vary="n",
        values=n_values,
        fixed=m,
        lambdas=lambdas,
        n_replicates=n_replicates,
        seed=seed,
        n_jobs=n_jobs,
        progress=progress,
    )
