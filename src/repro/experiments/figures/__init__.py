"""Per-figure experiment drivers.

One module per paper artifact; each exposes a ``run_*`` function
returning a :class:`~repro.experiments.sweep.SweepResult` or a dedicated
result dataclass.  The corresponding benches in ``benchmarks/`` call
these with trimmed replicate counts and print the regenerated series.
"""

from repro.experiments.figures.complexity import ComplexityResult, run_complexity_experiment
from repro.experiments.figures.fig1 import run_figure1
from repro.experiments.figures.fig2 import run_figure2
from repro.experiments.figures.fig3 import run_figure3
from repro.experiments.figures.fig4 import run_figure4
from repro.experiments.figures.fig5 import run_figure5
from repro.experiments.figures.prop21 import Prop21Result, run_prop21_experiment
from repro.experiments.figures.prop22 import Prop22Result, run_prop22_experiment
from repro.experiments.figures.toy_example import ToyExampleResult, run_toy_example

__all__ = [
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_toy_example",
    "ToyExampleResult",
    "run_complexity_experiment",
    "ComplexityResult",
    "run_prop21_experiment",
    "Prop21Result",
    "run_prop22_experiment",
    "Prop22Result",
]
