"""Figure 4: average RMSE vs m under Model 2 (n = 100).

Same workload as Figure 2 under the non-linear logit; the paper reports
the same growth of RMSE with m and with lambda.
"""

from __future__ import annotations

from repro.experiments.synthetic_sweep import (
    PAPER_LAMBDAS,
    PAPER_M_GRID,
    run_synthetic_sweep,
)
from repro.experiments.sweep import SweepResult

__all__ = ["run_figure4"]


def run_figure4(
    *,
    m_values: tuple[int, ...] = PAPER_M_GRID,
    n: int = 100,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
    n_replicates: int = 200,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Regenerate Figure 4's series (defaults follow the paper's grid)."""
    return run_synthetic_sweep(
        name="figure4",
        model="model2",
        vary="m",
        values=m_values,
        fixed=n,
        lambdas=lambdas,
        n_replicates=n_replicates,
        seed=seed,
        n_jobs=n_jobs,
        progress=progress,
    )
