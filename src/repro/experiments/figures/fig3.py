"""Figure 3: average RMSE vs n under Model 2 (m = 30).

Same workload as Figure 1 but with the non-linear logit (interaction
terms X1X3 + X2X4); the paper reports the same qualitative pattern,
supporting that the theory is not an artifact of the linear model.
"""

from __future__ import annotations

from repro.experiments.synthetic_sweep import (
    PAPER_LAMBDAS,
    PAPER_N_GRID,
    run_synthetic_sweep,
)
from repro.experiments.sweep import SweepResult

__all__ = ["run_figure3"]


def run_figure3(
    *,
    n_values: tuple[int, ...] = PAPER_N_GRID,
    m: int = 30,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
    n_replicates: int = 200,
    seed=None,
    n_jobs: int = 1,
    progress=None,
) -> SweepResult:
    """Regenerate Figure 3's series (defaults follow the paper's grid)."""
    return run_synthetic_sweep(
        name="figure3",
        model="model2",
        vary="n",
        values=n_values,
        fixed=m,
        lambdas=lambdas,
        n_replicates=n_replicates,
        seed=seed,
        n_jobs=n_jobs,
        progress=progress,
    )
