"""Section II's complexity claim: hard O(m^3) vs soft-full O((n+m)^3).

The paper notes the hard criterion solves an m x m system while the soft
criterion's Eq. (3) form solves an (n+m) x (n+m) system — another reason
to prefer the hard criterion.  This experiment times both solvers over a
grid of problem sizes with a fixed m/n ratio, fits power-law exponents,
and reports the speedup.  (The soft *Schur* form closes most of the gap
by construction; the timing uses the paper's full form, which is what
the claim is about.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.utils.timing import Stopwatch, fit_power_law

__all__ = ["ComplexityResult", "run_complexity_experiment"]


@dataclass(frozen=True)
class ComplexityResult:
    """Timing comparison of the hard and soft-full solvers.

    Attributes
    ----------
    total_sizes:
        The swept total problem sizes ``n + m``.
    hard_seconds, soft_full_seconds:
        Mean wall-clock per solve at each size.
    hard_exponent, soft_exponent:
        Fitted power-law growth exponents (expected approaching 3 for
        large sizes; small sizes are overhead-dominated).
    """

    total_sizes: tuple[int, ...]
    hard_seconds: tuple[float, ...]
    soft_full_seconds: tuple[float, ...]
    hard_exponent: float
    soft_exponent: float

    def speedups(self) -> tuple[float, ...]:
        """Per-size ratio soft-full time / hard time."""
        return tuple(
            s / h if h > 0 else float("inf")
            for h, s in zip(self.hard_seconds, self.soft_full_seconds)
        )

    def to_rows(self) -> list[list]:
        return [
            [size, hard, soft, soft / hard if hard > 0 else float("inf")]
            for size, hard, soft in zip(
                self.total_sizes, self.hard_seconds, self.soft_full_seconds
            )
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["n+m", "hard_s", "soft_full_s", "speedup"]


def run_complexity_experiment(
    *,
    total_sizes: tuple[int, ...] = (100, 200, 400, 800),
    unlabeled_fraction: float = 0.3,
    lam: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
) -> ComplexityResult:
    """Time hard (m x m) vs soft-full ((n+m) x (n+m)) solves.

    Parameters
    ----------
    total_sizes:
        Total problem sizes ``n + m`` to sweep.
    unlabeled_fraction:
        Fraction of each problem that is unlabeled (so the hard system is
        this fraction of the full system).
    lam:
        Tuning parameter for the soft solves.
    repeats:
        Timed solves per size (the minimum is reported via the mean of
        repeated runs; pytest-benchmark handles micro-benchmarking, this
        experiment only needs the growth shape).
    seed:
        Dataset seed.
    """
    if not 0.0 < unlabeled_fraction < 1.0:
        raise ConfigurationError(
            f"unlabeled_fraction must be in (0, 1), got {unlabeled_fraction}"
        )
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    watch = Stopwatch()
    hard_means = []
    soft_means = []
    for size in total_sizes:
        m = max(1, int(round(size * unlabeled_fraction)))
        n = size - m
        data = make_synthetic_dataset(n, m, seed=seed)
        bandwidth = paper_bandwidth_rule(n, data.x_labeled.shape[1])
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        for _ in range(repeats):
            with watch.measure(f"hard-{size}"):
                solve_hard_criterion(graph.weights, data.y_labeled, check_reachability=False)
            with watch.measure(f"soft-{size}"):
                solve_soft_criterion(
                    graph.weights, data.y_labeled, lam,
                    method="full", check_reachability=False,
                )
        hard_means.append(watch.mean(f"hard-{size}"))
        soft_means.append(watch.mean(f"soft-{size}"))
    _, hard_exp = fit_power_law(total_sizes, hard_means)
    _, soft_exp = fit_power_law(total_sizes, soft_means)
    return ComplexityResult(
        total_sizes=tuple(total_sizes),
        hard_seconds=tuple(hard_means),
        soft_full_seconds=tuple(soft_means),
        hard_exponent=hard_exp,
        soft_exponent=soft_exp,
    )
