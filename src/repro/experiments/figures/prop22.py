"""Proposition II.2: the soft criterion is inconsistent for large lambda.

Two measurements on a connected synthetic graph:

* the soft solution's max-norm distance to the constant labeled-mean
  vector must *vanish* as lambda -> inf (the counterexample's limit);
* the soft solution's RMSE against the true regression function must
  stay bounded away from the hard criterion's RMSE (the inconsistency
  gap) for large lambda.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hard import solve_hard_criterion
from repro.core.soft import soft_lambda_infinity_limit, solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.amortize import make_workspace
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.regression import root_mean_squared_error

__all__ = ["Prop22Result", "run_prop22_experiment"]


@dataclass(frozen=True)
class Prop22Result:
    """Soft-criterion behaviour along a growing lambda grid.

    Attributes
    ----------
    lambdas:
        Increasing lambda grid.
    distance_to_mean:
        ``max_a |f_soft(lambda)_a - mean(Y_n)|`` on unlabeled vertices —
        must vanish as lambda grows.
    rmse:
        RMSE of the soft solution against the true ``q(X)``.
    hard_rmse:
        The hard criterion's RMSE on the same problem (the consistent
        reference point).
    """

    lambdas: tuple[float, ...]
    distance_to_mean: tuple[float, ...]
    rmse: tuple[float, ...]
    hard_rmse: float

    @property
    def collapses_to_mean(self) -> bool:
        """Final distance to the constant mean vector is tiny."""
        return self.distance_to_mean[-1] < 1e-6

    @property
    def inconsistency_gap(self) -> float:
        """How much worse the large-lambda soft RMSE is than the hard RMSE."""
        return self.rmse[-1] - self.hard_rmse

    def to_rows(self) -> list[list]:
        return [
            [lam, dist, err]
            for lam, dist, err in zip(self.lambdas, self.distance_to_mean, self.rmse)
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["lambda", "max|soft-mean|", "rmse"]


def run_prop22_experiment(
    *,
    n_labeled: int = 100,
    n_unlabeled: int = 30,
    lambdas: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1e4, 1e6, 1e8),
    seed: int = 0,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> Prop22Result:
    """Measure the soft criterion's collapse to the labeled mean.

    A fixed-graph lambda sweep: with a workspace ``sweep_backend`` the
    grid shares one :class:`~repro.linalg.workspace.SolveWorkspace`
    instead of refactorizing per point; ``dtype_policy`` forwards the
    multigrid smoothing precision.
    """
    if any(lam <= 0 for lam in lambdas):
        raise ConfigurationError("lambdas must be strictly positive")
    if list(lambdas) != sorted(lambdas):
        raise ConfigurationError("lambdas must be increasing toward infinity")
    data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=seed)
    bandwidth = paper_bandwidth_rule(n_labeled, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    workspace = make_workspace(
        graph.weights, sweep_backend, dtype_policy=dtype_policy
    )

    hard = solve_hard_criterion(graph.weights, data.y_labeled, check_reachability=False)
    hard_rmse = root_mean_squared_error(data.q_unlabeled, hard.unlabeled_scores)
    limit = soft_lambda_infinity_limit(data.y_labeled, graph.n_vertices)

    distances = []
    errors = []
    for lam in lambdas:
        if workspace is None:
            soft = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, method="schur",
                check_reachability=False,
            )
        else:
            soft = workspace.solve_soft(data.y_labeled, lam)
        distances.append(
            float(np.max(np.abs(soft.unlabeled_scores - limit[n_labeled:])))
        )
        errors.append(root_mean_squared_error(data.q_unlabeled, soft.unlabeled_scores))
    return Prop22Result(
        lambdas=tuple(lambdas),
        distance_to_mean=tuple(distances),
        rmse=tuple(errors),
        hard_rmse=hard_rmse,
    )
