"""Figure 5: average AUC vs lambda on the (COIL-like) image data.

The paper's protocol (Section V-B): Gaussian RBF similarity with
``sigma^2`` equal to the median pairwise squared distance, seven tuning
parameters ``lambda in {0, 0.01, 0.05, 0.1, 0.5, 1, 5}``, and three
labeled-to-unlabeled ratios (80/20, 20/80, 10/90) realized by rotating
k-fold splits.  Findings: the hard criterion gives the best AUC in every
setting, AUC decreases as lambda grows, and AUC decreases as the labeled
fraction shrinks.

This driver substitutes the procedural COIL-like dataset
(:mod:`repro.datasets.coil`) for the unavailable original — see
DESIGN.md for the substitution rationale.  The similarity matrix is
computed once; each split only permutes it.
"""

from __future__ import annotations

import numpy as np

from repro.core.soft import solve_soft_criterion
from repro.datasets.coil import CoilLikeDataset, make_coil_like
from repro.datasets.splits import COIL_SETTINGS, paper_coil_protocol
from repro.exceptions import ConfigurationError
from repro.experiments.sweep import SweepResult
from repro.kernels.bandwidth import median_heuristic
from repro.kernels.library import GaussianKernel
from repro.metrics.classification import auc
from repro.utils.rng import spawn_seeds

__all__ = ["PAPER_FIG5_LAMBDAS", "run_figure5"]

#: The paper's seven tuning parameters for the COIL experiment.
PAPER_FIG5_LAMBDAS = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def run_figure5(
    *,
    dataset: CoilLikeDataset | None = None,
    images_per_class: int = 250,
    settings: tuple[str, ...] = ("80/20", "20/80", "10/90"),
    lambdas: tuple[float, ...] = PAPER_FIG5_LAMBDAS,
    repeats: int = 5,
    seed=None,
) -> SweepResult:
    """Regenerate Figure 5's AUC-vs-lambda series.

    Parameters
    ----------
    dataset:
        A prebuilt :class:`CoilLikeDataset`; one is generated (with
        ``images_per_class``) when omitted.
    images_per_class:
        Dataset size knob — the paper uses 250 (N = 1500); benches use a
        smaller value for speed.
    settings:
        Labeled-ratio settings to run (keys of
        :data:`~repro.datasets.splits.COIL_SETTINGS`).
    lambdas:
        Tuning-parameter grid (the x-axis).
    repeats:
        Fold-shuffle repetitions per setting (paper: 100).
    seed:
        Master seed for dataset generation and fold shuffles.
    """
    unknown = [s for s in settings if s not in COIL_SETTINGS]
    if unknown:
        raise ConfigurationError(
            f"unknown settings {unknown}; known: {sorted(COIL_SETTINGS)}"
        )
    dataset_seed, *split_seeds = spawn_seeds(seed, 1 + len(settings))
    if dataset is None:
        dataset = make_coil_like(images_per_class=images_per_class, seed=dataset_seed)

    images = dataset.images
    labels = dataset.binary_labels
    sigma = median_heuristic(images, subsample=min(600, images.shape[0]), seed=0)
    weights = GaussianKernel().gram(images, bandwidth=sigma)

    n_samples = images.shape[0]
    means = np.empty((len(settings), len(lambdas)))
    stds = np.empty_like(means)
    sems = np.empty_like(means)
    for s_index, (setting, split_seed) in enumerate(zip(settings, split_seeds)):
        per_lambda: dict[float, list[float]] = {lam: [] for lam in lambdas}
        splits = paper_coil_protocol(
            n_samples, setting, repeats=repeats, seed=split_seed
        )
        for labeled_idx, unlabeled_idx in splits:
            order = np.concatenate([labeled_idx, unlabeled_idx])
            w_perm = weights[np.ix_(order, order)]
            y_labeled = labels[labeled_idx]
            y_hidden = labels[unlabeled_idx]
            if y_hidden.min() == y_hidden.max():
                # AUC undefined; can only occur for degenerate tiny folds.
                continue
            for lam in lambdas:
                fit = solve_soft_criterion(
                    w_perm, y_labeled, lam, method="schur",
                    check_reachability=False,
                )
                per_lambda[lam].append(auc(y_hidden, fit.unlabeled_scores))
        for l_index, lam in enumerate(lambdas):
            values = np.asarray(per_lambda[lam])
            if values.size == 0:
                raise ConfigurationError(
                    f"no valid splits produced for setting {setting!r}"
                )
            means[s_index, l_index] = values.mean()
            stds[s_index, l_index] = values.std(ddof=1) if values.size > 1 else 0.0
            sems[s_index, l_index] = stds[s_index, l_index] / np.sqrt(values.size)

    return SweepResult(
        name="figure5",
        x_label="lambda",
        x_values=tuple(lambdas),
        series_labels=tuple(f"ratio {s}" for s in settings),
        means=means,
        stds=stds,
        sems=sems,
        metric="auc",
        n_replicates=repeats,
        meta={
            "n_samples": n_samples,
            "sigma": round(float(sigma), 4),
            "dataset": "coil-like (procedural substitute)",
        },
    )
