"""Seeded replicate runner with metric aggregation.

The paper repeats every synthetic configuration 1000 times and reports
average RMSEs.  :func:`run_replicates` runs a replicate function under
independent child RNG streams (see :mod:`repro.utils.rng`) and aggregates
each returned metric into mean / std / standard error, so every figure
driver shares one correct implementation of "repeat and average".

With ``n_jobs > 1`` the replicates fan out over a process pool
(:mod:`repro.experiments.executor`).  Workers consume the *same*
pre-spawned :class:`numpy.random.SeedSequence` children the serial loop
would, and results are aggregated in replicate order, so for a fixed
master seed the parallel :class:`ReplicateSummary` is bit-identical to
the serial one.  Callables that cannot be pickled (closures, lambdas)
degrade to serial execution with a warning rather than failing.

Each ``run_replicates`` call is also one progress *task*
(:mod:`repro.obs.progress`): when a progress emitter is active — passed
explicitly or installed ambiently — the runner emits start/heartbeat,
one completion event per replicate (carrying its seed-stream index), and
an end event whose status distinguishes completed from interrupted runs.
The null emitter is the default, so undriven code pays one attribute
lookup per replicate.

Non-finite replicate values are a correctness hazard — one NaN poisons
every mean — so the runner validates them: under ``strict=True`` (the
default, and what every experiment driver uses) a NaN/inf metric raises
:class:`~repro.exceptions.NonFiniteMetricError` naming the metric and
replicate index; under ``strict=False`` it warns, increments the
``replicates.nonfinite`` counter, and lets the value through.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError, NonFiniteMetricError
from repro.experiments.executor import execute_replicates, resolve_n_jobs
from repro.utils.rng import spawn_seeds

__all__ = ["NonFiniteMetricWarning", "ReplicateSummary", "run_replicates"]


class NonFiniteMetricWarning(UserWarning):
    """A replicate returned a NaN/inf metric value (non-strict mode)."""


@dataclass(frozen=True)
class ReplicateSummary:
    """Aggregated metrics over replicates.

    Attributes
    ----------
    n_replicates:
        Number of replicates aggregated.
    means, stds, sems:
        Per-metric mean, sample standard deviation (ddof=1; 0.0 when only
        one replicate), and standard error of the mean.
    values:
        The raw per-replicate values, for bootstrap resampling.
    """

    n_replicates: int
    means: dict[str, float]
    stds: dict[str, float]
    sems: dict[str, float]
    values: dict[str, tuple[float, ...]]

    def mean(self, key: str) -> float:
        return self.means[key]

    def std(self, key: str) -> float:
        return self.stds[key]

    def sem(self, key: str) -> float:
        return self.sems[key]

    def bootstrap_ci(
        self, key: str, *, level: float = 0.95, n_resamples: int = 2000, seed=0
    ) -> tuple[float, float]:
        """Percentile bootstrap confidence interval for a metric's mean.

        Resamples the replicate values with replacement ``n_resamples``
        times and returns the ``(1-level)/2`` and ``1-(1-level)/2``
        percentiles of the resampled means.
        """
        if not 0.0 < level < 1.0:
            raise ConfigurationError(f"level must be in (0, 1), got {level}")
        if n_resamples < 1:
            raise ConfigurationError(
                f"n_resamples must be >= 1, got {n_resamples}"
            )
        data = np.asarray(self.values[key])
        rng = np.random.default_rng(seed)
        resampled = rng.choice(data, size=(n_resamples, data.shape[0]), replace=True)
        means = resampled.mean(axis=1)
        alpha = (1.0 - level) / 2.0
        low, high = np.quantile(means, [alpha, 1.0 - alpha])
        return float(low), float(high)


def _check_keys(metrics: Mapping[str, float], expected: set[str] | None) -> set[str]:
    """Every replicate must return the same metric keys."""
    if expected is None:
        return set(metrics)
    if set(metrics) != expected:
        raise ConfigurationError(
            f"replicates returned inconsistent metric keys: "
            f"{sorted(expected)} vs {sorted(metrics)}"
        )
    return expected


def _ingest(
    values: dict[str, list[float]],
    metrics: Mapping[str, float],
    index: int,
    *,
    strict: bool,
    registry,
) -> None:
    """Append one replicate's metrics, policing non-finite values."""
    for key, value in metrics.items():
        value = float(value)
        if not math.isfinite(value):
            registry.counter("replicates.nonfinite").inc()
            message = (
                f"replicate {index} returned a non-finite value ({value!r}) "
                f"for metric {key!r}"
            )
            if strict:
                raise NonFiniteMetricError(message)
            warnings.warn(message, NonFiniteMetricWarning, stacklevel=4)
        values.setdefault(key, []).append(value)


def _default_label(replicate) -> str:
    """A human-readable task label for progress events."""
    for candidate in (replicate, getattr(replicate, "func", None)):
        name = getattr(candidate, "__name__", None)
        if name:
            return name
    return "replicates"


def run_replicates(
    replicate: Callable[[np.random.Generator], Mapping[str, float]],
    *,
    n_replicates: int,
    seed=None,
    n_jobs: int = 1,
    strict: bool = True,
    label: str | None = None,
    progress=None,
) -> ReplicateSummary:
    """Run ``replicate(rng)`` under independent streams and aggregate.

    Parameters
    ----------
    replicate:
        Callable receiving a fresh :class:`numpy.random.Generator` and
        returning a mapping of metric name to value.  Every replicate
        must return the same metric keys.  To run under ``n_jobs > 1``
        the callable must be picklable — a module-level function or a
        :func:`functools.partial` over one; closures fall back to serial
        with a warning.
    n_replicates:
        Number of replicates (the paper uses 1000; benches use fewer).
    seed:
        Master seed; children are spawned per replicate.
    n_jobs:
        Worker processes (``1`` = serial, ``-1`` = one per CPU).  For a
        fixed ``seed`` the result is bit-identical at every ``n_jobs``.
    strict:
        When True (default), a NaN/inf metric value raises
        :class:`~repro.exceptions.NonFiniteMetricError`; when False it
        warns, increments the ``replicates.nonfinite`` counter, and is
        aggregated as-is.
    label:
        Task name on emitted progress events (defaults to the replicate
        callable's name).
    progress:
        A :class:`~repro.obs.progress.ProgressEmitter` to stream
        heartbeat and per-replicate-completion events through; defaults
        to the ambient emitter (:func:`repro.obs.get_progress`), which is
        a no-op unless the caller installed one (e.g. via the CLI's
        ``--progress`` flags).  Progress never affects results: for a
        fixed seed the summary is bit-identical with or without it, at
        every ``n_jobs``.
    """
    if n_replicates < 1:
        raise ConfigurationError(f"n_replicates must be >= 1, got {n_replicates}")
    n_jobs = resolve_n_jobs(n_jobs)
    seeds = spawn_seeds(seed, n_replicates)
    values: dict[str, list[float]] = {}
    expected_keys: set[str] | None = None
    registry = obs.get_registry()
    if progress is None:
        progress = obs.get_progress()

    with progress.task(
        label or _default_label(replicate), total=n_replicates, n_jobs=n_jobs
    ) as progress_task:
        outcomes = None
        if n_jobs > 1:
            outcomes = execute_replicates(
                replicate, seeds, n_jobs=n_jobs, progress_task=progress_task
            )

        if outcomes is None:
            for index, child in enumerate(seeds):
                rng = np.random.default_rng(child)
                with obs.span("repro.replicate", index=index) as span:
                    metrics = dict(replicate(rng))
                    expected_keys = _check_keys(metrics, expected_keys)
                    if span.recording:
                        for key, value in metrics.items():
                            span.set_attribute(f"metric.{key}", float(value))
                    _ingest(values, metrics, index, strict=strict, registry=registry)
                registry.counter("replicates.completed").inc()
                progress_task.replicate_done(index)
        else:
            tracer = obs.get_tracer()
            adopt = getattr(tracer, "adopt_records", None)
            for outcome in outcomes:
                if outcome.span_records and adopt is not None:
                    adopt(outcome.span_records)
                if outcome.metrics_state:
                    registry.merge_state(outcome.metrics_state)
                expected_keys = _check_keys(outcome.metrics, expected_keys)
                _ingest(
                    values, outcome.metrics, outcome.index,
                    strict=strict, registry=registry,
                )
                registry.counter("replicates.completed").inc()

    means = {key: float(np.mean(v)) for key, v in values.items()}
    if n_replicates > 1:
        stds = {key: float(np.std(v, ddof=1)) for key, v in values.items()}
    else:
        stds = {key: 0.0 for key in values}
    sems = {key: stds[key] / np.sqrt(n_replicates) for key in values}
    return ReplicateSummary(
        n_replicates=n_replicates,
        means=means,
        stds=stds,
        sems=sems,
        values={key: tuple(v) for key, v in values.items()},
    )
