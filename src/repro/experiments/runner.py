"""Seeded replicate runner with metric aggregation.

The paper repeats every synthetic configuration 1000 times and reports
average RMSEs.  :func:`run_replicates` runs a replicate function under
independent child RNG streams (see :mod:`repro.utils.rng`) and aggregates
each returned metric into mean / std / standard error, so every figure
driver shares one correct implementation of "repeat and average".
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.utils.rng import spawn_rngs

__all__ = ["ReplicateSummary", "run_replicates"]


@dataclass(frozen=True)
class ReplicateSummary:
    """Aggregated metrics over replicates.

    Attributes
    ----------
    n_replicates:
        Number of replicates aggregated.
    means, stds, sems:
        Per-metric mean, sample standard deviation (ddof=1; 0.0 when only
        one replicate), and standard error of the mean.
    values:
        The raw per-replicate values, for bootstrap resampling.
    """

    n_replicates: int
    means: dict[str, float]
    stds: dict[str, float]
    sems: dict[str, float]
    values: dict[str, tuple[float, ...]]

    def mean(self, key: str) -> float:
        return self.means[key]

    def std(self, key: str) -> float:
        return self.stds[key]

    def sem(self, key: str) -> float:
        return self.sems[key]

    def bootstrap_ci(
        self, key: str, *, level: float = 0.95, n_resamples: int = 2000, seed=0
    ) -> tuple[float, float]:
        """Percentile bootstrap confidence interval for a metric's mean.

        Resamples the replicate values with replacement ``n_resamples``
        times and returns the ``(1-level)/2`` and ``1-(1-level)/2``
        percentiles of the resampled means.
        """
        if not 0.0 < level < 1.0:
            raise ConfigurationError(f"level must be in (0, 1), got {level}")
        if n_resamples < 1:
            raise ConfigurationError(
                f"n_resamples must be >= 1, got {n_resamples}"
            )
        data = np.asarray(self.values[key])
        rng = np.random.default_rng(seed)
        resampled = rng.choice(data, size=(n_resamples, data.shape[0]), replace=True)
        means = resampled.mean(axis=1)
        alpha = (1.0 - level) / 2.0
        low, high = np.quantile(means, [alpha, 1.0 - alpha])
        return float(low), float(high)


def run_replicates(
    replicate: Callable[[np.random.Generator], Mapping[str, float]],
    *,
    n_replicates: int,
    seed=None,
) -> ReplicateSummary:
    """Run ``replicate(rng)`` under independent streams and aggregate.

    Parameters
    ----------
    replicate:
        Callable receiving a fresh :class:`numpy.random.Generator` and
        returning a mapping of metric name to value.  Every replicate
        must return the same metric keys.
    n_replicates:
        Number of replicates (the paper uses 1000; benches use fewer).
    seed:
        Master seed; children are spawned per replicate.
    """
    if n_replicates < 1:
        raise ConfigurationError(f"n_replicates must be >= 1, got {n_replicates}")
    values: dict[str, list[float]] = {}
    expected_keys: set[str] | None = None
    registry = obs.get_registry()
    for index, rng in enumerate(spawn_rngs(seed, n_replicates)):
        with obs.span("repro.replicate", index=index) as span:
            metrics = dict(replicate(rng))
            if expected_keys is None:
                expected_keys = set(metrics)
            elif set(metrics) != expected_keys:
                raise ConfigurationError(
                    f"replicates returned inconsistent metric keys: "
                    f"{sorted(expected_keys)} vs {sorted(metrics)}"
                )
            for key, value in metrics.items():
                values.setdefault(key, []).append(float(value))
                if span.recording:
                    span.set_attribute(f"metric.{key}", float(value))
        registry.counter("replicates.completed").inc()

    means = {key: float(np.mean(v)) for key, v in values.items()}
    if n_replicates > 1:
        stds = {key: float(np.std(v, ddof=1)) for key, v in values.items()}
    else:
        stds = {key: 0.0 for key in values}
    sems = {key: stds[key] / np.sqrt(n_replicates) for key in values}
    return ReplicateSummary(
        n_replicates=n_replicates,
        means=means,
        stds=stds,
        sems=sems,
        values={key: tuple(v) for key, v in values.items()},
    )
