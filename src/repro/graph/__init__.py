"""Graph substrate: similarity matrices, Laplacians, connectivity, spectra."""

from repro.graph.components import (
    connected_components,
    is_connected,
    labeled_reachability,
    require_labeled_reachability,
)
from repro.graph.laplacian import (
    degree_vector,
    laplacian,
    normalized_laplacian,
    random_walk_laplacian,
)
from repro.graph.approx import approx_knn_graph, knn_recall, rp_tree_knn
from repro.graph.similarity import (
    SimilarityGraph,
    build_similarity_graph,
    epsilon_graph,
    full_kernel_graph,
    knn_graph,
    local_scaling_graph,
)
from repro.graph.diagnostics import GraphDiagnostics, diagnose_graph
from repro.graph.random_walk import (
    absorption_probabilities,
    effective_resistance,
    expected_hitting_times,
)
from repro.graph.spectral import fiedler_value, laplacian_spectrum, spectral_embedding

__all__ = [
    "SimilarityGraph",
    "build_similarity_graph",
    "full_kernel_graph",
    "knn_graph",
    "epsilon_graph",
    "local_scaling_graph",
    "approx_knn_graph",
    "knn_recall",
    "rp_tree_knn",
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "random_walk_laplacian",
    "connected_components",
    "is_connected",
    "labeled_reachability",
    "require_labeled_reachability",
    "fiedler_value",
    "laplacian_spectrum",
    "spectral_embedding",
    "absorption_probabilities",
    "expected_hitting_times",
    "effective_resistance",
    "GraphDiagnostics",
    "diagnose_graph",
]
