"""Spectral utilities for similarity graphs.

These power diagnostics in the experiment harness: the Fiedler value
(algebraic connectivity) quantifies how strongly the soft criterion's
penalty couples distant vertices, and the spectral embedding provides a
qualitative view of the manifold structure of the COIL-like dataset.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro.exceptions import DataValidationError
from repro.graph.laplacian import laplacian
from repro.utils.validation import check_weight_matrix

__all__ = ["laplacian_spectrum", "fiedler_value", "spectral_embedding"]


def laplacian_spectrum(weights, k: int | None = None) -> np.ndarray:
    """Ascending eigenvalues of the unnormalized Laplacian.

    Parameters
    ----------
    weights:
        Weight matrix (dense or sparse).
    k:
        If given, return only the ``k`` smallest eigenvalues (uses sparse
        Lanczos for sparse inputs); otherwise the full spectrum via dense
        symmetric eigendecomposition.
    """
    weights = check_weight_matrix(weights)
    lap = laplacian(weights)
    n = weights.shape[0]
    if k is not None:
        if not 1 <= k <= n:
            raise DataValidationError(f"k must be in [1, {n}], got {k}")
        if sparse.issparse(lap) and k < n - 1:
            # Shift-invert slightly below zero: L itself is singular (the
            # constant vector), so shifting at exactly 0 fails to factor.
            vals = eigsh(lap, k=k, sigma=-1e-3, which="LM", return_eigenvectors=False)
            return np.sort(vals)
        dense = lap.toarray() if sparse.issparse(lap) else lap
        return np.linalg.eigvalsh(dense)[:k]
    dense = lap.toarray() if sparse.issparse(lap) else lap
    return np.linalg.eigvalsh(dense)


def fiedler_value(weights) -> float:
    """Algebraic connectivity: second-smallest Laplacian eigenvalue.

    Zero exactly when the graph is disconnected; larger values mean the
    Laplacian penalty more strongly enforces global smoothness.
    """
    weights = check_weight_matrix(weights)
    if weights.shape[0] < 2:
        raise DataValidationError("fiedler value requires at least 2 vertices")
    spectrum = laplacian_spectrum(weights, k=min(2, weights.shape[0]))
    return float(spectrum[1])


def spectral_embedding(weights, n_components: int = 2) -> np.ndarray:
    """Embed vertices by the eigenvectors of the smallest nonzero eigenvalues.

    Returns an ``(N, n_components)`` matrix whose columns are Laplacian
    eigenvectors 2..(n_components+1) in ascending eigenvalue order (the
    constant eigenvector is skipped).
    """
    weights = check_weight_matrix(weights)
    n = weights.shape[0]
    if not 1 <= n_components < n:
        raise DataValidationError(
            f"n_components must be in [1, {n - 1}], got {n_components}"
        )
    lap = laplacian(weights)
    dense = lap.toarray() if sparse.issparse(lap) else lap
    _, vectors = np.linalg.eigh(dense)
    return vectors[:, 1 : n_components + 1]
