"""Graph health diagnostics: "why is my propagation bad?".

Most graph-SSL failures trace to the graph, not the solver: a bandwidth
too small (disconnection, zero NW denominators), too large (a flat,
uninformative kernel), or degrees so skewed that a few hubs dominate.
:func:`diagnose_graph` collects the relevant statistics into one report
with actionable warnings, and the estimators' users can call it before
blaming the criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.exceptions import DataValidationError
from repro.graph.components import labeled_reachability
from repro.utils.validation import check_weight_matrix

__all__ = ["GraphDiagnostics", "diagnose_graph"]

#: Off-diagonal weight mass concentration above which the kernel is
#: considered "flat" (weights nearly constant, graph uninformative).
_FLATNESS_RATIO = 0.9


@dataclass(frozen=True)
class GraphDiagnostics:
    """Statistics and warnings for one similarity graph.

    Attributes
    ----------
    n_vertices, n_labeled:
        Sizes.
    edge_density:
        Fraction of off-diagonal pairs with weight above ``1e-12``.
    degree_min, degree_median, degree_max:
        Degree distribution summary.
    labeled_mass_min:
        Minimum over unlabeled vertices of their total weight to the
        labeled set (0 means the Nadaraya-Watson denominator vanishes).
    weight_flatness:
        Ratio of the 10th to the 90th percentile of positive
        off-diagonal weights — near 1 means the kernel is flat.
    reachable:
        Whether every unlabeled vertex reaches a labeled one.
    n_components:
        Connected components of the positive-weight graph.
    warnings:
        Human-readable findings, empty when the graph looks healthy.
    """

    n_vertices: int
    n_labeled: int
    edge_density: float
    degree_min: float
    degree_median: float
    degree_max: float
    labeled_mass_min: float
    weight_flatness: float
    reachable: bool
    n_components: int
    warnings: tuple[str, ...] = field(default_factory=tuple)

    @property
    def healthy(self) -> bool:
        return not self.warnings

    def summary(self) -> str:
        lines = [
            f"graph: {self.n_vertices} vertices ({self.n_labeled} labeled), "
            f"edge density {self.edge_density:.3f}, "
            f"{self.n_components} component(s)",
            f"degrees: min {self.degree_min:.3g}, median "
            f"{self.degree_median:.3g}, max {self.degree_max:.3g}",
            f"min labeled mass at an unlabeled vertex: {self.labeled_mass_min:.3g}",
            f"weight flatness (p10/p90 of positive weights): "
            f"{self.weight_flatness:.3f}",
        ]
        if self.warnings:
            lines.append("warnings:")
            lines.extend(f"  - {w}" for w in self.warnings)
        else:
            lines.append("no warnings: the graph looks healthy")
        return "\n".join(lines)


def diagnose_graph(weights, n_labeled: int) -> GraphDiagnostics:
    """Collect graph statistics and failure-mode warnings.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    n_labeled:
        Number of labeled vertices.
    """
    weights = check_weight_matrix(weights)
    total = weights.shape[0]
    if not 0 < n_labeled <= total:
        raise DataValidationError(
            f"n_labeled must be in (0, {total}], got {n_labeled}"
        )
    dense = np.asarray(weights.todense()) if sparse.issparse(weights) else weights

    off_diag = dense[~np.eye(total, dtype=bool)]
    positive = off_diag[off_diag > 1e-12]
    edge_density = positive.size / max(off_diag.size, 1)
    degrees = dense.sum(axis=1)

    if n_labeled < total:
        labeled_mass = dense[n_labeled:, :n_labeled].sum(axis=1)
        labeled_mass_min = float(labeled_mass.min())
    else:
        labeled_mass_min = float("inf")

    if positive.size >= 2:
        p10, p90 = np.percentile(positive, [10, 90])
        flatness = float(p10 / p90) if p90 > 0 else 1.0
    else:
        flatness = 0.0

    report = labeled_reachability(dense, n_labeled)

    warnings: list[str] = []
    if not report.ok:
        warnings.append(
            f"{len(report.orphan_vertices)} unlabeled vertices cannot reach "
            f"any labeled vertex: the hard criterion is singular here. "
            f"Increase the bandwidth."
        )
    if labeled_mass_min == 0.0:
        warnings.append(
            "some unlabeled vertex has zero total weight to the labeled "
            "set: the Nadaraya-Watson denominator vanishes there."
        )
    if flatness > _FLATNESS_RATIO:
        warnings.append(
            f"the kernel is nearly flat (p10/p90 = {flatness:.3f} > "
            f"{_FLATNESS_RATIO}): predictions will collapse toward the "
            f"labeled mean. Decrease the bandwidth."
        )
    if edge_density < 0.001 and total > 10:
        warnings.append(
            f"the graph is extremely sparse (density {edge_density:.5f}): "
            f"check the bandwidth against typical pairwise distances."
        )
    if degrees.min() <= 0:
        warnings.append("some vertex has zero degree (fully isolated).")

    return GraphDiagnostics(
        n_vertices=total,
        n_labeled=n_labeled,
        edge_density=float(edge_density),
        degree_min=float(degrees.min()),
        degree_median=float(np.median(degrees)),
        degree_max=float(degrees.max()),
        labeled_mass_min=labeled_mass_min,
        weight_flatness=flatness,
        reachable=report.ok,
        n_components=report.n_components,
        warnings=tuple(warnings),
    )
