"""Approximate k-nearest-neighbour graphs via random-projection trees.

Exact kd-tree queries dominate graph construction beyond N ≈ 10⁵ (and
degrade toward brute force in higher dimensions).  This module trades a
controlled amount of recall for near-linear construction:

1. Build ``n_trees`` **random-projection trees**: each node splits its
   points at the median of their projections onto a random direction,
   recursing until leaves hold at most ``leaf_size`` points (Dasgupta &
   Freund's RP-trees — median splits adapt to intrinsic dimension).
2. Within every leaf, compute exact pairwise distances and keep each
   point's ``k`` best leaf-mates as *candidates*.
3. Merge candidates across trees and keep each point's ``k`` best by
   ``(distance, index)`` — the same deterministic tie rule as the exact
   routes in :mod:`repro.graph.similarity`.

Each tree costs ``O(N log N)`` projections plus ``O(N · leaf_size)``
leaf distances, and a neighbour is found whenever *any* tree co-locates
the pair in a leaf, so recall improves geometrically with ``n_trees`` —
the **recall knob**.  The default (:data:`DEFAULT_N_TREES`) targets
recall ≥ 0.95 on clustered data (enforced by the parity suite in
``tests/test_graph_approx.py`` and measured by
``benchmarks/test_bench_large_n.py``).  Rows that end up with fewer
than ``k`` candidates (pathologically unlucky splits) fall back to an
exact brute-force pass, so the result always has exactly ``k``
neighbours per row.

Everything is seeded: the same ``(x, k, n_trees, leaf_size, seed)``
always produces the same graph.

Beyond N ≈ 5·10⁵ the *merge* becomes the memory wall: holding every
tree's candidate list at once costs ``n_trees · N · k`` 24-byte triples
(plus a concatenation copy).  The query phase therefore streams — leaf
fragments accumulate in a bounded candidate buffer
(:class:`_CandidateMerge`) that folds into an ``(N, k)`` running top-k
state whenever it fills, capping peak memory at ``O(N·k + block_size)``.
Streaming engages automatically past :data:`STREAM_AUTO_CANDIDATES`
candidates and is bit-identical to the one-shot merge at every
``block_size`` (pinned by ``tests/test_graph_approx.py``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.graph.similarity import (
    SimilarityGraph,
    _assemble_knn_csr,
    _knn_neighbor_lists,
    _resolve_knn_mode,
    _validate_knn_rows,
)
from repro.kernels.base import pairwise_sq_distances
from repro.kernels.library import GaussianKernel
from repro.obs import probes
from repro.utils.validation import check_matrix_2d, check_positive_scalar

__all__ = [
    "rp_tree_knn",
    "approx_knn_graph",
    "knn_recall",
    "DEFAULT_N_TREES",
    "DEFAULT_BLOCK_CANDIDATES",
    "STREAM_AUTO_CANDIDATES",
]

#: Default number of random-projection trees — the recall knob.  Eight
#: trees over the default leaves put recall near 0.999 on clustered
#: data (union symmetrization then recovers almost every missed
#: directed edge, keeping downstream estimator scores within 1e-2 of
#: the exact graph); halve for speed on easy data, raise when the
#: cluster structure is adversarial.
DEFAULT_N_TREES = 8

#: Leaves smaller than this stop splitting.  Must exceed ``k`` so one
#: leaf can supply a full candidate row; the resolved default is
#: ``max(4 * (k + 1), 96)`` — fatter leaves cost ``O(leaf_size)`` more
#: distance work per point but raise per-tree recall enough that fewer
#: trees are needed overall.
MIN_LEAF_SIZE = 96

#: The query phase streams automatically once the forest's total
#: candidate volume (``n_trees * n * k`` triples of 24 bytes) exceeds
#: this many triples — ~100 MB of concatenated edge list, which the
#: one-shot merge briefly doubles.  Below it the one-shot path (hold
#: every candidate, reduce once) stays fastest.
STREAM_AUTO_CANDIDATES = 2**22

#: Candidate-buffer capacity, in ``(row, col, sq-distance)`` triples, of
#: the streamed path when ``block_size`` is not given explicitly: 2^20
#: triples = 24 MB of buffered leaf fragments between merges.
DEFAULT_BLOCK_CANDIDATES = 2**20


class _CandidateMerge:
    """Bounded-memory running top-k merge of kNN candidate fragments.

    Holds an ``(n, k)`` running state (each row's current best candidates
    by ``(distance, index)``; empty slots carry the sentinel index ``n``)
    plus at most ``capacity`` buffered candidate triples.  :meth:`push`
    appends one leaf's fragment and triggers a merge once the buffer
    fills, so peak memory is ``O(n k + capacity)`` instead of the
    one-shot path's ``O(n_trees · n · k)`` concatenated edge list.

    Each merge is the same dedup → lexsort → per-row top-k reduction as
    the one-shot path, applied to "state entries first, buffered
    fragments after" — so a pair seen in an earlier tree wins the dedup
    against a later duplicate, exactly as it does in the one-shot
    concatenation.  With ``capacity=None`` nothing merges until
    :meth:`finish` and the computation *is* the one-shot path.
    """

    def __init__(self, n: int, k: int, capacity: int | None):
        self.n = int(n)
        self.k = int(k)
        self.capacity = capacity
        self.idx = np.full((n, k), n, dtype=np.intp)
        self.sq = np.full((n, k), np.inf)
        self.merges = 0
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._sq: list[np.ndarray] = []
        self._buffered = 0

    def push(self, rows: np.ndarray, cols: np.ndarray, sq: np.ndarray) -> None:
        self._rows.append(rows)
        self._cols.append(cols)
        self._sq.append(sq)
        self._buffered += rows.size
        if self.capacity is not None and self._buffered >= self.capacity:
            self._merge()
            self.merges += 1

    def _merge(self) -> None:
        # State first: np.unique keeps the *first* occurrence of each
        # (row, col) pair, so already-merged (earlier-tree) candidates
        # win the dedup over buffered duplicates.
        valid = self.idx != self.n
        rows = np.concatenate([np.nonzero(valid)[0], *self._rows])
        cols = np.concatenate([self.idx[valid], *self._cols])
        dists = np.concatenate([self.sq[valid], *self._sq])
        self._rows, self._cols, self._sq = [], [], []
        self._buffered = 0

        pair_key = rows * np.intp(self.n) + cols
        _, first = np.unique(pair_key, return_index=True)
        rows, cols, dists = rows[first], cols[first], dists[first]
        order = np.lexsort((cols, dists, rows))
        rows, cols, dists = rows[order], cols[order], dists[order]
        counts = np.bincount(rows, minlength=self.n)
        row_starts = np.concatenate(([0], np.cumsum(counts)))
        position = np.arange(rows.size) - row_starts[rows]
        keep = position < self.k
        self.idx.fill(self.n)
        self.sq.fill(np.inf)
        flat = rows[keep] * self.k + position[keep]
        self.idx.ravel()[flat] = cols[keep]
        self.sq.ravel()[flat] = dists[keep]

    def finish(self) -> np.ndarray:
        """Final merge; returns per-row candidate counts."""
        self._merge()
        return np.sum(self.idx != self.n, axis=1)


def _resolve_block_capacity(
    block_size: int | None, n: int, k: int, n_trees: int
) -> int | None:
    """Buffer capacity in candidate triples; ``None`` means one-shot."""
    if block_size is None:
        if n_trees * n * k > STREAM_AUTO_CANDIDATES:
            return DEFAULT_BLOCK_CANDIDATES
        return None
    if int(block_size) != block_size or block_size < 0:
        raise ConfigurationError(
            f"block_size must be a non-negative integer, got {block_size!r}"
        )
    return int(block_size) if block_size else None


def _tree_leaves(x: np.ndarray, leaf_size: int, rng) -> list[np.ndarray]:
    """Partition all points into RP-tree leaves of ≈ ``leaf_size``.

    Median splits keep the tree balanced; a node whose projections are
    all identical (duplicate-heavy regions) becomes a leaf rather than
    recursing forever.
    """
    d = x.shape[1]
    leaves: list[np.ndarray] = []
    stack = [np.arange(x.shape[0], dtype=np.intp)]
    while stack:
        ids = stack.pop()
        if ids.size <= leaf_size:
            leaves.append(ids)
            continue
        direction = rng.standard_normal(d)
        projections = x[ids] @ direction
        below = projections < np.median(projections)
        if not below.any() or below.all():
            leaves.append(ids)
            continue
        # Boolean masks preserve order, so leaf ids stay sorted — the
        # per-leaf top-k below then breaks ties by global vertex index.
        stack.append(ids[below])
        stack.append(ids[~below])
    return leaves


def _leaf_candidates(x: np.ndarray, ids: np.ndarray, k: int):
    """Each leaf member's best ≤ k leaf-mates by ``(distance, index)``."""
    size = ids.size
    keep = min(k, size - 1)
    if keep < 1:
        return None
    sq = pairwise_sq_distances(x[ids])
    np.fill_diagonal(sq, np.inf)
    # Leaf ids are sorted (see _tree_leaves), so the stable argsort's
    # positional tiebreak is exactly the global smallest-index rule.
    order = np.argsort(sq, axis=1, kind="stable")[:, :keep]
    rows = np.repeat(ids, keep)
    cols = ids[order.ravel()]
    dists = np.take_along_axis(sq, order, axis=1).ravel()
    return rows, cols, dists


def rp_tree_knn(
    x: np.ndarray,
    k: int,
    *,
    n_trees: int = DEFAULT_N_TREES,
    leaf_size: int | None = None,
    seed: int = 0,
    block_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate k-nearest-neighbour lists from random-projection trees.

    Parameters
    ----------
    x:
        Inputs of shape ``(n, d)``.
    k:
        Neighbours per row (``1 <= k < n``).
    n_trees:
        The recall knob: more trees, higher recall, linearly more work.
    leaf_size:
        Leaf capacity per tree; defaults to ``max(4 * (k + 1), 96)``.
    seed:
        Seeds the projection directions; results are deterministic in
        ``(x, k, n_trees, leaf_size, seed)``.
    block_size:
        Candidate-buffer capacity of the streamed query phase, in
        ``(row, col, distance)`` triples.  ``None`` (default) picks
        automatically: stream with :data:`DEFAULT_BLOCK_CANDIDATES` once
        the forest's candidate volume exceeds
        :data:`STREAM_AUTO_CANDIDATES`, else merge one-shot.  ``0``
        forces the one-shot (in-memory) merge; a positive integer forces
        streaming at that buffer capacity.  Every setting produces
        bit-identical neighbour lists (pinned by
        ``tests/test_graph_approx.py``) — only peak memory changes:
        ``O(n·k + block_size)`` streamed vs ``O(n_trees · n · k)``
        one-shot.

    Returns
    -------
    ``(dist, idx)`` arrays of shape ``(n, k)``: Euclidean distances and
    neighbour indices, each row sorted by ``(distance, index)`` and
    excluding the row's own vertex — the same contract as the exact
    neighbour lists behind ``knn_graph(construction="neighbors")``.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    if not 1 <= k < n:
        raise ConfigurationError(f"k must satisfy 1 <= k < n; got k={k}, n={n}")
    if n_trees < 1:
        raise ConfigurationError(f"n_trees must be >= 1, got {n_trees}")
    if leaf_size is None:
        leaf_size = max(4 * (k + 1), MIN_LEAF_SIZE)
    elif leaf_size <= k:
        raise ConfigurationError(
            f"leaf_size must exceed k so a leaf can hold k neighbours; "
            f"got leaf_size={leaf_size}, k={k}"
        )
    capacity = _resolve_block_capacity(block_size, n, k, n_trees)
    rng = np.random.default_rng(seed)

    with obs.span(
        "repro.graph.rp_tree_knn",
        n_vertices=n,
        k=k,
        n_trees=int(n_trees),
        leaf_size=int(leaf_size),
        streamed=capacity is not None,
    ) as span:
        merge = _CandidateMerge(n, k, capacity)
        for _ in range(n_trees):
            for ids in _tree_leaves(x, leaf_size, rng):
                candidates = _leaf_candidates(x, ids, k)
                if candidates is None:
                    continue
                merge.push(*candidates)
        counts = merge.finish()

        neighbour_idx = np.zeros((n, k), dtype=np.intp)
        neighbour_sq = np.full((n, k), np.inf)
        full = counts >= k
        if full.any():
            neighbour_idx[full] = merge.idx[full]
            neighbour_sq[full] = merge.sq[full]

        short = np.flatnonzero(~full)
        if short.size:
            # Unlucky rows (every tree isolated them in tiny leaves) get
            # an exact, chunked brute-force pass — correctness never
            # depends on tree luck.
            sq = pairwise_sq_distances(x[short], x)
            sq[np.arange(short.size), short] = np.inf
            order = np.argsort(sq, axis=1, kind="stable")[:, :k]
            neighbour_idx[short] = order
            neighbour_sq[short] = np.take_along_axis(sq, order, axis=1)
        if span.recording:
            span.set_attribute("fallback_rows", int(short.size))
            span.set_attribute("candidate_merges", int(merge.merges))
        obs.get_registry().counter("graph.rp_tree.queries").inc()

    return np.sqrt(neighbour_sq), neighbour_idx


def approx_knn_graph(
    x: np.ndarray,
    *,
    k: int,
    kernel=None,
    bandwidth: float,
    mode: str = "union",
    n_trees: int = DEFAULT_N_TREES,
    leaf_size: int | None = None,
    seed: int = 0,
    block_size: int | None = None,
) -> SimilarityGraph:
    """Approximate kNN similarity graph with the exact routes' contract.

    Identical to :func:`~repro.graph.similarity.knn_graph` except the
    neighbour lists come from :func:`rp_tree_knn`: same kernel weights,
    same union/intersection symmetrization, same self-weight diagonal,
    same degeneracy validation.  ``n_trees`` is the recall knob; at the
    default the graph differs from the exact one only in a few percent
    of the longest (smallest-weight) edges, and downstream estimator
    scores match within 1e-2 (pinned by ``tests/test_graph_approx.py``).
    ``block_size`` bounds the query phase's candidate buffer (see
    :func:`rp_tree_knn`) — the graph is bit-identical at every setting.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    kernel = kernel or GaussianKernel()
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    mode = _resolve_knn_mode(mode)
    with obs.span(
        "repro.graph.knn",
        n_vertices=n,
        k=k,
        mode=mode,
        bandwidth=float(bandwidth),
        construction="approx",
    ) as span:
        neighbour_dist, neighbour_idx = rp_tree_knn(
            x, k, n_trees=n_trees, leaf_size=leaf_size, seed=seed,
            block_size=block_size,
        )
        weights = _assemble_knn_csr(
            n, neighbour_idx, neighbour_dist, kernel, bandwidth, mode
        )
        _validate_knn_rows(weights, k, mode=mode)
        probes.record_graph_stats(span, weights)
        return SimilarityGraph(
            weights=weights,
            kernel_name=kernel.name,
            bandwidth=float(bandwidth),
            construction="knn",
            params={
                "k": k,
                "mode": mode,
                "construction": "approx",
                "n_trees": int(n_trees),
                "seed": int(seed),
                "block_size": block_size if block_size is None else int(block_size),
            },
        )


def knn_recall(x: np.ndarray, k: int, approx_idx: np.ndarray) -> float:
    """Fraction of true k-nearest neighbours present in ``approx_idx``.

    Computes the exact deterministic neighbour lists and measures mean
    per-row overlap.  Under tied distances the exact list is one valid
    choice among equals, so recall can read slightly below the true
    edge-set recall on duplicate-heavy data; on generic data it is the
    standard recall@k.
    """
    x = check_matrix_2d(x, "x")
    approx_idx = np.asarray(approx_idx)
    if approx_idx.shape != (x.shape[0], k):
        raise ConfigurationError(
            f"approx_idx must have shape {(x.shape[0], k)}, "
            f"got {approx_idx.shape}"
        )
    _, exact_idx = _knn_neighbor_lists(x, k)
    hits = (approx_idx[:, :, None] == exact_idx[:, None, :]).any(axis=2)
    return float(hits.mean())
