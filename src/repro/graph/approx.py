"""Approximate k-nearest-neighbour graphs via random-projection trees.

Exact kd-tree queries dominate graph construction beyond N ≈ 10⁵ (and
degrade toward brute force in higher dimensions).  This module trades a
controlled amount of recall for near-linear construction:

1. Build ``n_trees`` **random-projection trees**: each node splits its
   points at the median of their projections onto a random direction,
   recursing until leaves hold at most ``leaf_size`` points (Dasgupta &
   Freund's RP-trees — median splits adapt to intrinsic dimension).
2. Within every leaf, compute exact pairwise distances and keep each
   point's ``k`` best leaf-mates as *candidates*.
3. Merge candidates across trees and keep each point's ``k`` best by
   ``(distance, index)`` — the same deterministic tie rule as the exact
   routes in :mod:`repro.graph.similarity`.

Each tree costs ``O(N log N)`` projections plus ``O(N · leaf_size)``
leaf distances, and a neighbour is found whenever *any* tree co-locates
the pair in a leaf, so recall improves geometrically with ``n_trees`` —
the **recall knob**.  The default (:data:`DEFAULT_N_TREES`) targets
recall ≥ 0.95 on clustered data (enforced by the parity suite in
``tests/test_graph_approx.py`` and measured by
``benchmarks/test_bench_large_n.py``).  Rows that end up with fewer
than ``k`` candidates (pathologically unlucky splits) fall back to an
exact brute-force pass, so the result always has exactly ``k``
neighbours per row.

Everything is seeded: the same ``(x, k, n_trees, leaf_size, seed)``
always produces the same graph.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.graph.similarity import (
    SimilarityGraph,
    _assemble_knn_csr,
    _knn_neighbor_lists,
    _resolve_knn_mode,
    _validate_knn_rows,
)
from repro.kernels.base import pairwise_sq_distances
from repro.kernels.library import GaussianKernel
from repro.obs import probes
from repro.utils.validation import check_matrix_2d, check_positive_scalar

__all__ = [
    "rp_tree_knn",
    "approx_knn_graph",
    "knn_recall",
    "DEFAULT_N_TREES",
]

#: Default number of random-projection trees — the recall knob.  Eight
#: trees over the default leaves put recall near 0.999 on clustered
#: data (union symmetrization then recovers almost every missed
#: directed edge, keeping downstream estimator scores within 1e-2 of
#: the exact graph); halve for speed on easy data, raise when the
#: cluster structure is adversarial.
DEFAULT_N_TREES = 8

#: Leaves smaller than this stop splitting.  Must exceed ``k`` so one
#: leaf can supply a full candidate row; the resolved default is
#: ``max(4 * (k + 1), 96)`` — fatter leaves cost ``O(leaf_size)`` more
#: distance work per point but raise per-tree recall enough that fewer
#: trees are needed overall.
MIN_LEAF_SIZE = 96


def _tree_leaves(x: np.ndarray, leaf_size: int, rng) -> list[np.ndarray]:
    """Partition all points into RP-tree leaves of ≈ ``leaf_size``.

    Median splits keep the tree balanced; a node whose projections are
    all identical (duplicate-heavy regions) becomes a leaf rather than
    recursing forever.
    """
    d = x.shape[1]
    leaves: list[np.ndarray] = []
    stack = [np.arange(x.shape[0], dtype=np.intp)]
    while stack:
        ids = stack.pop()
        if ids.size <= leaf_size:
            leaves.append(ids)
            continue
        direction = rng.standard_normal(d)
        projections = x[ids] @ direction
        below = projections < np.median(projections)
        if not below.any() or below.all():
            leaves.append(ids)
            continue
        # Boolean masks preserve order, so leaf ids stay sorted — the
        # per-leaf top-k below then breaks ties by global vertex index.
        stack.append(ids[below])
        stack.append(ids[~below])
    return leaves


def _leaf_candidates(x: np.ndarray, ids: np.ndarray, k: int):
    """Each leaf member's best ≤ k leaf-mates by ``(distance, index)``."""
    size = ids.size
    keep = min(k, size - 1)
    if keep < 1:
        return None
    sq = pairwise_sq_distances(x[ids])
    np.fill_diagonal(sq, np.inf)
    # Leaf ids are sorted (see _tree_leaves), so the stable argsort's
    # positional tiebreak is exactly the global smallest-index rule.
    order = np.argsort(sq, axis=1, kind="stable")[:, :keep]
    rows = np.repeat(ids, keep)
    cols = ids[order.ravel()]
    dists = np.take_along_axis(sq, order, axis=1).ravel()
    return rows, cols, dists


def rp_tree_knn(
    x: np.ndarray,
    k: int,
    *,
    n_trees: int = DEFAULT_N_TREES,
    leaf_size: int | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate k-nearest-neighbour lists from random-projection trees.

    Parameters
    ----------
    x:
        Inputs of shape ``(n, d)``.
    k:
        Neighbours per row (``1 <= k < n``).
    n_trees:
        The recall knob: more trees, higher recall, linearly more work.
    leaf_size:
        Leaf capacity per tree; defaults to ``max(4 * (k + 1), 96)``.
    seed:
        Seeds the projection directions; results are deterministic in
        ``(x, k, n_trees, leaf_size, seed)``.

    Returns
    -------
    ``(dist, idx)`` arrays of shape ``(n, k)``: Euclidean distances and
    neighbour indices, each row sorted by ``(distance, index)`` and
    excluding the row's own vertex — the same contract as the exact
    neighbour lists behind ``knn_graph(construction="neighbors")``.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    if not 1 <= k < n:
        raise ConfigurationError(f"k must satisfy 1 <= k < n; got k={k}, n={n}")
    if n_trees < 1:
        raise ConfigurationError(f"n_trees must be >= 1, got {n_trees}")
    if leaf_size is None:
        leaf_size = max(4 * (k + 1), MIN_LEAF_SIZE)
    elif leaf_size <= k:
        raise ConfigurationError(
            f"leaf_size must exceed k so a leaf can hold k neighbours; "
            f"got leaf_size={leaf_size}, k={k}"
        )
    rng = np.random.default_rng(seed)

    with obs.span(
        "repro.graph.rp_tree_knn",
        n_vertices=n,
        k=k,
        n_trees=int(n_trees),
        leaf_size=int(leaf_size),
    ) as span:
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        for _ in range(n_trees):
            for ids in _tree_leaves(x, leaf_size, rng):
                candidates = _leaf_candidates(x, ids, k)
                if candidates is None:
                    continue
                rows_parts.append(candidates[0])
                cols_parts.append(candidates[1])
                dist_parts.append(candidates[2])
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.intp)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.intp)
        dists = np.concatenate(dist_parts) if dist_parts else np.empty(0)

        # Deduplicate (row, col) pairs found by several trees, then keep
        # each row's k best candidates by (distance, index).
        pair_key = rows * np.intp(n) + cols
        _, first = np.unique(pair_key, return_index=True)
        rows, cols, dists = rows[first], cols[first], dists[first]
        order = np.lexsort((cols, dists, rows))
        rows, cols, dists = rows[order], cols[order], dists[order]
        counts = np.bincount(rows, minlength=n)
        row_starts = np.concatenate(([0], np.cumsum(counts)))
        position = np.arange(rows.size) - row_starts[rows]
        keep = position < k
        kept_counts = np.bincount(rows[keep], minlength=n)

        neighbour_idx = np.zeros((n, k), dtype=np.intp)
        neighbour_sq = np.full((n, k), np.inf)
        full = kept_counts >= k
        if full.any():
            flat = keep & full[rows]
            neighbour_idx[full] = cols[flat].reshape(-1, k)
            neighbour_sq[full] = dists[flat].reshape(-1, k)

        short = np.flatnonzero(~full)
        if short.size:
            # Unlucky rows (every tree isolated them in tiny leaves) get
            # an exact, chunked brute-force pass — correctness never
            # depends on tree luck.
            sq = pairwise_sq_distances(x[short], x)
            sq[np.arange(short.size), short] = np.inf
            order = np.argsort(sq, axis=1, kind="stable")[:, :k]
            neighbour_idx[short] = order
            neighbour_sq[short] = np.take_along_axis(sq, order, axis=1)
        if span.recording:
            span.set_attribute("fallback_rows", int(short.size))
        obs.get_registry().counter("graph.rp_tree.queries").inc()

    return np.sqrt(neighbour_sq), neighbour_idx


def approx_knn_graph(
    x: np.ndarray,
    *,
    k: int,
    kernel=None,
    bandwidth: float,
    mode: str = "union",
    n_trees: int = DEFAULT_N_TREES,
    leaf_size: int | None = None,
    seed: int = 0,
) -> SimilarityGraph:
    """Approximate kNN similarity graph with the exact routes' contract.

    Identical to :func:`~repro.graph.similarity.knn_graph` except the
    neighbour lists come from :func:`rp_tree_knn`: same kernel weights,
    same union/intersection symmetrization, same self-weight diagonal,
    same degeneracy validation.  ``n_trees`` is the recall knob; at the
    default the graph differs from the exact one only in a few percent
    of the longest (smallest-weight) edges, and downstream estimator
    scores match within 1e-2 (pinned by ``tests/test_graph_approx.py``).
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    kernel = kernel or GaussianKernel()
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    mode = _resolve_knn_mode(mode)
    with obs.span(
        "repro.graph.knn",
        n_vertices=n,
        k=k,
        mode=mode,
        bandwidth=float(bandwidth),
        construction="approx",
    ) as span:
        neighbour_dist, neighbour_idx = rp_tree_knn(
            x, k, n_trees=n_trees, leaf_size=leaf_size, seed=seed
        )
        weights = _assemble_knn_csr(
            n, neighbour_idx, neighbour_dist, kernel, bandwidth, mode
        )
        _validate_knn_rows(weights, k, mode=mode)
        probes.record_graph_stats(span, weights)
        return SimilarityGraph(
            weights=weights,
            kernel_name=kernel.name,
            bandwidth=float(bandwidth),
            construction="knn",
            params={
                "k": k,
                "mode": mode,
                "construction": "approx",
                "n_trees": int(n_trees),
                "seed": int(seed),
            },
        )


def knn_recall(x: np.ndarray, k: int, approx_idx: np.ndarray) -> float:
    """Fraction of true k-nearest neighbours present in ``approx_idx``.

    Computes the exact deterministic neighbour lists and measures mean
    per-row overlap.  Under tied distances the exact list is one valid
    choice among equals, so recall can read slightly below the true
    edge-set recall on duplicate-heavy data; on generic data it is the
    standard recall@k.
    """
    x = check_matrix_2d(x, "x")
    approx_idx = np.asarray(approx_idx)
    if approx_idx.shape != (x.shape[0], k):
        raise ConfigurationError(
            f"approx_idx must have shape {(x.shape[0], k)}, "
            f"got {approx_idx.shape}"
        )
    _, exact_idx = _knn_neighbor_lists(x, k)
    hits = (approx_idx[:, :, None] == exact_idx[:, None, :]).any(axis=2)
    return float(hits.mean())
