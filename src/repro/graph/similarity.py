"""Similarity-graph construction.

The paper's graph is the *full* kernel matrix
``w_ij = K((X_i - X_j)/h)`` (:func:`full_kernel_graph`).  For larger
problems we also provide the two standard sparsifiers — k-nearest-neighbour
graphs (:func:`knn_graph`) and epsilon-ball graphs (:func:`epsilon_graph`)
— which keep the same kernel weights but zero out long-range edges.  All
constructions return a :class:`SimilarityGraph`, which carries the weight
matrix along with its provenance (kernel, bandwidth, sparsifier).

Both sparsifiers support two construction routes:

* ``construction="dense"`` — the historical route: materialize the full
  ``(N, N)`` pairwise-distance and kernel matrices, then zero the pruned
  entries.  Exact, but ``O(N^2)`` memory.
* ``construction="neighbors"`` — query a ``scipy.spatial.cKDTree`` for
  the neighbour lists and assemble the CSR weight matrix directly from
  the surviving edges.  The ``(N, N)`` dense matrix is *never allocated*;
  memory is ``O(N k)`` for knn graphs and ``O(nnz)`` for epsilon graphs.
* ``construction="auto"`` (default) — ``"dense"`` for small inputs where
  the dense BLAS route is fastest, ``"neighbors"`` beyond
  :data:`DENSE_CONSTRUCTION_MAX` vertices.
* ``construction="approx"`` (knn only) — random-projection-tree
  approximate neighbour lists (:mod:`repro.graph.approx`) with default
  knobs; call :func:`repro.graph.approx.approx_knn_graph` directly to
  tune the recall/speed trade-off.

The exact routes produce the same graph (verified to floating-point
agreement by the parity and property suites in
``tests/test_sparse_dense_parity.py`` and
``tests/test_property_based_sparse_graph.py``), including under tied
distances: both break ties deterministically toward the *smallest
vertex index*.  The dense route uses a stable argsort; the kd-tree
route detects rows whose k-th-neighbour distance is tied across the
query boundary (``cKDTree`` returns an arbitrary member of a tie set)
and re-resolves exactly those rows with an exact ball query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

from repro import obs
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kernels.base import RadialKernel, pairwise_sq_distances
from repro.kernels.library import GaussianKernel
from repro.obs import probes
from repro.utils.validation import check_matrix_2d, check_positive_scalar, check_weight_matrix

__all__ = [
    "SimilarityGraph",
    "full_kernel_graph",
    "knn_graph",
    "epsilon_graph",
    "local_scaling_graph",
    "build_similarity_graph",
    "DENSE_CONSTRUCTION_MAX",
]

#: ``construction="auto"`` uses the dense route up to this many vertices
#: (where one BLAS gemm beats a tree query) and the neighbour route above
#: it (where the ``(N, N)`` allocation starts to dominate).
DENSE_CONSTRUCTION_MAX = 512


def _resolve_construction(
    construction: str, n: int, *, allowed: tuple = ("dense", "neighbors")
) -> str:
    if construction == "auto":
        return "dense" if n <= DENSE_CONSTRUCTION_MAX else "neighbors"
    if construction in allowed:
        return construction
    known = ", ".join(repr(name) for name in ("auto",) + allowed)
    raise ConfigurationError(
        f"construction must be one of {known}, got {construction!r}"
    )


def _format_vertices(indices, limit: int = 10) -> str:
    """Render offending vertex indices for error messages (first few)."""
    indices = np.asarray(indices).ravel()
    shown = ", ".join(str(int(i)) for i in indices[:limit])
    if indices.size > limit:
        shown += f", ... ({indices.size} total)"
    return f"[{shown}]"


def _resolve_knn_mode(mode: str) -> str:
    """Canonicalize the symmetrization mode (``"mutual"`` is a legacy alias)."""
    if mode == "union":
        return "union"
    if mode in ("intersection", "mutual"):
        return "intersection"
    raise ConfigurationError(
        f"mode must be 'union' or 'intersection' (legacy alias 'mutual'), "
        f"got {mode!r}"
    )


@dataclass
class SimilarityGraph:
    """A weighted similarity graph over ``n + m`` inputs.

    Attributes
    ----------
    weights:
        Symmetric non-negative ``(N, N)`` weight matrix, dense ndarray or
        scipy sparse CSR.
    kernel_name:
        Name of the kernel used to build it (``"precomputed"`` if supplied
        directly).
    bandwidth:
        Kernel bandwidth ``h`` (``nan`` for precomputed graphs).
    construction:
        One of ``"full"``, ``"knn"``, ``"epsilon"``, ``"precomputed"``.
    params:
        Extra construction parameters (``k`` for knn, ``radius`` for
        epsilon graphs).
    """

    weights: np.ndarray | sparse.csr_matrix
    kernel_name: str = "precomputed"
    bandwidth: float = float("nan")
    construction: str = "precomputed"
    params: dict = field(default_factory=dict)

    @property
    def n_vertices(self) -> int:
        return self.weights.shape[0]

    @property
    def is_sparse(self) -> bool:
        return sparse.issparse(self.weights)

    def dense_weights(self) -> np.ndarray:
        """Return the weight matrix as a dense ndarray."""
        if self.is_sparse:
            return np.asarray(self.weights.todense())
        return self.weights

    def degree(self) -> np.ndarray:
        """Vertex degrees ``d_i = sum_j w_ij`` as a 1-d array."""
        if self.is_sparse:
            return np.asarray(self.weights.sum(axis=1)).ravel()
        return self.weights.sum(axis=1)

    def edge_count(self) -> int:
        """Number of undirected edges with strictly positive weight."""
        if self.is_sparse:
            coo = self.weights.tocoo()
            off = (coo.row < coo.col) & (coo.data > 0)
            return int(np.sum(off))
        w = self.weights
        iu = np.triu_indices(w.shape[0], k=1)
        return int(np.sum(w[iu] > 0))

    @classmethod
    def from_weights(cls, weights) -> "SimilarityGraph":
        """Wrap a precomputed weight matrix after validation."""
        return cls(weights=check_weight_matrix(weights))

    def save_npz(self, path) -> "Path":
        """Persist the graph (weights + provenance) to an NPZ archive.

        Large graphs are expensive to rebuild; this stores the dense or
        sparse weights plus the construction metadata so
        :meth:`load_npz` restores an equivalent object.
        """
        from pathlib import Path

        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = json.dumps(
            {
                "kernel_name": self.kernel_name,
                "bandwidth": self.bandwidth,
                "construction": self.construction,
                "params": self.params,
            }
        )
        if self.is_sparse:
            coo = self.weights.tocoo()
            np.savez_compressed(
                path,
                format=np.array("sparse"),
                data=coo.data,
                row=coo.row,
                col=coo.col,
                shape=np.array(coo.shape),
                meta=np.array(meta),
            )
        else:
            np.savez_compressed(
                path,
                format=np.array("dense"),
                weights=self.weights,
                meta=np.array(meta),
            )
        return path

    @classmethod
    def load_npz(cls, path) -> "SimilarityGraph":
        """Restore a graph saved by :meth:`save_npz`."""
        from pathlib import Path

        import json

        from repro.exceptions import DataValidationError

        path = Path(path)
        if not path.exists():
            raise DataValidationError(f"no such file: {path}")
        with np.load(path, allow_pickle=False) as archive:
            if "format" not in archive or "meta" not in archive:
                raise DataValidationError(
                    f"{path} is not a SimilarityGraph archive"
                )
            meta = json.loads(str(archive["meta"]))
            stored = str(archive["format"])
            if stored == "sparse":
                weights = sparse.coo_matrix(
                    (archive["data"], (archive["row"], archive["col"])),
                    shape=tuple(archive["shape"]),
                ).tocsr()
            elif stored == "dense":
                weights = archive["weights"]
            else:
                raise DataValidationError(
                    f"{path} has unknown format {stored!r}"
                )
        return cls(
            weights=check_weight_matrix(weights),
            kernel_name=meta["kernel_name"],
            bandwidth=meta["bandwidth"],
            construction=meta["construction"],
            params=meta["params"],
        )


def full_kernel_graph(
    x: np.ndarray,
    *,
    kernel: RadialKernel | None = None,
    bandwidth: float,
    zero_diagonal: bool = False,
) -> SimilarityGraph:
    """The paper's dense graph: ``w_ij = K((x_i - x_j)/h)`` for all pairs.

    Parameters
    ----------
    x:
        Inputs of shape ``(N, d)`` — labeled rows first, then unlabeled.
    kernel:
        Radial kernel; defaults to the Gaussian RBF the paper uses.
    bandwidth:
        Kernel bandwidth ``h`` (the paper's ``sigma``).
    zero_diagonal:
        If true, set ``w_ii = 0``.  The paper keeps self-weights (they
        cancel in the Laplacian quadratic form but *do* enter the degree
        matrix ``D`` and hence Eq. 4/5); the default matches the paper.
    """
    kernel = kernel or GaussianKernel()
    with obs.span(
        "repro.graph.full_kernel",
        n_vertices=int(np.asarray(x).shape[0]),
        kernel=kernel.name,
        bandwidth=float(bandwidth),
    ) as span:
        weights = kernel.gram(x, bandwidth=bandwidth)
        if zero_diagonal:
            np.fill_diagonal(weights, 0.0)
        probes.record_graph_stats(span, weights)
        return SimilarityGraph(
            weights=weights,
            kernel_name=kernel.name,
            bandwidth=float(bandwidth),
            construction="full",
            params={"zero_diagonal": zero_diagonal},
        )


def _knn_dense(x, k, kernel, bandwidth, mode) -> sparse.csr_matrix:
    """Historical O(N^2) route: full kernel matrix, then prune.

    Neighbour selection uses a *stable* argsort so tied distances break
    deterministically toward the smallest vertex index — matching the
    neighbour route's tie handling (exact duplicates previously selected
    an arbitrary member of the tie set via ``argpartition``).
    """
    n = x.shape[0]
    sq = pairwise_sq_distances(x)
    weights = kernel.profile(np.sqrt(sq) / bandwidth)

    with_self_inf = sq.copy()
    np.fill_diagonal(with_self_inf, np.inf)
    neighbour_idx = np.argsort(with_self_inf, axis=1, kind="stable")[:, :k]
    selected = np.zeros((n, n), dtype=bool)
    rows = np.repeat(np.arange(n), k)
    selected[rows, neighbour_idx.ravel()] = True
    if mode == "union":
        keep = selected | selected.T
    else:
        keep = selected & selected.T
    np.fill_diagonal(keep, True)
    return sparse.csr_matrix(np.where(keep, weights, 0.0))


def _knn_neighbor_lists(x, k) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-nearest-neighbour lists with deterministic tie handling.

    Returns ``(dist, idx)`` of shape ``(n, k)``, each row sorted by
    ``(distance, index)`` and excluding the vertex itself.  ``cKDTree``
    returns an *arbitrary* member of a tie set at the query boundary
    (so a true neighbour could silently be dropped under exact
    duplicates); this queries one extra neighbour to detect boundary
    ties and re-resolves exactly the affected rows with a ball query,
    keeping the smallest-index member of every tie — the same rule as
    the dense route's stable argsort.
    """
    n = x.shape[0]
    tree = cKDTree(x)
    m = min(n, k + 2)
    dist, idx = tree.query(x, k=m)
    rows = np.arange(n)
    # Canonical (distance, index) order within the returned candidates.
    order = np.lexsort((idx, dist))
    dist = np.take_along_axis(dist, order, axis=1)
    idx = np.take_along_axis(idx, order, axis=1)

    # Drop each row's self entry (under exact duplicates it can land
    # anywhere in the tie group, or be crowded out entirely).
    is_self = idx == rows[:, None]
    has_self = is_self.any(axis=1)
    drop = np.where(has_self, np.argmax(is_self, axis=1), m - 1)
    keep = np.ones((n, m), dtype=bool)
    keep[rows, drop] = False
    candidate_idx = idx[keep].reshape(n, m - 1)
    candidate_dist = dist[keep].reshape(n, m - 1)
    neighbour_idx = np.ascontiguousarray(candidate_idx[:, :k])
    neighbour_dist = np.ascontiguousarray(candidate_dist[:, :k])

    if m - 1 > k:
        # A row is ambiguous when the first *excluded* candidate ties the
        # k-th kept distance (the tree's choice among the tied set was
        # arbitrary) or when self was crowded out of the results (a
        # >= k+2-way duplicate tie).  Those rows are re-resolved exactly.
        ambiguous = (candidate_dist[:, k] == neighbour_dist[:, k - 1]) | ~has_self
        for i in np.flatnonzero(ambiguous):
            # Inflate the radius by a few ulps: a tied point sitting
            # exactly at the k-th distance must not be rounded out of
            # the ball.
            radius = float(neighbour_dist[i, -1]) * (1.0 + 1e-9) + 1e-300
            ball = np.asarray(
                tree.query_ball_point(x[i], radius), dtype=np.intp
            )
            ball = ball[ball != i]
            if ball.size < k:  # pragma: no cover - extreme rounding
                ball = np.delete(np.arange(n, dtype=np.intp), i)
            exact = np.sqrt(
                pairwise_sq_distances(x[i : i + 1], x[ball])
            ).ravel()
            best = np.lexsort((ball, exact))[:k]
            neighbour_idx[i] = ball[best]
            neighbour_dist[i] = exact[best]
    return neighbour_dist, neighbour_idx


def _assemble_knn_csr(
    n, neighbour_idx, neighbour_dist, kernel, bandwidth, mode
) -> sparse.csr_matrix:
    """CSR weight matrix from directed neighbour lists (shared by the
    exact kd-tree route, the approximate route, and the bandwidth
    search's sparse path)."""
    k = neighbour_idx.shape[1]
    data = kernel.profile(neighbour_dist.ravel() / bandwidth)
    rows = np.repeat(np.arange(n), k)
    directed = sparse.csr_matrix(
        (data, (rows, neighbour_idx.ravel())), shape=(n, n)
    )
    # Kernel weights are symmetric functions of the (symmetric) distance,
    # so w_ij == w_ji wherever both directed edges exist: the elementwise
    # maximum keeps an edge selected by either endpoint (union) and the
    # minimum keeps only mutually-selected edges (intersection).
    if mode == "union":
        symmetric = directed.maximum(directed.T)
    else:
        symmetric = directed.minimum(directed.T)
    diagonal = sparse.diags(
        np.full(n, float(kernel.profile(np.zeros(1))[0])), format="csr"
    )
    out = (symmetric + diagonal).tocsr()
    out.eliminate_zeros()
    return out


def _validate_knn_rows(
    weights: sparse.csr_matrix, k: int, *, mode: str = "union"
) -> None:
    """Fail fast on degenerate rows instead of deep inside a solver.

    Duplicate-heavy inputs with large ``k``, overflowing coordinates, or
    compactly-supported kernels whose support excludes every neighbour
    can produce non-finite weights or vertices with no usable edges;
    both only surface later as cryptic solver errors, so they are
    rejected here with the offending vertices named.

    The zero-degree check only applies to union symmetrization: under
    ``mode="intersection"`` a vertex whose selections are never mutual
    is legitimately isolated, and connectivity is the reachability
    layer's concern (:mod:`repro.graph.components`), not this one's.
    """
    data = weights.data
    if data.size and not np.isfinite(data).all():
        counts = np.diff(weights.indptr)
        bad_rows = np.unique(
            np.repeat(np.arange(weights.shape[0]), counts)[~np.isfinite(data)]
        )
        raise DataValidationError(
            f"knn graph has non-finite weights on rows "
            f"{_format_vertices(bad_rows)}; check the kernel profile and "
            f"the input coordinates of those vertices"
        )
    if mode != "union":
        return
    off_degree = (
        np.asarray(weights.sum(axis=1)).ravel() - weights.diagonal()
    )
    isolated = np.flatnonzero(off_degree <= 0)
    if isolated.size:
        raise DataValidationError(
            f"knn graph (k={k}) left vertices {_format_vertices(isolated)} "
            f"with zero total neighbour weight (only a self-loop): every "
            f"selected neighbour got weight 0 — typically a "
            f"compactly-supported kernel whose support excludes the k-th "
            f"neighbour, or duplicate-heavy data with k too large.  "
            f"Increase the bandwidth, reduce k, or deduplicate the inputs"
        )


def _knn_neighbors(x, k, kernel, bandwidth, mode) -> sparse.csr_matrix:
    """Densification-free route: kd-tree neighbour queries straight to CSR."""
    neighbour_dist, neighbour_idx = _knn_neighbor_lists(x, k)
    return _assemble_knn_csr(
        x.shape[0], neighbour_idx, neighbour_dist, kernel, bandwidth, mode
    )


def knn_graph(
    x: np.ndarray,
    *,
    k: int,
    kernel: RadialKernel | None = None,
    bandwidth: float,
    mode: Literal["union", "intersection", "mutual"] = "union",
    construction: Literal["auto", "dense", "neighbors", "approx"] = "auto",
) -> SimilarityGraph:
    """Sparse k-nearest-neighbour graph with kernel edge weights.

    Each vertex keeps edges to its ``k`` nearest neighbours (by Euclidean
    distance).  Because "i is among j's nearest" is not symmetric, the
    directed neighbour relation must be symmetrized, and ``mode`` makes
    that choice explicit:

    * ``mode="union"`` (default) — keep edge ``{i, j}`` if *either*
      endpoint selected the other.  Every vertex keeps degree >= k, which
      preserves labeled reachability on clustered data; nnz is bounded by
      ``2 N k`` off-diagonal entries.
    * ``mode="intersection"`` (legacy alias ``"mutual"``) — keep the edge
      only if *both* endpoints selected each other.  Sparser (at most
      ``N k`` off-diagonal entries) and robust to hubs, but can isolate
      boundary vertices; nnz is bounded by ``N k``.

    Surviving edges carry the kernel weight of the full graph, and kernel
    self-weights sit on the diagonal to mirror the full graph's degree
    convention.  ``construction`` picks the dense (``O(N^2)`` memory) or
    kd-tree neighbour route (``O(N k)``, never allocating an ``(N, N)``
    array); ``"auto"`` switches to neighbours above
    :data:`DENSE_CONSTRUCTION_MAX` vertices.  Both exact routes build the
    same graph, with ties broken deterministically toward the smallest
    vertex index.  ``construction="approx"`` uses random-projection-tree
    approximate neighbour lists (:mod:`repro.graph.approx`) at the
    default recall knob — see :func:`~repro.graph.approx.approx_knn_graph`
    to tune it.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    if not 1 <= k < n:
        raise ConfigurationError(f"k must satisfy 1 <= k < n; got k={k}, n={n}")
    kernel = kernel or GaussianKernel()
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    mode = _resolve_knn_mode(mode)
    route = _resolve_construction(
        construction, n, allowed=("dense", "neighbors", "approx")
    )

    with obs.span(
        "repro.graph.knn",
        n_vertices=n,
        k=k,
        mode=mode,
        bandwidth=float(bandwidth),
        construction=route,
    ) as span:
        if route == "dense":
            sparse_weights = _knn_dense(x, k, kernel, bandwidth, mode)
        elif route == "approx":
            from repro.graph.approx import rp_tree_knn

            neighbour_dist, neighbour_idx = rp_tree_knn(x, k)
            sparse_weights = _assemble_knn_csr(
                n, neighbour_idx, neighbour_dist, kernel, bandwidth, mode
            )
        else:
            sparse_weights = _knn_neighbors(x, k, kernel, bandwidth, mode)
        _validate_knn_rows(sparse_weights, k, mode=mode)
        probes.record_graph_stats(span, sparse_weights)
        return SimilarityGraph(
            weights=sparse_weights,
            kernel_name=kernel.name,
            bandwidth=float(bandwidth),
            construction="knn",
            params={"k": k, "mode": mode, "construction": route},
        )


def _epsilon_dense(x, radius, kernel, bandwidth) -> sparse.csr_matrix:
    """Historical O(N^2) route: full kernel matrix, then prune."""
    sq = pairwise_sq_distances(x)
    weights = kernel.profile(np.sqrt(sq) / bandwidth)
    keep = sq <= radius * radius
    return sparse.csr_matrix(np.where(keep, weights, 0.0))


def _epsilon_neighbors(x, radius, kernel, bandwidth) -> sparse.csr_matrix:
    """Densification-free route: kd-tree range query straight to CSR."""
    n = x.shape[0]
    tree = cKDTree(x)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    left, right = pairs[:, 0], pairs[:, 1]
    diffs = x[left] - x[right]
    dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    edge_weights = kernel.profile(dist / bandwidth)
    self_weight = float(kernel.profile(np.zeros(1))[0])
    rows = np.concatenate([left, right, np.arange(n)])
    cols = np.concatenate([right, left, np.arange(n)])
    data = np.concatenate([edge_weights, edge_weights, np.full(n, self_weight)])
    out = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    out.eliminate_zeros()
    return out


def epsilon_graph(
    x: np.ndarray,
    *,
    radius: float,
    kernel: RadialKernel | None = None,
    bandwidth: float,
    construction: Literal["auto", "dense", "neighbors"] = "auto",
) -> SimilarityGraph:
    """Sparse epsilon-ball graph: keep edges with ``||x_i - x_j|| <= radius``.

    Equivalent to the full graph built from a kernel truncated at
    ``radius / bandwidth`` scaled radii, so for compactly-supported kernels
    with ``radius >= support_radius * bandwidth`` it equals the full graph.

    ``construction`` picks the dense route (materialize all pairwise
    distances, ``O(N^2)`` memory) or the kd-tree range-query route
    (``O(nnz)``, never allocating an ``(N, N)`` array); ``"auto"``
    switches to neighbours above :data:`DENSE_CONSTRUCTION_MAX` vertices.
    """
    x = check_matrix_2d(x, "x")
    radius = check_positive_scalar(radius, "radius")
    kernel = kernel or GaussianKernel()
    bandwidth = check_positive_scalar(bandwidth, "bandwidth")
    route = _resolve_construction(construction, int(x.shape[0]))

    with obs.span(
        "repro.graph.epsilon",
        n_vertices=int(x.shape[0]),
        radius=float(radius),
        bandwidth=float(bandwidth),
        construction=route,
    ) as span:
        if route == "dense":
            sparse_weights = _epsilon_dense(x, radius, kernel, bandwidth)
        else:
            sparse_weights = _epsilon_neighbors(x, radius, kernel, bandwidth)
        probes.record_graph_stats(span, sparse_weights)
        return SimilarityGraph(
            weights=sparse_weights,
            kernel_name=kernel.name,
            bandwidth=float(bandwidth),
            construction="epsilon",
            params={"radius": radius, "construction": route},
        )


def local_scaling_graph(
    x: np.ndarray,
    *,
    k: int = 7,
) -> SimilarityGraph:
    """Zelnik-Manor & Perona's self-tuning similarity graph.

    Replaces the single global bandwidth with a per-vertex local scale
    ``sigma_i`` = distance to the k-th nearest neighbour:

        w_ij = exp( -||x_i - x_j||^2 / (sigma_i sigma_j) ).

    Dense regions get tight kernels and sparse regions wide ones, which
    removes the bandwidth-selection problem on data whose density varies
    across clusters.  Included as a construction ablation axis; the
    paper's theory assumes a single global bandwidth.
    """
    x = check_matrix_2d(x, "x")
    n = x.shape[0]
    if not 1 <= k < n:
        raise ConfigurationError(f"k must satisfy 1 <= k < n; got k={k}, n={n}")
    sq = pairwise_sq_distances(x)
    with_self_inf = sq.copy()
    np.fill_diagonal(with_self_inf, np.inf)
    kth_sq = np.partition(with_self_inf, kth=k - 1, axis=1)[:, k - 1]
    sigma = np.sqrt(kth_sq)
    degenerate = np.flatnonzero(sigma <= 0)
    if degenerate.size:
        # sigma_i = 0 would put 0/0 = NaN on every duplicate pair and
        # collapse w_ij for the whole row — fail here, naming the rows,
        # instead of deep inside the solver.
        raise DataValidationError(
            f"local scaling (k={k}) is undefined for vertices "
            f"{_format_vertices(degenerate)}: each one's k-th nearest "
            f"neighbour is at distance 0 (at least k identical duplicates).  "
            f"Deduplicate the inputs or raise k above the duplicate count"
        )
    weights = np.exp(-sq / (sigma[:, None] * sigma[None, :]))
    return SimilarityGraph(
        weights=weights,
        kernel_name="gaussian",
        bandwidth=float("nan"),  # per-vertex scales, no single bandwidth
        construction="local_scaling",
        params={"k": k},
    )


def build_similarity_graph(
    x: np.ndarray,
    *,
    construction: Literal["full", "knn", "epsilon"] = "full",
    kernel: RadialKernel | None = None,
    bandwidth: float,
    construction_method: Literal["auto", "dense", "neighbors", "approx"] | None = None,
    **params,
) -> SimilarityGraph:
    """Dispatch to one of the graph constructions by name.

    ``params`` are forwarded (``k``/``mode`` for knn, ``radius`` for
    epsilon).  ``construction_method`` forwards to the sparsifiers'
    ``construction=`` switch (``"dense"``/``"neighbors"``/``"auto"``,
    plus ``"approx"`` for knn graphs) — the name differs only because
    ``construction`` here already selects the graph *family* — so
    estimator ``graph_params`` can pin a route, e.g.
    ``graph_params={"k": 10, "construction_method": "neighbors"}``.
    This is the single entry point the estimators use.
    """
    builders = {
        "full": full_kernel_graph,
        "knn": knn_graph,
        "epsilon": epsilon_graph,
    }
    try:
        builder = builders[construction]
    except KeyError:
        known = ", ".join(sorted(builders))
        raise ConfigurationError(
            f"unknown graph construction {construction!r}; known: {known}"
        ) from None
    if construction_method is not None:
        if construction == "full":
            raise ConfigurationError(
                "construction_method only applies to the 'knn' and "
                "'epsilon' sparsifiers; the 'full' graph is always dense"
            )
        params["construction"] = construction_method
    try:
        return builder(x, kernel=kernel, bandwidth=bandwidth, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for {construction!r} graph: {exc}"
        ) from exc
