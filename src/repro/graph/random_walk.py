"""Random-walk semantics of the hard criterion.

Zhu, Ghahramani & Lafferty's original interpretation: with binary labels,
the harmonic solution at an unlabeled vertex equals the probability that
the natural random walk on the similarity graph (transition matrix
``P = D^{-1} W``) *absorbs* at a positively-labeled vertex before a
negatively-labeled one.  More generally, with arbitrary labels, the
solution is the expected label at the absorption vertex:

    f_u = E[ Y_(absorbing vertex) | start at u ].

This module computes those absorption probabilities directly from the
walk (:func:`absorption_probabilities`), which gives an independent
implementation of the hard criterion — used by the test suite to verify
Eq. (5) against a completely different derivation.  It also exposes:

* :func:`expected_hitting_times` — mean steps for the walk to reach the
  labeled set (a locality diagnostic: vertices with large hitting times
  are the ones the "noninformative solution" critique of [17] concerns);
* :func:`effective_resistance` — the electrical-network metric of the
  graph; the hard criterion is also the voltage of the unit-resistor
  network, so resistances quantify how strongly two vertices' scores are
  coupled.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import DataValidationError
from repro.graph.components import require_labeled_reachability
from repro.graph.laplacian import laplacian
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = [
    "absorption_probabilities",
    "expected_hitting_times",
    "effective_resistance",
]


def _unlabeled_blocks(weights, n_labeled: int):
    """Return (w21, w22, degrees_unlabeled) as dense arrays."""
    weights = check_weight_matrix(weights)
    total = weights.shape[0]
    if not 0 < n_labeled < total:
        raise DataValidationError(
            f"n_labeled must be in (0, {total}), got {n_labeled}"
        )
    if sparse.issparse(weights):
        weights = np.asarray(weights.todense())
    degrees = weights.sum(axis=1)
    if np.any(degrees[n_labeled:] <= 0):
        raise DataValidationError(
            "random-walk quantities require positive unlabeled degrees"
        )
    return weights[n_labeled:, :n_labeled], weights[n_labeled:, n_labeled:], degrees[n_labeled:]


def absorption_probabilities(weights, y_labeled) -> np.ndarray:
    """Expected absorbed label of the walk started at each unlabeled vertex.

    For 0/1 labels this is the probability of absorbing at a 1-labeled
    vertex before any 0-labeled vertex.  Solves the first-step equations

        p_u = sum_{v labeled} P_uv y_v + sum_{v unlabeled} P_uv p_v,

    i.e. ``(I - P22) p = P21 y`` — the same linear system as Eq. (5) but
    reached through the Markov-chain absorption argument rather than the
    optimization.  The equality of both routes is exercised in tests.
    """
    y_labeled = check_labels(y_labeled, name="y_labeled")
    n = y_labeled.shape[0]
    require_labeled_reachability(weights, n)
    w21, w22, degrees = _unlabeled_blocks(weights, n)
    m = w22.shape[0]
    p21 = w21 / degrees[:, None]
    p22 = w22 / degrees[:, None]
    return np.linalg.solve(np.eye(m) - p22, p21 @ y_labeled)


def expected_hitting_times(weights, n_labeled: int) -> np.ndarray:
    """Expected number of steps for the walk to first reach the labeled set.

    Solves ``(I - P22) t = 1``.  Large hitting times flag unlabeled
    regions that are nearly decoupled from the labels — the regime in
    which reference [17]'s noninformative-solution warning applies.
    """
    require_labeled_reachability(weights, n_labeled)
    _, w22, degrees = _unlabeled_blocks(weights, n_labeled)
    m = w22.shape[0]
    p22 = w22 / degrees[:, None]
    return np.linalg.solve(np.eye(m) - p22, np.ones(m))


def effective_resistance(weights, pairs=None) -> np.ndarray:
    """Effective resistances of the unit-conductance electrical network.

    Parameters
    ----------
    weights:
        Connected weight matrix; edge weights are conductances.
    pairs:
        Optional iterable of ``(i, j)`` vertex pairs.  When omitted, the
        full ``(N, N)`` resistance matrix is returned.

    Notes
    -----
    Computed from the Laplacian pseudoinverse:
    ``R_ij = L+_ii + L+_jj - 2 L+_ij``.  The resistance is a metric on
    the graph; small resistance between an unlabeled vertex and a
    labeled one means the hard criterion couples them strongly.
    """
    weights = check_weight_matrix(weights)
    from repro.graph.components import is_connected

    if not is_connected(weights):
        raise DataValidationError(
            "effective resistance requires a connected graph"
        )
    lap = laplacian(weights)
    dense = np.asarray(lap.todense()) if sparse.issparse(lap) else lap
    pinv = np.linalg.pinv(dense, hermitian=True)
    diag = np.diagonal(pinv)
    if pairs is None:
        return diag[:, None] + diag[None, :] - 2.0 * pinv
    pairs = np.asarray(list(pairs), dtype=np.intp)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise DataValidationError("pairs must be an iterable of (i, j) tuples")
    return diag[pairs[:, 0]] + diag[pairs[:, 1]] - 2.0 * pinv[pairs[:, 0], pairs[:, 1]]
