"""Graph Laplacians and degree computations.

The paper uses the *unnormalized* Laplacian ``L = D - W`` (Section II).
The symmetric-normalized and random-walk variants are provided for the
local-global-consistency baseline (Zhou et al. 2004) and for spectral
diagnostics.  All functions accept dense ndarrays or scipy sparse
matrices and preserve sparsity.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
from scipy import sparse

from repro.exceptions import GraphStructureError
from repro.utils.validation import check_weight_matrix

__all__ = [
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "random_walk_laplacian",
]


def degree_vector(weights) -> np.ndarray:
    """Degrees ``d_i = sum_j w_ij`` of a validated weight matrix."""
    weights = check_weight_matrix(weights)
    if sparse.issparse(weights):
        return np.asarray(weights.sum(axis=1)).ravel()
    return weights.sum(axis=1)


def laplacian(weights):
    """Unnormalized Laplacian ``L = D - W``.

    ``L`` is symmetric positive semidefinite with zero row sums; its null
    space is spanned by the indicators of connected components.
    """
    weights = check_weight_matrix(weights)
    degrees = degree_vector(weights)
    if sparse.issparse(weights):
        return sparse.diags(degrees, format="csr") - weights
    return np.diag(degrees) - weights


def _checked_positive_degrees(weights, variant: str) -> np.ndarray:
    degrees = degree_vector(weights)
    zero = np.flatnonzero(degrees <= 0)
    if zero.size:
        raise GraphStructureError(
            f"{variant} Laplacian requires strictly positive degrees; "
            f"vertices {zero[:10].tolist()} are isolated"
        )
    return degrees


def normalized_laplacian(weights):
    """Symmetric-normalized Laplacian ``L_sym = I - D^{-1/2} W D^{-1/2}``.

    Requires all degrees strictly positive; raises
    :class:`~repro.exceptions.GraphStructureError` otherwise.
    """
    weights = check_weight_matrix(weights)
    degrees = _checked_positive_degrees(weights, "symmetric-normalized")
    inv_sqrt = 1.0 / np.sqrt(degrees)
    n = weights.shape[0]
    if sparse.issparse(weights):
        scale = sparse.diags(inv_sqrt, format="csr")
        return sparse.identity(n, format="csr") - scale @ weights @ scale
    return np.eye(n) - (inv_sqrt[:, None] * weights) * inv_sqrt[None, :]


def random_walk_laplacian(weights):
    """Random-walk Laplacian ``L_rw = I - D^{-1} W``.

    ``D^{-1} W`` is the transition matrix of the natural random walk on the
    graph; the hard criterion's solution is its harmonic extension.
    """
    weights = check_weight_matrix(weights)
    degrees = _checked_positive_degrees(weights, "random-walk")
    n = weights.shape[0]
    if sparse.issparse(weights):
        scale = sparse.diags(1.0 / degrees, format="csr")
        return sparse.identity(n, format="csr") - scale @ weights
    return np.eye(n) - weights / degrees[:, None]


def laplacian_by_name(
    weights, variant: Literal["unnormalized", "symmetric", "random_walk"] = "unnormalized"
):
    """Dispatch to a Laplacian variant by name."""
    builders = {
        "unnormalized": laplacian,
        "symmetric": normalized_laplacian,
        "random_walk": random_walk_laplacian,
    }
    if variant not in builders:
        known = ", ".join(sorted(builders))
        raise GraphStructureError(f"unknown Laplacian variant {variant!r}; known: {known}")
    return builders[variant](weights)
