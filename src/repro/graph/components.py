"""Connectivity analysis of similarity graphs.

The hard criterion is well posed only when every connected component that
contains an unlabeled vertex also contains at least one labeled vertex —
otherwise the block system ``(D22 - W22) f_u = W21 y`` is singular and
that component's scores are undetermined.  :func:`labeled_reachability`
diagnoses this and :func:`require_labeled_reachability` raises
:class:`~repro.exceptions.DisconnectedGraphError` with the offending
component.

Proposition II.2 additionally assumes the whole graph is connected
(:func:`is_connected`), which is what makes the ``lambda = inf`` solution
globally constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components as _cc

from repro.exceptions import DataValidationError, DisconnectedGraphError
from repro.utils.validation import check_weight_matrix

__all__ = [
    "connected_components",
    "is_connected",
    "labeled_reachability",
    "require_labeled_reachability",
    "ReachabilityReport",
]


def _csgraph(weights):
    """Weight matrix as a scipy.sparse graph with exact zeros dropped."""
    weights = check_weight_matrix(weights)
    if sparse.issparse(weights):
        graph = weights.copy()
        graph.eliminate_zeros()
        return graph
    return sparse.csr_matrix(weights)


def connected_components(weights) -> tuple[int, np.ndarray]:
    """Number of components and per-vertex component labels.

    Edges are pairs with strictly positive weight; weights equal to zero
    are treated as absent edges.
    """
    graph = _csgraph(weights)
    count, labels = _cc(graph, directed=False)
    return int(count), labels


def is_connected(weights) -> bool:
    """True when the positive-weight graph has a single component."""
    count, _ = connected_components(weights)
    return count <= 1


@dataclass(frozen=True)
class ReachabilityReport:
    """Outcome of the labeled-reachability check.

    Attributes
    ----------
    ok:
        True when every unlabeled vertex shares a component with at least
        one labeled vertex.
    n_components:
        Total number of connected components.
    orphan_components:
        Component labels containing unlabeled vertices but no labeled ones.
    orphan_vertices:
        Indices (into the full vertex set) of unlabeled vertices in orphan
        components.
    """

    ok: bool
    n_components: int
    orphan_components: tuple[int, ...]
    orphan_vertices: tuple[int, ...]


def labeled_reachability(weights, n_labeled: int) -> ReachabilityReport:
    """Check that every unlabeled vertex can reach a labeled vertex.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix with labeled vertices first.
    n_labeled:
        Number of labeled vertices ``n`` (the first ``n`` rows).
    """
    weights = check_weight_matrix(weights)
    total = weights.shape[0]
    if not 0 <= n_labeled <= total:
        raise DataValidationError(
            f"n_labeled must be in [0, {total}], got {n_labeled}"
        )
    count, labels = connected_components(weights)
    labeled_comps = set(labels[:n_labeled].tolist())
    unlabeled_comps = set(labels[n_labeled:].tolist())
    orphans = sorted(unlabeled_comps - labeled_comps)
    orphan_vertices = tuple(
        int(i) for i in np.flatnonzero(np.isin(labels, orphans)) if i >= n_labeled
    )
    return ReachabilityReport(
        ok=not orphans,
        n_components=count,
        orphan_components=tuple(orphans),
        orphan_vertices=orphan_vertices,
    )


def require_labeled_reachability(weights, n_labeled: int) -> None:
    """Raise :class:`DisconnectedGraphError` when the hard system is singular.

    The error message names the first few orphaned vertices so callers can
    identify the offending region of input space (typically a bandwidth
    that is too small for the sample density).
    """
    report = labeled_reachability(weights, n_labeled)
    if report.ok:
        return
    preview = report.orphan_vertices[:10]
    raise DisconnectedGraphError(
        f"{len(report.orphan_vertices)} unlabeled vertices cannot reach any "
        f"labeled vertex (first few: {list(preview)}); the hard criterion's "
        f"linear system is singular. Increase the bandwidth or add edges.",
        component_indices=report.orphan_vertices,
    )
