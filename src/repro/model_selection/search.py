"""Transductive cross-validation over criterion hyper-parameters.

In the transductive setting, cross-validating lambda means: split the
*labeled* set into folds; for each fold, treat it as unlabeled (its
labels hidden), solve the criterion on the full graph, and score the
hidden fold against its true labels.  The true unlabeled points remain
in the graph throughout — they contribute structure but never labels —
which is how a practitioner would actually tune a transductive method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.soft import solve_soft_criterion
from repro.datasets.splits import kfold_indices
from repro.exceptions import ConfigurationError, DataValidationError
from repro.metrics.regression import mean_squared_error
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = [
    "GridSearchResult",
    "cross_validate_lambda",
    "select_lambda",
    "select_bandwidth",
]


def _score_or_inf(evaluate) -> float:
    """Run one CV evaluation; degenerate candidates score ``inf``.

    A candidate can fail legitimately — e.g. a tiny bandwidth whose
    kernel weights underflow and disconnect the graph.  Grid search
    should skip such candidates, not crash.
    """
    from repro.exceptions import ReproError

    try:
        return float(evaluate())
    except ReproError:
        return float("inf")


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a 1-d hyper-parameter grid search.

    Attributes
    ----------
    grid:
        The candidate values, in evaluation order.
    scores:
        Mean CV loss (lower is better) per candidate.
    best_value:
        The grid value with the lowest loss (ties: first).
    best_score:
        Its loss.
    """

    grid: tuple[float, ...]
    scores: tuple[float, ...]
    best_value: float
    best_score: float

    def to_rows(self) -> list[list]:
        return [[value, score] for value, score in zip(self.grid, self.scores)]


def cross_validate_lambda(
    weights,
    y_labeled,
    lam: float,
    *,
    n_folds: int = 5,
    seed=None,
) -> float:
    """Mean held-out MSE of the soft criterion at one lambda.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Labels of the first ``n`` vertices.
    lam:
        Tuning parameter to evaluate (0 evaluates the hard criterion).
    n_folds:
        Folds over the labeled set.
    seed:
        Fold-shuffle seed.
    """
    weights = check_weight_matrix(weights)
    if sparse.issparse(weights):
        weights = np.asarray(weights.todense())
    y_labeled = check_labels(y_labeled, name="y_labeled")
    n = y_labeled.shape[0]
    total = weights.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    if n < n_folds:
        raise DataValidationError(
            f"need at least n_folds={n_folds} labeled points, got {n}"
        )

    losses = []
    rng = as_rng(seed)
    for fold in kfold_indices(n, n_folds, seed=rng):
        keep = np.setdiff1d(np.arange(n), fold)
        # Reorder: kept-labeled first, then [held-out fold + true unlabeled].
        order = np.concatenate([keep, fold, np.arange(n, total)])
        w_perm = weights[np.ix_(order, order)]
        fit = solve_soft_criterion(
            w_perm, y_labeled[keep], lam, check_reachability=False
        )
        held_out_scores = fit.scores[len(keep) : len(keep) + len(fold)]
        losses.append(mean_squared_error(y_labeled[fold], held_out_scores))
    return float(np.mean(losses))


def select_lambda(
    weights,
    y_labeled,
    *,
    grid: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    n_folds: int = 5,
    seed=None,
) -> GridSearchResult:
    """Pick lambda by transductive cross-validation over ``grid``.

    The grid deliberately includes 0 (the hard criterion) so the search
    can *choose not to regularize* — which, per the paper's theory, it
    usually should.
    """
    if not grid:
        raise ConfigurationError("grid must contain at least one lambda")
    if any(lam < 0 for lam in grid):
        raise ConfigurationError("lambda grid values must be >= 0")
    scores = tuple(
        _score_or_inf(
            lambda lam=lam: cross_validate_lambda(
                weights, y_labeled, lam, n_folds=n_folds, seed=seed
            )
        )
        for lam in grid
    )
    if not np.isfinite(min(scores)):
        raise ConfigurationError(
            "every lambda candidate failed cross-validation (degenerate graph?)"
        )
    best = int(np.argmin(scores))
    return GridSearchResult(
        grid=tuple(float(g) for g in grid),
        scores=scores,
        best_value=float(grid[best]),
        best_score=scores[best],
    )


def select_bandwidth(
    x_labeled,
    y_labeled,
    x_unlabeled,
    *,
    grid: tuple[float, ...],
    lam: float = 0.0,
    n_folds: int = 5,
    kernel=None,
    seed=None,
) -> GridSearchResult:
    """Pick the kernel bandwidth by transductive cross-validation.

    Rebuilds the graph per candidate bandwidth (the expensive axis) and
    scores each with :func:`cross_validate_lambda` at a fixed ``lam``.
    """
    from repro.graph.similarity import full_kernel_graph
    from repro.kernels.library import GaussianKernel
    from repro.utils.validation import check_matrix_2d

    if not grid:
        raise ConfigurationError("grid must contain at least one bandwidth")
    if any(h <= 0 for h in grid):
        raise ConfigurationError("bandwidth grid values must be > 0")
    x_labeled = check_matrix_2d(x_labeled, "x_labeled")
    x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
    kernel = kernel or GaussianKernel()
    x_all = np.vstack([x_labeled, x_unlabeled])

    scores = []
    for bandwidth in grid:
        graph = full_kernel_graph(x_all, kernel=kernel, bandwidth=bandwidth)
        scores.append(
            _score_or_inf(
                lambda: cross_validate_lambda(
                    graph.weights, y_labeled, lam, n_folds=n_folds, seed=seed
                )
            )
        )
    if not np.isfinite(min(scores)):
        raise ConfigurationError(
            "every bandwidth candidate failed cross-validation "
            "(all graphs degenerate?)"
        )
    best = int(np.argmin(scores))
    return GridSearchResult(
        grid=tuple(float(g) for g in grid),
        scores=tuple(scores),
        best_value=float(grid[best]),
        best_score=scores[best],
    )
