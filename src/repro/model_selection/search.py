"""Transductive cross-validation over criterion hyper-parameters.

In the transductive setting, cross-validating lambda means: split the
*labeled* set into folds; for each fold, treat it as unlabeled (its
labels hidden), solve the criterion on the full graph, and score the
hidden fold against its true labels.  The true unlabeled points remain
in the graph throughout — they contribute structure but never labels —
which is how a practitioner would actually tune a transductive method.

Two amortizations keep grid searches off the historical
recompute-everything path:

* :func:`cross_validate_lambda` accepts a whole lambda *grid*: folds are
  drawn once and each fold's permuted weight matrix is built once, then
  every lambda is scored against it (the permutation, not the solve, was
  the dominant per-(fold, lambda) cost on dense graphs).  With
  ``sweep_backend != "direct"`` each fold additionally gets a
  :class:`~repro.linalg.workspace.SolveWorkspace` so the solves
  themselves share factorizations along the grid.
* :func:`select_bandwidth` computes the pairwise distance matrix once
  and rescales it per candidate bandwidth instead of rebuilding kernels
  from raw points (bit-identical weights: ``profile(sqrt(sq)/h)`` either
  way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.soft import solve_soft_criterion
from repro.datasets.splits import kfold_indices
from repro.exceptions import ConfigurationError, DataValidationError, ReproError
from repro.metrics.regression import mean_squared_error
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = [
    "GridSearchResult",
    "cross_validate_lambda",
    "select_lambda",
    "select_bandwidth",
]

#: Backends accepted by the grid searches: ``"direct"`` is the historical
#: per-point solve (bit-identical to previous releases); the rest route
#: through a per-fold :class:`~repro.linalg.workspace.SolveWorkspace`.
CV_SWEEP_BACKENDS = ("direct", "exact", "factored", "spectral", "multigrid")


def _check_sweep_backend(sweep_backend: str) -> str:
    if sweep_backend not in CV_SWEEP_BACKENDS:
        raise ConfigurationError(
            f"sweep_backend must be one of {CV_SWEEP_BACKENDS}, "
            f"got {sweep_backend!r}"
        )
    return sweep_backend


def _score_or_inf(evaluate) -> float:
    """Run one CV evaluation; degenerate candidates score ``inf``.

    A candidate can fail legitimately — e.g. a tiny bandwidth whose
    kernel weights underflow and disconnect the graph.  Grid search
    should skip such candidates, not crash.
    """
    try:
        return float(evaluate())
    except ReproError:
        return float("inf")


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a 1-d hyper-parameter grid search.

    Attributes
    ----------
    grid:
        The candidate values, in evaluation order.
    scores:
        Mean CV loss (lower is better) per candidate.
    best_value:
        The grid value with the lowest loss (ties: first).
    best_score:
        Its loss.
    """

    grid: tuple[float, ...]
    scores: tuple[float, ...]
    best_value: float
    best_score: float

    def to_rows(self) -> list[list]:
        return [[value, score] for value, score in zip(self.grid, self.scores)]


def cross_validate_lambda(
    weights,
    y_labeled,
    lam,
    *,
    n_folds: int = 5,
    seed=None,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
):
    """Mean held-out MSE of the soft criterion at one lambda or a grid.

    Parameters
    ----------
    weights:
        Full ``(n+m, n+m)`` weight matrix, labeled vertices first.
    y_labeled:
        Labels of the first ``n`` vertices.
    lam:
        Tuning parameter to evaluate (0 evaluates the hard criterion), or
        a sequence of them.  A sequence is scored against *one* set of
        folds with each fold's permuted graph built once and reused
        across the grid; candidates whose solve fails score ``inf``
        instead of aborting the grid (a scalar still raises, as before).
    n_folds:
        Folds over the labeled set.
    seed:
        Fold-shuffle seed.
    sweep_backend:
        ``"direct"`` (per-point solves, the historical bit-identical
        path) or a :class:`~repro.linalg.workspace.SolveWorkspace`
        backend (``"exact"``, ``"factored"``, ``"spectral"``) built per
        fold to amortize the solves along a lambda grid.
    dtype_policy:
        Smoothing precision forwarded to each fold's workspace (only the
        multigrid backend reads it; see docs/SCALING.md).

    Returns
    -------
    float, or a tuple of floats when ``lam`` is a sequence (one mean
    loss per candidate, in grid order).
    """
    _check_sweep_backend(sweep_backend)
    scalar = np.ndim(lam) == 0
    grid = (lam,) if scalar else tuple(lam)
    if not grid:
        raise ConfigurationError("lam grid must contain at least one value")
    weights = check_weight_matrix(weights)
    if sparse.issparse(weights) and sweep_backend == "direct":
        weights = np.asarray(weights.todense())
    y_labeled = check_labels(y_labeled, name="y_labeled")
    n = y_labeled.shape[0]
    total = weights.shape[0]
    if n > total:
        raise DataValidationError(
            f"y_labeled has length {n} but the graph has only {total} vertices"
        )
    if n < n_folds:
        raise DataValidationError(
            f"need at least n_folds={n_folds} labeled points, got {n}"
        )

    losses: list[list[float]] = [[] for _ in grid]
    failed = [False] * len(grid)
    rng = as_rng(seed)
    for fold in kfold_indices(n, n_folds, seed=rng):
        keep = np.setdiff1d(np.arange(n), fold)
        # Reorder: kept-labeled first, then [held-out fold + true unlabeled].
        order = np.concatenate([keep, fold, np.arange(n, total)])
        if sparse.issparse(weights):
            w_perm = weights[order][:, order].tocsr()
        else:
            w_perm = weights[np.ix_(order, order)]
        if sweep_backend == "direct":
            workspace = None
        else:
            from repro.linalg.workspace import SolveWorkspace

            workspace = SolveWorkspace(
                w_perm, backend=sweep_backend, dtype_policy=dtype_policy
            )
        for j, lam_j in enumerate(grid):
            if failed[j]:
                continue
            try:
                if workspace is None:
                    fit = solve_soft_criterion(
                        w_perm, y_labeled[keep], lam_j, check_reachability=False
                    )
                else:
                    fit = workspace.solve_soft(y_labeled[keep], lam_j)
            except ReproError:
                if scalar:
                    raise
                failed[j] = True
                continue
            held_out_scores = fit.scores[len(keep) : len(keep) + len(fold)]
            losses[j].append(
                mean_squared_error(y_labeled[fold], held_out_scores)
            )
    scores = tuple(
        float("inf") if failed[j] else float(np.mean(losses[j]))
        for j in range(len(grid))
    )
    return scores[0] if scalar else scores


def select_lambda(
    weights,
    y_labeled,
    *,
    grid: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    n_folds: int = 5,
    seed=None,
    sweep_backend: str = "direct",
    dtype_policy: str = "float64",
) -> GridSearchResult:
    """Pick lambda by transductive cross-validation over ``grid``.

    The grid deliberately includes 0 (the hard criterion) so the search
    can *choose not to regularize* — which, per the paper's theory, it
    usually should.  The whole grid is scored in one
    :func:`cross_validate_lambda` call, so folds and each fold's permuted
    graph (and, with a workspace ``sweep_backend``, its factorizations)
    are shared across candidates.
    """
    if not grid:
        raise ConfigurationError("grid must contain at least one lambda")
    if any(lam < 0 for lam in grid):
        raise ConfigurationError("lambda grid values must be >= 0")
    _check_sweep_backend(sweep_backend)
    try:
        scores = cross_validate_lambda(
            weights,
            y_labeled,
            tuple(grid),
            n_folds=n_folds,
            seed=seed,
            sweep_backend=sweep_backend,
            dtype_policy=dtype_policy,
        )
    except ReproError:
        # Validation failures (degenerate graph, too few labels) score
        # every candidate inf, matching the historical per-candidate
        # _score_or_inf behavior.
        scores = tuple(float("inf") for _ in grid)
    if not np.isfinite(min(scores)):
        raise ConfigurationError(
            "every lambda candidate failed cross-validation (degenerate graph?)"
        )
    best = int(np.argmin(scores))
    return GridSearchResult(
        grid=tuple(float(g) for g in grid),
        scores=scores,
        best_value=float(grid[best]),
        best_score=scores[best],
    )


def _knn_candidate_weights(x_all, kernel, graph_params):
    """One neighbour-list computation, one sparse reweighting per bandwidth.

    Distances don't depend on the bandwidth, so the (exact or
    approximate) kNN lists are computed once and each candidate only
    pays a ``profile``-on-``nk``-entries rescale plus a CSR assembly —
    never an ``(N, N)`` allocation.
    """
    from repro.graph.similarity import (
        _assemble_knn_csr,
        _knn_neighbor_lists,
        _resolve_knn_mode,
        _validate_knn_rows,
    )

    params = dict(graph_params or {})
    k = int(params.pop("k", 10))
    mode = _resolve_knn_mode(params.pop("mode", "union"))
    construction = params.pop("construction", "neighbors")
    if construction == "approx":
        from repro.graph.approx import rp_tree_knn

        approx_kwargs = {
            key: params.pop(key)
            for key in ("n_trees", "leaf_size", "seed")
            if key in params
        }
        if params:
            raise ConfigurationError(
                f"unknown graph_params keys: {sorted(params)}"
            )
        neighbour_dist, neighbour_idx = rp_tree_knn(x_all, k, **approx_kwargs)
    elif construction == "neighbors":
        if params:
            raise ConfigurationError(
                f"unknown graph_params keys: {sorted(params)}"
            )
        neighbour_dist, neighbour_idx = _knn_neighbor_lists(x_all, k)
    else:
        raise ConfigurationError(
            f"graph_params construction must be 'neighbors' or 'approx', "
            f"got {construction!r}"
        )
    n = x_all.shape[0]

    def candidate_weights(bandwidth):
        weights = _assemble_knn_csr(
            n, neighbour_idx, neighbour_dist, kernel, bandwidth, mode
        )
        _validate_knn_rows(weights, k, mode=mode)
        return weights

    return candidate_weights


def select_bandwidth(
    x_labeled,
    y_labeled,
    x_unlabeled,
    *,
    grid: tuple[float, ...],
    lam: float = 0.0,
    n_folds: int = 5,
    kernel=None,
    seed=None,
    sweep_backend: str = "direct",
    graph: str = "full",
    graph_params: dict | None = None,
) -> GridSearchResult:
    """Pick the kernel bandwidth by transductive cross-validation.

    With ``graph="full"`` (the default, bit-identical to previous
    releases) the pairwise distance matrix is computed once — chunked
    past ~4M entries so no 3x-sized temporaries spike the peak memory —
    and rescaled per candidate bandwidth: the same weights as rebuilding
    the full kernel graph per candidate (``profile(sqrt(sq)/h)`` either
    way) without the repeated ``O(N^2 d)`` distance computations.

    With ``graph="knn"`` the ``(N, N)`` matrix is never materialised:
    the k-nearest-neighbour lists are computed once (exact kd-tree, or
    RP-tree approximate via ``graph_params={"construction": "approx"}``)
    and reweighted per candidate into a sparse CSR graph — this is the
    large-N route.  ``graph_params`` accepts ``k`` (default 10), ``mode``
    (``"union"``/``"intersection"``, default ``"union"``),
    ``construction`` (``"neighbors"`` exact, default, or ``"approx"``),
    and for the approximate route ``n_trees``/``leaf_size``/``seed``.
    Pair it with a workspace ``sweep_backend`` (``"exact"``,
    ``"factored"``, ``"spectral"``, ``"multigrid"``), which keep sparse
    graphs sparse; the historical ``"direct"`` backend densifies them.

    Each candidate is scored with :func:`cross_validate_lambda` at a
    fixed ``lam``.
    """
    from repro.kernels.base import pairwise_sq_distances
    from repro.kernels.library import GaussianKernel
    from repro.utils.validation import check_matrix_2d

    if not grid:
        raise ConfigurationError("grid must contain at least one bandwidth")
    if any(h <= 0 for h in grid):
        raise ConfigurationError("bandwidth grid values must be > 0")
    _check_sweep_backend(sweep_backend)
    if graph not in ("full", "knn"):
        raise ConfigurationError(
            f"graph must be 'full' or 'knn', got {graph!r}"
        )
    if graph_params is not None and graph == "full":
        raise ConfigurationError("graph_params requires graph='knn'")
    x_labeled = check_matrix_2d(x_labeled, "x_labeled")
    x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
    kernel = kernel or GaussianKernel()
    x_all = np.vstack([x_labeled, x_unlabeled])

    if graph == "knn":
        candidate_weights = _knn_candidate_weights(x_all, kernel, graph_params)
    else:
        base_radii = np.sqrt(pairwise_sq_distances(x_all))

        def candidate_weights(bandwidth):
            return kernel.profile(base_radii / bandwidth)

    scores = []
    for bandwidth in grid:
        # Construction inside the guard: a degenerate candidate (e.g. a
        # tiny bandwidth underflowing every knn weight to zero) scores
        # inf instead of crashing the whole search.
        scores.append(
            _score_or_inf(
                lambda bandwidth=bandwidth: cross_validate_lambda(
                    candidate_weights(bandwidth),
                    y_labeled,
                    lam,
                    n_folds=n_folds,
                    seed=seed,
                    sweep_backend=sweep_backend,
                )
            )
        )
    if not np.isfinite(min(scores)):
        raise ConfigurationError(
            "every bandwidth candidate failed cross-validation "
            "(all graphs degenerate?)"
        )
    best = int(np.argmin(scores))
    return GridSearchResult(
        grid=tuple(float(g) for g in grid),
        scores=tuple(scores),
        best_value=float(grid[best]),
        best_score=scores[best],
    )
