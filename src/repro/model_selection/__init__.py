"""Model selection: transductive cross-validation over lambda / bandwidth.

The paper's practical message is that the hard criterion removes the
need to tune lambda.  This subpackage provides the tuning machinery a
practitioner would otherwise reach for — k-fold transductive
cross-validation over a lambda grid or a bandwidth grid — so the claim
can be tested head-on: even the *CV-tuned* soft criterion does not beat
the untuned hard criterion (see ``bench_ablation_tuned_lambda``).
"""

from repro.model_selection.search import (
    GridSearchResult,
    cross_validate_lambda,
    select_bandwidth,
    select_lambda,
)

__all__ = [
    "GridSearchResult",
    "cross_validate_lambda",
    "select_lambda",
    "select_bandwidth",
]
