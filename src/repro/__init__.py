"""Reproduction of "On Consistency of Graph-based Semi-supervised Learning".

Du, Zhao & Wang (ICDCS 2019) study two classical graph-SSL criteria —
the *hard* criterion (harmonic functions: estimated scores clamped to the
observed labels) and the *soft* criterion (Laplacian-regularized least
squares with tuning parameter lambda) — and prove the hard criterion is
statistically consistent while the soft criterion is inconsistent for
large lambda.

This package implements both criteria from scratch with every substrate
they need (kernels, similarity graphs, Laplacians, solvers, datasets,
metrics), the Nadaraya-Watson estimator their proof links to, and a full
experiment harness regenerating each of the paper's figures.

Quickstart::

    import numpy as np
    from repro import HardLabelPropagation
    from repro.datasets import make_synthetic_dataset

    data = make_synthetic_dataset(n_labeled=200, n_unlabeled=30, seed=0)
    model = HardLabelPropagation(bandwidth="paper")
    scores = model.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
"""

from repro.core import (
    FitResult,
    GraphSSLClassifier,
    GraphSSLRegressor,
    HardLabelPropagation,
    NadarayaWatsonClassifier,
    NadarayaWatsonRegressor,
    SoftLabelPropagation,
    nadaraya_watson,
    propagate_labels,
    solve_hard_criterion,
    solve_soft_criterion,
)
from repro.exceptions import ReproError
from repro.serving import GraphSSLModel, ModelServer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "FitResult",
    "solve_hard_criterion",
    "solve_soft_criterion",
    "propagate_labels",
    "nadaraya_watson",
    "HardLabelPropagation",
    "SoftLabelPropagation",
    "GraphSSLRegressor",
    "GraphSSLClassifier",
    "NadarayaWatsonRegressor",
    "NadarayaWatsonClassifier",
    "GraphSSLModel",
    "ModelServer",
]
