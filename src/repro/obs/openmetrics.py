"""OpenMetrics text exposition for the metrics registry — and its parser.

Anything that scrapes Prometheus can scrape us: :func:`render_openmetrics`
turns a registry snapshot (or the ``metrics`` object of a
``repro.metrics/v1`` JSON dump) into the OpenMetrics text format:

* counters expose one ``<name>_total`` sample,
* gauges expose their value directly,
* reservoir :class:`~repro.obs.metrics.Histogram` metrics expose a
  ``summary`` family (``quantile``-labelled samples + ``_sum``/``_count``
  — their quantiles are reservoir estimates, which is exactly what a
  summary is for),
* :class:`~repro.obs.metrics.LogBucketHistogram` metrics expose a real
  ``histogram`` family with cumulative ``le`` buckets at the log-bucket
  upper bounds, because their buckets are exact.

:func:`parse_openmetrics` is the validating inverse — strict enough to
serve as a ``promtool``-free format lint in CI (``repro obs
lint-metrics``): it checks name syntax, TYPE-before-samples ordering,
counter monotonic-from-zero values, ``le`` cumulativity, the mandatory
``# EOF`` terminator, and label escaping, and returns the parsed
families for round-trip tests.

Registry metric names use dots (``serving.request.latency_s``); the
exposition sanitizes them to the OpenMetrics charset
(``serving_request_latency_s``) and keeps the sanitized name stable so
dashboards can rely on it.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "render_openmetrics",
    "parse_openmetrics",
    "sanitize_metric_name",
    "OpenMetricsError",
    "MetricFamily",
    "Sample",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)
#: Sample-name suffixes each family type may expose.
_ALLOWED_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "summary": ("", "_sum", "_count"),
    "histogram": ("_bucket", "_sum", "_count"),
}


class OpenMetricsError(ValueError):
    """The exposition text violates the OpenMetrics format."""


class Sample:
    """One exposition sample: name, labels, float value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


class MetricFamily:
    """One ``# TYPE`` family and the samples that follow it."""

    __slots__ = ("name", "type", "samples")

    def __init__(self, name: str, type: str):
        self.name = name
        self.type = type
        self.samples: list[Sample] = []


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name onto the OpenMetrics charset.

    Dots (the registry's namespacing convention) and any other invalid
    character become underscores; a leading digit gets a ``_`` prefix.
    The mapping is deterministic, so the exposed name is stable across
    exports.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not re.match(r"[a-zA-Z_:]", sanitized[0]):
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the OpenMetrics ABNF."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                raise OpenMetricsError(
                    f"invalid escape sequence \\{nxt} in label value"
                )
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample_line(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{escape_label_value(val)}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _render_counter(name: str, data: dict, lines: list[str]) -> None:
    lines.append(f"# TYPE {name} counter")
    lines.append(_sample_line(f"{name}_total", {}, data.get("value", 0.0)))


def _render_gauge(name: str, data: dict, lines: list[str]) -> None:
    lines.append(f"# TYPE {name} gauge")
    lines.append(_sample_line(name, {}, data.get("value", math.nan)))


def _render_summary(name: str, data: dict, lines: list[str]) -> None:
    lines.append(f"# TYPE {name} summary")
    count = int(data.get("count", 0))
    if count:
        for q_label, key in (("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99")):
            value = data.get(key)
            if value is not None and not math.isnan(float(value)):
                lines.append(_sample_line(name, {"quantile": q_label}, float(value)))
    lines.append(_sample_line(f"{name}_sum", {}, float(data.get("sum", 0.0))))
    lines.append(_sample_line(f"{name}_count", {}, count))


def _render_histogram(name: str, data: dict, lines: list[str]) -> None:
    lines.append(f"# TYPE {name} histogram")
    count = int(data.get("count", 0))
    relative_error = float(data.get("relative_error", 0.05))
    gamma = (1.0 + relative_error) / (1.0 - relative_error)
    cumulative = int(data.get("zero_count", 0))
    if cumulative:
        lines.append(_sample_line(f"{name}_bucket", {"le": "0"}, cumulative))
    buckets = data.get("buckets") or {}
    for index in sorted(int(key) for key in buckets):
        cumulative += int(buckets[str(index)])
        upper = _format_value(gamma**index)
        lines.append(_sample_line(f"{name}_bucket", {"le": upper}, cumulative))
    lines.append(_sample_line(f"{name}_bucket", {"le": "+Inf"}, count))
    lines.append(_sample_line(f"{name}_sum", {}, float(data.get("sum", 0.0))))
    lines.append(_sample_line(f"{name}_count", {}, count))


_RENDERERS = {
    "counter": _render_counter,
    "gauge": _render_gauge,
    "histogram": _render_summary,  # reservoir histogram -> summary family
    "log_histogram": _render_histogram,
}


def render_openmetrics(snapshot: dict[str, dict]) -> str:
    """Render a registry snapshot as OpenMetrics text exposition.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output or the
    ``metrics`` object of a ``repro.metrics/v1`` dump: a mapping of
    metric name to a dict carrying ``kind`` plus the kind's summary
    fields.  Unknown kinds raise ``ValueError`` (a dump from a newer
    writer should fail loudly, not silently drop series).
    """
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        data = snapshot[raw_name]
        kind = data.get("kind")
        renderer = _RENDERERS.get(kind)
        if renderer is None:
            raise ValueError(
                f"metric {raw_name!r} has unknown kind {kind!r}; cannot expose"
            )
        renderer(sanitize_metric_name(raw_name), data, lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    # Split on commas not inside quotes, walking the string once so
    # escaped quotes inside values survive.
    items: list[str] = []
    depth_quote = False
    current = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and depth_quote and i + 1 < len(text):
            current.append(ch)
            current.append(text[i + 1])
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
        elif ch == "," and not depth_quote:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if depth_quote:
        raise OpenMetricsError(f"unterminated label value in {{{text}}}")
    if current:
        items.append("".join(current))
    for item in items:
        if "=" not in item:
            raise OpenMetricsError(f"malformed label pair {item!r}")
        key, _, value = item.partition("=")
        if not _LABEL_OK.match(key):
            raise OpenMetricsError(f"invalid label name {key!r}")
        if len(value) < 2 or not (value.startswith('"') and value.endswith('"')):
            raise OpenMetricsError(f"label value for {key!r} is not quoted")
        if key in labels:
            raise OpenMetricsError(f"duplicate label name {key!r}")
        labels[key] = _unescape_label_value(value[1:-1])
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise OpenMetricsError(f"invalid sample value {text!r}") from exc


def _check_family(family: MetricFamily) -> None:
    """Per-family semantic validation once all its samples are in."""
    if family.type == "counter":
        for sample in family.samples:
            if sample.value < 0 or math.isnan(sample.value):
                raise OpenMetricsError(
                    f"counter {family.name} has non-monotonic-from-zero "
                    f"value {sample.value}"
                )
    elif family.type == "summary":
        for sample in family.samples:
            if sample.name == family.name and "quantile" in sample.labels:
                q = _parse_value(sample.labels["quantile"])
                if not 0.0 <= q <= 1.0:
                    raise OpenMetricsError(
                        f"summary {family.name} quantile {q} outside [0, 1]"
                    )
    elif family.type == "histogram":
        buckets = [
            sample
            for sample in family.samples
            if sample.name == f"{family.name}_bucket"
        ]
        if not buckets:
            raise OpenMetricsError(f"histogram {family.name} has no buckets")
        uppers = []
        counts = []
        for sample in buckets:
            if "le" not in sample.labels:
                raise OpenMetricsError(
                    f"histogram {family.name} bucket without le label"
                )
            uppers.append(_parse_value(sample.labels["le"]))
            counts.append(sample.value)
        if uppers != sorted(uppers):
            raise OpenMetricsError(
                f"histogram {family.name} le bounds are not ascending"
            )
        if counts != sorted(counts):
            raise OpenMetricsError(
                f"histogram {family.name} bucket counts are not cumulative"
            )
        if not math.isinf(uppers[-1]):
            raise OpenMetricsError(
                f"histogram {family.name} is missing the +Inf bucket"
            )
        count_samples = [
            sample.value
            for sample in family.samples
            if sample.name == f"{family.name}_count"
        ]
        if count_samples and counts[-1] != count_samples[0]:
            raise OpenMetricsError(
                f"histogram {family.name} +Inf bucket ({counts[-1]}) does "
                f"not equal _count ({count_samples[0]})"
            )


def parse_openmetrics(text: str) -> dict[str, MetricFamily]:
    """Parse and validate OpenMetrics exposition text.

    Returns ``{family_name: MetricFamily}``.  Raises
    :class:`OpenMetricsError` on format violations — this is the lint
    behind ``repro obs lint-metrics`` and the round-trip half of the
    exporter's tests.
    """
    families: dict[str, MetricFamily] = {}
    current: MetricFamily | None = None
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("exposition does not end with # EOF")
    for number, line in enumerate(lines, start=1):
        if line == "# EOF":
            if number != len(lines):
                raise OpenMetricsError(f"line {number}: content after # EOF")
            continue
        if not line.strip():
            raise OpenMetricsError(f"line {number}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise OpenMetricsError(f"line {number}: malformed comment {line!r}")
            _, keyword, name = parts[0], parts[1], parts[2]
            if not _NAME_OK.match(name):
                raise OpenMetricsError(f"line {number}: invalid metric name {name!r}")
            if keyword == "TYPE":
                family_type = parts[3] if len(parts) > 3 else ""
                if family_type not in _ALLOWED_SUFFIXES:
                    raise OpenMetricsError(
                        f"line {number}: unknown family type {family_type!r}"
                    )
                if name in families:
                    raise OpenMetricsError(
                        f"line {number}: duplicate TYPE for {name}"
                    )
                if current is not None:
                    _check_family(current)
                current = MetricFamily(name, family_type)
                families[name] = current
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise OpenMetricsError(f"line {number}: malformed sample {line!r}")
        sample_name = match.group("name")
        if current is None or not _belongs_to(sample_name, current):
            raise OpenMetricsError(
                f"line {number}: sample {sample_name!r} precedes its TYPE "
                f"declaration or belongs to no declared family"
            )
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        current.samples.append(Sample(sample_name, labels, value))
    if current is not None:
        _check_family(current)
    return families


def _belongs_to(sample_name: str, family: MetricFamily) -> bool:
    return any(
        sample_name == family.name + suffix
        for suffix in _ALLOWED_SUFFIXES[family.type]
    )
