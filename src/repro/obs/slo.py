"""Declarative serving SLOs, evaluated against metric snapshots.

A service-level objective spec is a small TOML (or JSON) document:

.. code-block:: toml

    [latency]                       # serving.request.latency_s quantiles
    p50_max_s = 0.005
    p95_max_s = 0.050
    p99_max_s = 0.250

    [errors]                        # outcome.error / (ok + error)
    max_rate = 0.01

    [throughput]                    # serving.request.throughput_qps gauge
    min_qps = 500.0

    [drift]                         # serving.drift.flag_fraction gauge
    max_flag_fraction = 0.10

``repro obs slo SPEC --metrics-dump metrics.json`` (or ``--ledger ... --run
...``) evaluates every objective against the run's metric snapshots and
exits 1 on any breach — the CI serving-smoke gate.  Every section is
optional, but an objective whose metric is *absent* from the snapshot
counts as breached: an SLO you cannot observe is not being met.

Each section accepts a ``metric`` key to point the objective at a
non-default metric name, so specs can gate bespoke histograms too.  The
TOML reader uses :mod:`tomllib` where available and falls back to a
strict subset parser (sections, ``key = number/bool/string``, comments)
so specs parse identically on every supported Python.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError

__all__ = [
    "SLOCheck",
    "SLOReport",
    "load_slo_spec",
    "parse_toml_subset",
    "evaluate_slo",
    "DEFAULT_METRICS",
]

#: Default metric each objective section reads.
DEFAULT_METRICS = {
    "latency": "serving.request.latency_s",
    "errors.ok": "serving.request.outcome.ok",
    "errors.error": "serving.request.outcome.error",
    "throughput": "serving.request.throughput_qps",
    "drift": "serving.drift.flag_fraction",
}

_SECTION_KEYS = {
    "latency": {"metric", "p50_max_s", "p95_max_s", "p99_max_s"},
    "errors": {"ok_metric", "error_metric", "max_rate"},
    "throughput": {"metric", "min_qps"},
    "drift": {"metric", "max_flag_fraction"},
}


@dataclass(frozen=True)
class SLOCheck:
    """One evaluated objective: target vs. observed."""

    objective: str
    metric: str
    target: float
    observed: float | None
    ok: bool
    detail: str = ""


@dataclass
class SLOReport:
    """Every check of one spec evaluation."""

    checks: list[SLOCheck] = field(default_factory=list)

    @property
    def breached(self) -> bool:
        return any(not check.ok for check in self.checks)

    @property
    def breaches(self) -> list[SLOCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        if not self.checks:
            return "SLO spec contains no objectives"
        lines = []
        for check in self.checks:
            status = "ok    " if check.ok else "BREACH"
            observed = (
                "absent" if check.observed is None else f"{check.observed:.6g}"
            )
            line = (
                f"{status} {check.objective:<22} {check.metric:<34} "
                f"observed={observed} target={check.target:.6g}"
            )
            if check.detail:
                line += f"  ({check.detail})"
            lines.append(line)
        verdict = "BREACHED" if self.breached else "met"
        lines.append(
            f"{len(self.checks)} objective(s), "
            f"{len(self.breaches)} breached -> SLO {verdict}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------- parsing


def parse_toml_subset(text: str, *, source: str = "<spec>") -> dict:
    """Parse the TOML subset SLO specs use: ``[section]`` + scalar keys.

    Values may be numbers, booleans, or double-quoted strings; ``#``
    starts a comment.  This exists because the oldest supported Python
    lacks :mod:`tomllib`; where tomllib is available,
    :func:`load_slo_spec` prefers it.
    """
    data: dict[str, dict] = {}
    section: dict | None = None
    for number, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ConfigurationError(
                    f"{source}:{number}: malformed section header {line!r}"
                )
            name = line[1:-1].strip()
            if not name or "[" in name or "]" in name:
                raise ConfigurationError(
                    f"{source}:{number}: malformed section name {line!r}"
                )
            section = data.setdefault(name, {})
            continue
        if "=" not in line:
            raise ConfigurationError(
                f"{source}:{number}: expected 'key = value', got {line!r}"
            )
        if section is None:
            raise ConfigurationError(
                f"{source}:{number}: key outside any [section]"
            )
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if value.startswith('"'):
            end = value.find('"', 1)
            if end < 0:
                raise ConfigurationError(
                    f"{source}:{number}: unterminated string for {key!r}"
                )
            trailing = value[end + 1 :].strip()
            if trailing and not trailing.startswith("#"):
                raise ConfigurationError(
                    f"{source}:{number}: unexpected content after string "
                    f"for {key!r}: {trailing!r}"
                )
            section[key] = value[1:end]
            continue
        value = value.split("#", 1)[0].strip()
        if value in ("true", "false"):
            section[key] = value == "true"
        else:
            try:
                section[key] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"{source}:{number}: value for {key!r} is not a number, "
                    f"bool, or quoted string: {value!r}"
                ) from None
    return data


def load_slo_spec(path) -> dict:
    """Load and structurally validate an SLO spec (TOML or JSON).

    ``.json`` files parse as JSON; everything else goes through tomllib
    (when available) or the subset parser.  Unknown sections or keys
    raise :class:`ConfigurationError` — a typo in a spec must not
    silently weaken the gate.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read SLO spec {path}: {exc}") from exc
    if path.suffix == ".json":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    else:
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 CI path
            spec = parse_toml_subset(text, source=str(path))
        else:
            try:
                spec = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(
                    f"{path} is not valid TOML: {exc}"
                ) from exc
    if not isinstance(spec, dict):
        raise ConfigurationError(f"SLO spec {path} must be a table of sections")
    for section, keys in spec.items():
        if section not in _SECTION_KEYS:
            raise ConfigurationError(
                f"SLO spec {path}: unknown section [{section}]; known: "
                f"{sorted(_SECTION_KEYS)}"
            )
        if not isinstance(keys, dict):
            raise ConfigurationError(
                f"SLO spec {path}: [{section}] must be a table"
            )
        unknown = set(keys) - _SECTION_KEYS[section]
        if unknown:
            raise ConfigurationError(
                f"SLO spec {path}: unknown key(s) {sorted(unknown)} in "
                f"[{section}]; known: {sorted(_SECTION_KEYS[section])}"
            )
    if not spec:
        raise ConfigurationError(f"SLO spec {path} defines no objectives")
    return spec


# -------------------------------------------------------------- evaluation


def _numeric(snapshot, key: str) -> float | None:
    if not isinstance(snapshot, dict):
        return None
    value = snapshot.get(key)
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value


def _check_latency(spec: dict, metrics: dict, checks: list[SLOCheck]) -> None:
    metric = spec.get("metric", DEFAULT_METRICS["latency"])
    snapshot = metrics.get(metric)
    for key, quantile in (("p50_max_s", "p50"), ("p95_max_s", "p95"), ("p99_max_s", "p99")):
        if key not in spec:
            continue
        target = float(spec[key])
        observed = _numeric(snapshot, quantile)
        checks.append(
            SLOCheck(
                objective=f"latency.{quantile}",
                metric=metric,
                target=target,
                observed=observed,
                ok=observed is not None and observed <= target,
                detail="" if observed is not None else "metric absent from snapshot",
            )
        )


def _check_errors(spec: dict, metrics: dict, checks: list[SLOCheck]) -> None:
    if "max_rate" not in spec:
        return
    ok_metric = spec.get("ok_metric", DEFAULT_METRICS["errors.ok"])
    error_metric = spec.get("error_metric", DEFAULT_METRICS["errors.error"])
    target = float(spec["max_rate"])
    n_ok = _numeric(metrics.get(ok_metric), "value")
    n_error = _numeric(metrics.get(error_metric), "value")
    if n_ok is None and n_error is None:
        checks.append(
            SLOCheck(
                objective="errors.rate",
                metric=error_metric,
                target=target,
                observed=None,
                ok=False,
                detail="no request outcomes in snapshot",
            )
        )
        return
    # A missing error counter with traffic present means zero errors —
    # counters are created on first increment.
    n_ok = n_ok or 0.0
    n_error = n_error or 0.0
    total = n_ok + n_error
    rate = n_error / total if total else 0.0
    checks.append(
        SLOCheck(
            objective="errors.rate",
            metric=error_metric,
            target=target,
            observed=rate,
            ok=rate <= target,
            detail=f"{int(n_error)} of {int(total)} requests",
        )
    )


def _check_threshold(
    spec: dict,
    metrics: dict,
    checks: list[SLOCheck],
    *,
    section: str,
    key: str,
    objective: str,
    minimum: bool,
) -> None:
    if key not in spec:
        return
    metric = spec.get("metric", DEFAULT_METRICS[section])
    target = float(spec[key])
    observed = _numeric(metrics.get(metric), "value")
    if observed is None:
        ok = False
        detail = "metric absent from snapshot"
    else:
        ok = observed >= target if minimum else observed <= target
        detail = ""
    checks.append(
        SLOCheck(
            objective=objective,
            metric=metric,
            target=target,
            observed=observed,
            ok=ok,
            detail=detail,
        )
    )


def evaluate_slo(spec: dict, metrics: dict[str, dict]) -> SLOReport:
    """Evaluate a loaded spec against ``{name: snapshot}`` metrics.

    ``metrics`` is the ``metrics`` object of a ``repro.metrics/v1`` dump,
    :meth:`MetricsRegistry.snapshot` output, or
    :meth:`RunLedger.metric_values` — all the same shape.
    """
    report = SLOReport()
    if "latency" in spec:
        _check_latency(spec["latency"], metrics, report.checks)
    if "errors" in spec:
        _check_errors(spec["errors"], metrics, report.checks)
    if "throughput" in spec:
        _check_threshold(
            spec["throughput"],
            metrics,
            report.checks,
            section="throughput",
            key="min_qps",
            objective="throughput.qps",
            minimum=True,
        )
    if "drift" in spec:
        _check_threshold(
            spec["drift"],
            metrics,
            report.checks,
            section="drift",
            key="max_flag_fraction",
            objective="drift.flag_fraction",
            minimum=False,
        )
    return report
