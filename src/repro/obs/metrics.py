"""Counters, gauges, and histograms with an injectable registry.

The default registry is process-global (:func:`get_registry`) so library
code can record without plumbing a registry argument through every call;
tests inject a fresh :class:`MetricsRegistry` via :func:`use_registry` to
stay isolated from each other.  Recording is cheap — a dict lookup plus a
float update — so instrumented paths record unconditionally.

    from repro import obs

    registry = obs.get_registry()
    registry.counter("solves.hard").inc()
    registry.histogram("solver.cg.iterations").observe(42)
"""

from __future__ import annotations

import math
import random
import zlib
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogBucketHistogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]


class Counter:
    """Monotonically increasing count (events, dropped samples, ...)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def to_state(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_state(self, state: dict) -> None:
        self.inc(float(state.get("value", 0.0)))


class Gauge:
    """Last-written value (current problem size, active lambda, ...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}

    def to_state(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_state(self, state: dict) -> None:
        value = float(state.get("value", math.nan))
        if not math.isnan(value):
            self.value = value


class Histogram:
    """Streaming distribution summary plus retained samples.

    Tracks count/sum/min/max in O(1) per observation and retains up to
    ``max_samples`` raw values (older samples are overwritten ring-buffer
    style beyond that, keeping memory bounded in long-running processes)
    so :meth:`quantile` can answer p50/p90-style questions.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples", "max_samples")

    kind = "histogram"

    def __init__(self, name: str, *, max_samples: int = 8192):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            self.samples[self.count % self.max_samples] = value
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_state(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's full state into this one.

        count/sum/min/max merge exactly.  Retained samples are pooled
        and, when the pool exceeds ``max_samples``, subsampled *weighted
        by the observation count each retained sample stands for* —
        a state whose buffer summarizes 10x the observations keeps 10x
        the representation, so merged quantiles stay unbiased even when
        the two sides are badly imbalanced.  The subsample is drawn with
        a deterministic RNG seeded by the metric name, so merging the
        same worker states always produces the same buffer.
        """
        count = int(state.get("count", 0))
        if count == 0:
            return
        incoming = [float(value) for value in state.get("samples", ())]
        own = len(self.samples)
        # Per-sample observation weights, computed before the counters
        # merge: each retained sample stands for count/len(samples)
        # observations of its side.
        own_weight = (self.count / own) if own else 0.0
        incoming_weight = (count / len(incoming)) if incoming else 0.0
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.min = min(self.min, float(state.get("min", math.inf)))
        self.max = max(self.max, float(state.get("max", -math.inf)))
        pool = self.samples + incoming
        if len(pool) <= self.max_samples:
            self.samples = pool
            return
        # Weighted subsample without replacement (Efraimidis-Spirakis
        # exponential keys), deterministic per metric name.
        weights = [own_weight] * own + [incoming_weight] * len(incoming)
        rng = random.Random(zlib.crc32(self.name.encode("utf-8")))
        keyed = []
        for position, weight in enumerate(weights):
            u = rng.random()
            key = u ** (1.0 / weight) if weight > 0 else -1.0
            keyed.append((key, position))
        keyed.sort(reverse=True)
        keep = sorted(position for _, position in keyed[: self.max_samples])
        self.samples = [pool[position] for position in keep]


class LogBucketHistogram:
    """Log-bucketed distribution with relative-error-bounded quantiles.

    The reservoir :class:`Histogram` keeps raw samples, which is right
    for *value* metrics (RMSE, iteration counts) but wrong for
    per-request latency: a long-lived server observes millions of
    latencies, and subsampled quantiles drift.  This histogram instead
    counts observations into geometric buckets — bucket ``i`` covers
    ``(gamma^(i-1), gamma^i]`` with ``gamma = (1 + a) / (1 - a)`` for
    the configured relative accuracy ``a`` — so:

    * memory is bounded by the *dynamic range* of the values, never the
      observation count (~490 buckets span 1 ns to 10^12 s at the
      default 5% accuracy);
    * :meth:`quantile` answers with guaranteed relative error ``<= a``:
      the estimate for a bucket is ``2 * gamma^i / (gamma + 1)``, whose
      worst-case relative deviation from any true value in the bucket is
      exactly ``a``;
    * :meth:`merge_state` is *exact* — bucket counts add — so grafting
      worker registries (:meth:`MetricsRegistry.merge_state`) loses
      nothing, unlike reservoir merging.

    Non-positive observations (a clock that went backwards, a zero-cost
    path) land in a dedicated zero bucket reported as ``0.0``.
    """

    __slots__ = (
        "name",
        "relative_error",
        "count",
        "total",
        "min",
        "max",
        "zero_count",
        "_buckets",
        "_log_gamma",
        "_pending",
        "_n_pending",
    )

    kind = "log_histogram"

    #: Default quantile relative-error bound (see class docstring).
    DEFAULT_RELATIVE_ERROR = 0.05

    #: Bucket indexes are clamped to this range so adversarial values
    #: (denormals, 1e300) cannot grow the table without bound.
    MIN_INDEX = -1000
    MAX_INDEX = 1000

    #: Deferred-bucketing buffer cap (values, not bytes): batches queue
    #: here and fold into buckets in one vectorized pass once the pool
    #: reaches this size (or on any read), so memory stays bounded while
    #: the serving hot path pays only the exact scalar aggregates.
    PENDING_LIMIT = 8192

    def __init__(self, name: str, *, relative_error: float | None = None):
        if relative_error is None:
            relative_error = self.DEFAULT_RELATIVE_ERROR
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.name = name
        self.relative_error = float(relative_error)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zero_count = 0
        self._buckets: dict[int, int] = {}
        self._log_gamma = math.log(self.gamma)
        self._pending: list = []
        self._n_pending = 0

    @property
    def gamma(self) -> float:
        return (1.0 + self.relative_error) / (1.0 - self.relative_error)

    @property
    def buckets(self) -> dict[int, int]:
        """The bucket table, with any deferred batches folded in."""
        self._drain()
        return self._buckets

    def _index(self, value: float) -> int:
        index = math.ceil(math.log(value) / self._log_gamma)
        return min(self.MAX_INDEX, max(self.MIN_INDEX, index))

    def _representative(self, index: int) -> float:
        gamma = self.gamma
        return 2.0 * gamma**index / (gamma + 1.0)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0 or not math.isfinite(value):
            self.zero_count += 1
            return
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def observe_many(self, values) -> None:
        """Vectorized :meth:`observe` for a whole batch of values.

        This is the serving hot path, so the expensive part — log,
        clamp, unique, dict updates — is *deferred*: only the exact
        scalar aggregates (count/sum/min/max/zero) are paid here, and
        the batch queues for one big vectorized bucketing pass at the
        next read (or when :data:`PENDING_LIMIT` values accumulate).
        Every query method drains first, so deferral is unobservable.
        """
        import numpy as np

        raw = values
        values = np.asarray(raw, dtype=np.float64)
        if values.ndim != 1:
            values = values.ravel()
        n = int(values.size)
        if n == 0:
            return
        self.count += n
        total = float(values.sum())
        self.total += total
        vmin = float(values.min())
        vmax = float(values.max())
        if vmin < self.min:
            self.min = vmin
        if vmax > self.max:
            self.max = vmax
        if vmin > 0.0 and math.isfinite(total):
            # All-positive fast path (the serving case).  Copy when the
            # buffer would alias caller memory that may mutate before
            # the deferred drain runs.
            positive = values.copy() if values is raw or values.base is not None else values
        else:
            positive = values[(values > 0.0) & np.isfinite(values)]
            self.zero_count += n - int(positive.size)
            if positive.size == 0:
                return
        self._pending.append(positive)
        self._n_pending += int(positive.size)
        if self._n_pending >= self.PENDING_LIMIT:
            self._drain()

    def _drain(self) -> None:
        """Fold every queued batch into the bucket table (vectorized)."""
        if not self._pending:
            return
        import numpy as np

        if len(self._pending) == 1:
            positive = self._pending[0]
        else:
            positive = np.concatenate(self._pending)
        self._pending.clear()
        self._n_pending = 0
        indexes = np.ceil(np.log(positive) / self._log_gamma).astype(np.int64)
        np.clip(indexes, self.MIN_INDEX, self.MAX_INDEX, out=indexes)
        unique, counts = np.unique(indexes, return_counts=True)
        buckets = self._buckets
        for index, bucket_count in zip(unique.tolist(), counts.tolist()):
            buckets[index] = buckets.get(index, 0) + bucket_count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, within ``relative_error`` of exact.

        Uses the same nearest-rank convention as sorting the raw
        observations and taking ``sorted[ceil(q * count) - 1]``; the
        returned value is the flagged bucket's representative, which is
        within the documented relative error of that exact observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return self._representative(index)
        return self.max  # only reachable through float edge cases

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` per occupied bucket, ascending.

        The zero bucket (when occupied) is reported first with an upper
        bound of ``0.0`` — this feeds the OpenMetrics exposition's
        cumulative ``le`` series.
        """
        bounds = []
        if self.zero_count:
            bounds.append((0.0, self.zero_count))
        gamma = self.gamma
        for index in sorted(self.buckets):
            bounds.append((gamma**index, self.buckets[index]))
        return bounds

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "relative_error": self.relative_error,
            "zero_count": self.zero_count,
            # JSON object keys must be strings; ingesting code converts
            # back with int().
            "buckets": {str(index): count for index, count in sorted(self.buckets.items())},
        }

    def to_state(self) -> dict:
        return {
            "kind": self.kind,
            "relative_error": self.relative_error,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "zero_count": self.zero_count,
            "buckets": {str(index): count for index, count in self.buckets.items()},
        }

    def merge_state(self, state: dict) -> None:
        """Fold another log-bucket histogram's state in — exactly.

        Bucket counts add, so cross-process grafting via
        :meth:`MetricsRegistry.merge_state` preserves every quantile
        guarantee.  Merging states recorded at a different
        ``relative_error`` raises: their buckets are incommensurable.
        """
        other_error = float(state.get("relative_error", self.relative_error))
        if not math.isclose(other_error, self.relative_error):
            raise ValueError(
                f"log histogram {self.name!r} uses relative_error="
                f"{self.relative_error}, cannot merge state recorded at "
                f"{other_error}"
            )
        count = int(state.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.min = min(self.min, float(state.get("min", math.inf)))
        self.max = max(self.max, float(state.get("max", -math.inf)))
        self.zero_count += int(state.get("zero_count", 0))
        for key, bucket_count in (state.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(bucket_count)


class MetricsRegistry:
    """Get-or-create home for named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind is a bug and raises.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram | LogBucketHistogram] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def log_histogram(self, name: str) -> LogBucketHistogram:
        return self._get_or_create(name, LogBucketHistogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """``{name: {"kind": ..., **metric summary}}`` for every metric."""
        return {
            name: {"kind": metric.kind, **metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def to_state(self) -> dict[str, dict]:
        """Full-fidelity, mergeable dump of every metric.

        Unlike :meth:`snapshot` (a human-facing summary), the state dump
        round-trips through :meth:`merge_state`: counters keep their
        totals, gauges their last value, histograms their exact
        count/sum/min/max plus retained samples.  This is how worker
        processes ship their metric deltas back to the parent registry.
        """
        return {name: metric.to_state() for name, metric in self._metrics.items()}

    def merge_state(self, state: dict[str, dict]) -> None:
        """Fold a :meth:`to_state` dump (e.g. from a worker) into this registry.

        Counters add, gauges take the incoming value (last write wins,
        matching their single-process semantics), histograms merge their
        summaries exactly and their retained samples up to the cap.
        Merging a name that exists here under a different kind raises
        ``TypeError``, same as mixed-kind access does.
        """
        kinds = {
            cls.kind: cls for cls in (Counter, Gauge, Histogram, LogBucketHistogram)
        }
        for name, metric_state in state.items():
            cls = kinds.get(metric_state.get("kind"))
            if cls is None:
                raise ValueError(
                    f"metric {name!r} has unknown kind {metric_state.get('kind')!r}"
                )
            self._get_or_create(name, cls).merge_state(metric_state)

    def as_rows(self) -> list[list]:
        """``[name, kind, summary]`` rows for table rendering."""
        rows = []
        for name, data in self.snapshot().items():
            kind = data.pop("kind")
            summary = ", ".join(f"{k}={_fmt(v)}" for k, v in data.items())
            rows.append([name, kind, summary])
        return rows


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value)) if isinstance(value, float) and math.isfinite(value) else str(value)


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> None:
    """Install ``registry`` as the process-global default."""
    global _DEFAULT
    _DEFAULT = registry


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily install a registry (a fresh one by default).

    The previous registry is restored on exit, so tests never leak
    metrics into each other through the global default.
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = _DEFAULT
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
