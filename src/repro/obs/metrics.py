"""Counters, gauges, and histograms with an injectable registry.

The default registry is process-global (:func:`get_registry`) so library
code can record without plumbing a registry argument through every call;
tests inject a fresh :class:`MetricsRegistry` via :func:`use_registry` to
stay isolated from each other.  Recording is cheap — a dict lookup plus a
float update — so instrumented paths record unconditionally.

    from repro import obs

    registry = obs.get_registry()
    registry.counter("solves.hard").inc()
    registry.histogram("solver.cg.iterations").observe(42)
"""

from __future__ import annotations

import math
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]


class Counter:
    """Monotonically increasing count (events, dropped samples, ...)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def to_state(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_state(self, state: dict) -> None:
        self.inc(float(state.get("value", 0.0)))


class Gauge:
    """Last-written value (current problem size, active lambda, ...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}

    def to_state(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_state(self, state: dict) -> None:
        value = float(state.get("value", math.nan))
        if not math.isnan(value):
            self.value = value


class Histogram:
    """Streaming distribution summary plus retained samples.

    Tracks count/sum/min/max in O(1) per observation and retains up to
    ``max_samples`` raw values (older samples are overwritten ring-buffer
    style beyond that, keeping memory bounded in long-running processes)
    so :meth:`quantile` can answer p50/p90-style questions.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples", "max_samples")

    kind = "histogram"

    def __init__(self, name: str, *, max_samples: int = 8192):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            self.samples[self.count % self.max_samples] = value
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
        }

    def to_state(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's full state into this one.

        count/sum/min/max merge exactly; retained samples are appended
        up to ``max_samples`` (beyond the cap quantiles are approximate,
        just as with the ring-buffer overwrite on the hot path).
        """
        count = int(state.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.min = min(self.min, float(state.get("min", math.inf)))
        self.max = max(self.max, float(state.get("max", -math.inf)))
        for value in state.get("samples", ()):
            if len(self.samples) < self.max_samples:
                self.samples.append(float(value))


class MetricsRegistry:
    """Get-or-create home for named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind is a bug and raises.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """``{name: {"kind": ..., **metric summary}}`` for every metric."""
        return {
            name: {"kind": metric.kind, **metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def to_state(self) -> dict[str, dict]:
        """Full-fidelity, mergeable dump of every metric.

        Unlike :meth:`snapshot` (a human-facing summary), the state dump
        round-trips through :meth:`merge_state`: counters keep their
        totals, gauges their last value, histograms their exact
        count/sum/min/max plus retained samples.  This is how worker
        processes ship their metric deltas back to the parent registry.
        """
        return {name: metric.to_state() for name, metric in self._metrics.items()}

    def merge_state(self, state: dict[str, dict]) -> None:
        """Fold a :meth:`to_state` dump (e.g. from a worker) into this registry.

        Counters add, gauges take the incoming value (last write wins,
        matching their single-process semantics), histograms merge their
        summaries exactly and their retained samples up to the cap.
        Merging a name that exists here under a different kind raises
        ``TypeError``, same as mixed-kind access does.
        """
        kinds = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}
        for name, metric_state in state.items():
            cls = kinds.get(metric_state.get("kind"))
            if cls is None:
                raise ValueError(
                    f"metric {name!r} has unknown kind {metric_state.get('kind')!r}"
                )
            self._get_or_create(name, cls).merge_state(metric_state)

    def as_rows(self) -> list[list]:
        """``[name, kind, summary]`` rows for table rendering."""
        rows = []
        for name, data in self.snapshot().items():
            kind = data.pop("kind")
            summary = ", ".join(f"{k}={_fmt(v)}" for k, v in data.items())
            rows.append([name, kind, summary])
        return rows


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value)) if isinstance(value, float) and math.isfinite(value) else str(value)


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> None:
    """Install ``registry`` as the process-global default."""
    global _DEFAULT
    _DEFAULT = registry


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily install a registry (a fresh one by default).

    The previous registry is restored on exit, so tests never leak
    metrics into each other through the global default.
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = _DEFAULT
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
