"""Multi-run benchmark trend analysis: history series and a sustained gate.

Pairwise :func:`~repro.obs.bench.compare_runs` answers "did this commit
regress against that one"; this module answers the longitudinal
questions once the run ledger holds N runs:

* :func:`history_series` — one benchmark's time-ordered trajectory
  across every run that measured it, each point carrying the noise-aware
  stats a :class:`~repro.obs.bench.BenchRecord` stores (min / median /
  mean over repeats, peak memory, solver health) plus run provenance
  (git sha, environment digest).
* :func:`trend_runs` — the generalized regression gate behind
  ``python -m repro obs trend``.  A benchmark is in **sustained
  regression** when its last ``sustain`` gate-eligible measurements
  *all* exceed ``(1 + threshold) ×`` the best earlier measurement: one
  noisy run cannot trip the gate (that is what ``sustain >= 2`` buys
  over pairwise comparison), and the baseline being the *best* prior
  min makes the gate monotone — a slow creep across many runs is caught
  even though no adjacent pair regresses.

Gate eligibility follows the same rule as the pairwise compare: a
measurement with fewer than ``min_repeats`` timing samples is shown but
never gates, because a single sample cannot separate a regression from
scheduler noise.  Everything here is a pure function of the loaded run
dicts, so the gate is reproducible from the ledger alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.bench import BenchRecord

__all__ = [
    "HistoryPoint",
    "TrendEntry",
    "TrendReport",
    "history_series",
    "trend_runs",
    "render_history",
    "render_trend_report",
]


@dataclass(frozen=True)
class HistoryPoint:
    """One benchmark measurement inside one run."""

    run_id: str
    created_unix: float
    git_sha: str | None
    env_digest: str | None
    record: BenchRecord


@dataclass(frozen=True)
class TrendEntry:
    """One benchmark's verdict over the run series.

    ``status`` is ``"regression"`` (sustained), ``"ok"``, or
    ``"informational"`` (not enough gate-eligible history, or non-finite
    timings).  ``ratio`` is latest-vs-baseline.
    """

    name: str
    n_runs: int
    n_gating: int
    baseline_min_s: float
    latest_min_s: float
    ratio: float
    status: str


@dataclass
class TrendReport:
    """The full multi-run verdict :func:`trend_runs` produces."""

    threshold: float
    min_repeats: int
    sustain: int
    entries: list[TrendEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendEntry]:
        return [entry for entry in self.entries if entry.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _ordered_runs(runs) -> list[dict]:
    return sorted(runs, key=lambda run: float(run.get("created_unix", 0.0)))


def history_series(runs, name: str) -> list[HistoryPoint]:
    """``name``'s time-ordered measurements across the given run dicts."""
    from repro.obs.environment import fingerprint_digest

    points = []
    for run in _ordered_runs(runs):
        for data in run.get("benchmarks", ()):
            if data.get("name") != name:
                continue
            record = BenchRecord.from_dict(data)
            environment = record.environment or run.get("environment") or {}
            points.append(
                HistoryPoint(
                    run_id=str(run.get("run_id", "?")),
                    created_unix=float(
                        data.get("created_unix") or run.get("created_unix") or 0.0
                    ),
                    git_sha=environment.get("git_sha"),
                    env_digest=fingerprint_digest(environment) if environment else None,
                    record=record,
                )
            )
    points.sort(key=lambda point: point.created_unix)
    return points


def trend_runs(runs, *, threshold: float = 0.15, min_repeats: int = 3,
               sustain: int = 2) -> TrendReport:
    """Judge every benchmark's series for sustained regression.

    Parameters mirror :func:`~repro.obs.bench.compare_runs`; ``sustain``
    is how many consecutive latest measurements must all regress against
    the best earlier one before the gate trips.  A benchmark needs at
    least ``sustain + 1`` gate-eligible measurements to be judged at all;
    with fewer its entry is ``informational``.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if min_repeats < 1:
        raise ValueError(f"min_repeats must be >= 1, got {min_repeats}")
    if sustain < 1:
        raise ValueError(f"sustain must be >= 1, got {sustain}")
    ordered = _ordered_runs(runs)
    names = sorted(
        {data.get("name") for run in ordered for data in run.get("benchmarks", ())}
        - {None}
    )
    report = TrendReport(threshold=threshold, min_repeats=min_repeats, sustain=sustain)
    for name in names:
        points = history_series(ordered, name)
        eligible = [
            p for p in points
            if p.record.repeats >= min_repeats
            and math.isfinite(p.record.min_s)
            and p.record.min_s > 0
        ]
        latest_min = points[-1].record.min_s if points else math.nan
        if len(eligible) < sustain + 1:
            report.entries.append(
                TrendEntry(
                    name=name,
                    n_runs=len(points),
                    n_gating=len(eligible),
                    baseline_min_s=math.nan,
                    latest_min_s=latest_min,
                    ratio=math.nan,
                    status="informational",
                )
            )
            continue
        window = eligible[-sustain:]
        baseline = min(p.record.min_s for p in eligible[:-sustain])
        ratio = window[-1].record.min_s / baseline
        limit = baseline * (1.0 + threshold)
        sustained = all(p.record.min_s > limit for p in window)
        report.entries.append(
            TrendEntry(
                name=name,
                n_runs=len(points),
                n_gating=len(eligible),
                baseline_min_s=baseline,
                latest_min_s=window[-1].record.min_s,
                ratio=ratio,
                status="regression" if sustained else "ok",
            )
        )
    return report


def _fmt_ms(seconds: float) -> str:
    if seconds != seconds:
        return "-"
    return f"{seconds * 1e3:.4g}ms"


def render_history(name: str, points) -> str:
    """Aligned trajectory table for ``repro obs history <bench>``."""
    from repro.experiments.report import ascii_table

    if not points:
        return f"no history for benchmark {name!r}"
    rows = []
    for point in points:
        record = point.record
        peak = record.memory.get("peak_bytes")
        rows.append(
            [
                point.run_id,
                str(point.git_sha or "-")[:12],
                str(point.env_digest or "-"),
                record.repeats,
                _fmt_ms(record.min_s),
                _fmt_ms(record.median_s),
                _fmt_ms(record.mean_s),
                "-" if peak is None else f"{peak / 1e6:.2f}",
                record.solver_health.get("solves", 0),
            ]
        )
    header = (
        f"history for {name}: {len(points)} measurement(s) across "
        f"{len({p.run_id for p in points})} run(s)"
    )
    return header + "\n" + ascii_table(
        ["run", "git", "env", "repeats", "min", "median", "mean", "peak MB", "solves"],
        rows,
    )


def render_trend_report(report: TrendReport) -> str:
    """Aligned verdict table for ``repro obs trend``."""
    from repro.experiments.report import ascii_table

    rows = []
    for entry in report.entries:
        delta = "-" if entry.ratio != entry.ratio else f"{(entry.ratio - 1.0) * 100:+.1f}%"
        rows.append(
            [
                entry.name,
                f"{entry.n_gating}/{entry.n_runs}",
                _fmt_ms(entry.baseline_min_s),
                _fmt_ms(entry.latest_min_s),
                delta,
                entry.status,
            ]
        )
    lines = [
        ascii_table(
            ["benchmark", "gating/runs", "baseline min", "latest min", "delta", "status"],
            rows,
        ),
        f"{len(report.regressions)} sustained regression(s) at threshold "
        f"{report.threshold:.0%} (sustain {report.sustain}, "
        f"min {report.min_repeats} repeats to gate)",
    ]
    return "\n".join(lines)
