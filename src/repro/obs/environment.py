"""Environment fingerprinting for provenance of traces and benchmarks.

A perf number without the environment it ran in is noise: a 2x "regression"
between two `BENCH_*.json` files that were produced on different CPUs or
numpy builds is not a regression at all.  :func:`environment_fingerprint`
captures the identifying facts once per process — interpreter, BLAS-bearing
library versions, platform, CPU count, and the git commit of the source
tree — and every provenance-carrying artifact (JSONL trace headers,
benchmark records, metrics dumps) embeds the same dict, so any two
artifacts can be checked for comparability before their numbers are
compared.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

__all__ = ["environment_fingerprint", "fingerprint_digest", "git_revision"]

#: Schema tag embedded in every fingerprint, so readers can evolve.
FINGERPRINT_SCHEMA = "repro.env/v1"


def git_revision(start: Path | None = None) -> str | None:
    """The HEAD commit sha of the source tree, or None outside a checkout.

    Resolved from the installed package's directory (not the process cwd),
    so the fingerprint describes the code that ran, not where it ran from.
    """
    if start is None:
        start = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=start,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@lru_cache(maxsize=1)
def _cached_fingerprint() -> dict:
    import numpy
    import scipy

    return {
        "schema": FINGERPRINT_SCHEMA,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_revision(),
        "executable": sys.executable,
    }


def environment_fingerprint() -> dict:
    """Identifying facts of the current runtime environment.

    Cached after the first call (the git subprocess is the only
    non-trivial cost); callers receive a fresh copy so mutating the
    returned dict cannot poison later artifacts.
    """
    return dict(_cached_fingerprint())


def fingerprint_digest(environment: dict | None = None) -> str:
    """A short stable key identifying one runtime environment.

    The run ledger groups runs by this digest so "same machine and
    toolchain" is a single indexed column rather than a dict comparison.
    ``git_sha`` is excluded — the code version is keyed separately, and
    two commits benchmarked on one machine must share an environment key
    to be comparable at all.
    """
    import hashlib
    import json

    if environment is None:
        environment = environment_fingerprint()
    identity = {k: v for k, v in sorted(environment.items()) if k != "git_sha"}
    blob = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]
