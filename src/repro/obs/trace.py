"""Nestable span tracing with near-zero disabled-path cost.

A *span* is a named, timed region of work carrying structured attributes
(problem sizes, solver iterations, condition estimates, ...).  Spans nest:
entering a span inside another records it as a child, so one experiment
run produces a trace *tree* — per-replicate spans containing graph
construction spans containing solver spans.

The module-level default tracer is a :class:`NoopTracer`: every
``obs.span(...)`` call then returns a shared do-nothing context manager,
so instrumentation left in hot paths costs roughly one function call and
one dict construction per span — the consistency benchmarks stay honest.
Activate collection by installing a :class:`RecordingTracer`, usually
through the :func:`use_tracer` context manager::

    from repro import obs

    tracer = obs.RecordingTracer()
    with obs.use_tracer(tracer):
        run_experiment()
    obs.export.write_jsonl(tracer, "trace.jsonl")

Instrumented code checks ``span.recording`` before computing anything
expensive (condition estimates, component counts) so probes are free when
tracing is off.

The tracer is process-global and not thread-safe; the library's solvers
are single-threaded (BLAS parallelism happens below this layer).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "NoopSpan",
    "NoopTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "tracing_enabled",
]


class Span:
    """One timed, attributed region of a recording trace.

    Use as a context manager; entering pushes it onto the active tracer's
    stack (establishing parentage), exiting records the duration.
    ``set_attribute`` may be called any time before exit.
    """

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "depth",
        "start_wall",
        "duration",
        "children",
        "_tracer",
        "_start_perf",
        "_mem_start",
        "_mem_peak_abs",
    )

    recording = True

    def __init__(self, tracer: "RecordingTracer", name: str, attributes: dict):
        self.name = name
        self.attributes = attributes
        self._tracer = tracer
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.depth = 0
        self.start_wall = 0.0
        self.duration: float | None = None
        self.children: list[Span] = []
        self._start_perf = 0.0

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, mapping: dict) -> None:
        self.attributes.update(mapping)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_record(self) -> dict:
        """Flat dict form of this span (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_wall": self.start_wall,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "open" if self.duration is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {dur}, attrs={self.attributes!r})"


class NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    recording = False
    name = ""
    attributes: dict = {}
    duration = None
    children: tuple = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, mapping: dict) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = NoopSpan()


class NoopTracer:
    """Default tracer: collects nothing, costs (almost) nothing."""

    enabled = False

    def span(self, name: str, **attributes):
        return _NOOP_SPAN

    @property
    def roots(self) -> tuple:
        return ()

    def iter_spans(self):
        return iter(())

    def to_records(self) -> list[dict]:
        return []


class RecordingTracer:
    """Collects spans into an in-memory trace forest.

    With ``track_memory=True`` every span additionally records
    ``memory.peak_bytes`` (high-water allocation while the span was open,
    including its children) and ``memory.net_bytes`` (allocations
    surviving span exit) via ``tracemalloc``.  The module is imported and
    tracing started only when the flag is set — the default tracer and a
    plain ``RecordingTracer()`` never touch tracemalloc, keeping the
    disabled-path overhead guard honest.  Memory tracking costs roughly a
    2x slowdown on allocation-heavy code; never combine it with timings
    you intend to keep.  Call :meth:`close` to stop tracemalloc again if
    this tracer started it.

    Attributes
    ----------
    roots:
        Top-level spans (no enclosing span when entered), in entry order.
    """

    enabled = True

    def __init__(self, *, track_memory: bool = False):
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._counter = 0
        self.track_memory = bool(track_memory)
        self._tracemalloc = None
        self._owns_tracemalloc = False
        if self.track_memory:
            import tracemalloc

            self._tracemalloc = tracemalloc
            self._owns_tracemalloc = not tracemalloc.is_tracing()
            if self._owns_tracemalloc:
                tracemalloc.start()

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it (idempotent)."""
        if self._owns_tracemalloc and self._tracemalloc is not None:
            if self._tracemalloc.is_tracing():
                self._tracemalloc.stop()
            self._owns_tracemalloc = False

    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, attributes)

    def _push(self, span: Span) -> None:
        self._counter += 1
        span.span_id = self._counter
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
            parent.children.append(span)
        else:
            self.roots.append(span)
        if self.track_memory and self._tracemalloc.is_tracing():
            current, peak = self._tracemalloc.get_traced_memory()
            if self._stack:
                # Bank the enclosing span's high-water mark before the
                # reset below discards it.
                parent = self._stack[-1]
                if getattr(parent, "_mem_peak_abs", None) is not None:
                    parent._mem_peak_abs = max(parent._mem_peak_abs, peak)
            self._tracemalloc.reset_peak()
            span._mem_start = current
            span._mem_peak_abs = current
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (generators abandoned mid-span):
        # unwind to the matching span rather than corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if (
            self.track_memory
            and self._tracemalloc.is_tracing()
            and getattr(span, "_mem_start", None) is not None
        ):
            current, peak = self._tracemalloc.get_traced_memory()
            peak_abs = max(span._mem_peak_abs, peak)
            span.attributes["memory.peak_bytes"] = max(0, int(peak_abs - span._mem_start))
            span.attributes["memory.net_bytes"] = int(current - span._mem_start)
            self._tracemalloc.reset_peak()
            if self._stack:
                # Propagate: a child's peak is also its parent's peak.
                parent = self._stack[-1]
                if getattr(parent, "_mem_peak_abs", None) is not None:
                    parent._mem_peak_abs = max(parent._mem_peak_abs, peak_abs)

    def adopt_records(self, records) -> None:
        """Graft flat span records into this trace under the open span.

        ``records`` is a pre-order list of record dicts as produced by
        :meth:`to_records` — typically the subtree a worker process
        recorded on its private tracer.  Names, attributes, wall-clock
        starts and durations are preserved; span ids are reassigned from
        this tracer's counter.  Parent/child links *within* the batch
        are kept, and any record whose parent is not in the batch
        attaches to the span currently open here (or becomes a root),
        so a worker's ``repro.replicate`` subtree lands exactly where
        the serial path would have recorded it.
        """
        base = self._stack[-1] if self._stack else None
        by_old_id: dict[int, Span] = {}
        for record in records:
            span = Span(self, record.get("name", "?"), dict(record.get("attributes") or {}))
            self._counter += 1
            span.span_id = self._counter
            span.start_wall = float(record.get("start_wall") or 0.0)
            duration = record.get("duration_s")
            span.duration = None if duration is None else float(duration)
            parent = by_old_id.get(record.get("parent_id"), base)
            if parent is not None:
                span.parent_id = parent.span_id
                span.depth = parent.depth + 1
                parent.children.append(span)
            else:
                self.roots.append(span)
            old_id = record.get("span_id")
            if old_id is not None:
                by_old_id[old_id] = span

    def iter_spans(self):
        """Pre-order walk over all finished and open spans."""
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_records(self) -> list[dict]:
        """Flat pre-order list of span record dicts."""
        return [s.to_record() for s in self.iter_spans()]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_spans())


_ACTIVE: NoopTracer | RecordingTracer = NoopTracer()


def get_tracer() -> NoopTracer | RecordingTracer:
    """The process-global active tracer (a no-op tracer by default)."""
    return _ACTIVE


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process-global active tracer."""
    global _ACTIVE
    _ACTIVE = tracer


@contextmanager
def use_tracer(tracer):
    """Temporarily install ``tracer``, restoring the previous one on exit."""
    previous = _ACTIVE
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes):
    """Open a span on the active tracer (no-op unless tracing is enabled)."""
    return _ACTIVE.span(name, **attributes)


def tracing_enabled() -> bool:
    """True when the active tracer records spans."""
    return _ACTIVE.enabled
