"""``repro obs top``: a live terminal view over a running run's files.

The progress emitter (:mod:`repro.obs.progress`) fsyncs every JSONL
event, and metrics dumps are written atomically — so the files of a
*running* ``serve-eval`` or experiment are always readable prefixes.
This dashboard needs nothing else: :func:`run_top` re-reads those files
on an interval (no sockets, no threads, no dependencies) and renders

* one progress bar per task: completion, replicate rate, elapsed, ETA;
* a workspace panel when the dump carries ``workspace.*`` counters:
  solve counts, factor-cache hit rate, and the committed solve path
  (``workspace.path.<hierarchy_mode>.<dtype_policy>`` counters tell
  whether a run took the assembled or matrix-free hierarchy and which
  smoothing precision);
* a serving panel when the metrics dump carries ``serving.*`` series:
  request throughput, latency quantiles from the log-bucket histogram,
  queue wait, outcome counts, and the drift watchdog's flag fraction.

:func:`render_top` is the pure renderer — events + metrics in, one
string out — which is what the tests drive; :func:`run_top` is the
refresh loop behind the CLI verb.  A missing file means "not started
yet", not an error: the dashboard waits, so ``repro obs top`` can be
pointed at the paths *before* the run starts.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

__all__ = ["render_top", "run_top", "read_progress_events", "read_metrics_dump"]

#: Width of the progress bar's fill area, in characters.
BAR_WIDTH = 28


def _fmt_seconds(seconds) -> str:
    if seconds is None:
        return "?"
    seconds = float(seconds)
    if seconds < 0:
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_quantity(value: float) -> str:
    if value != value:  # NaN
        return "?"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def read_progress_events(path) -> list[dict] | None:
    """The readable prefix of a progress JSONL stream, or None if absent.

    A partial trailing line (interrupted or mid-write emitter) is
    expected while tailing a live file, so the partial-artifact warning
    is suppressed here — the next refresh will see the full line.
    """
    from repro.obs.export import PartialArtifactWarning, load_jsonl

    path = Path(path)
    if not path.exists():
        return None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialArtifactWarning)
        try:
            return load_jsonl(path)
        except (ValueError, OSError):
            # A torn first line right at file creation; treat like absent.
            return None


def read_metrics_dump(path) -> dict | None:
    """The ``metrics`` object of a ``repro.metrics/v1`` dump, or None."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (ValueError, OSError):
        return None
    if not isinstance(payload, dict):
        return None
    metrics = payload.get("metrics")
    return metrics if isinstance(metrics, dict) else None


def _task_states(events: list[dict]) -> dict[str, dict]:
    """Latest per-task state, in first-seen order."""
    tasks: dict[str, dict] = {}
    for event in events:
        name = event.get("task")
        if name is None:
            continue
        state = tasks.setdefault(
            name,
            {"completed": 0, "total": None, "elapsed_s": 0.0, "eta_s": None, "status": "running"},
        )
        if event.get("total") is not None:
            state["total"] = event["total"]
        if event.get("completed") is not None:
            state["completed"] = event["completed"]
        if event.get("elapsed_s") is not None:
            state["elapsed_s"] = event["elapsed_s"]
        if "eta_s" in event:
            state["eta_s"] = event["eta_s"]
        if event.get("type") == "end":
            state["status"] = event.get("status", "complete")
    return tasks


def _bar(completed: int, total) -> str:
    if not total:
        return "[" + "?" * BAR_WIDTH + "]"
    fraction = min(1.0, max(0.0, completed / total))
    filled = int(round(fraction * BAR_WIDTH))
    return "[" + "#" * filled + "-" * (BAR_WIDTH - filled) + "]"


def _render_tasks(tasks: dict[str, dict], lines: list[str]) -> None:
    lines.append("tasks")
    for name, state in tasks.items():
        completed, total = state["completed"], state["total"]
        elapsed = float(state["elapsed_s"] or 0.0)
        rate = completed / elapsed if elapsed > 0 else 0.0
        pct = f"{100.0 * completed / total:5.1f}%" if total else "    ?"
        suffix = (
            f"{completed}/{total if total is not None else '?'} {pct}  "
            f"{rate:.2f}/s  elapsed {_fmt_seconds(elapsed)}"
        )
        if state["status"] == "running":
            suffix += f"  eta {_fmt_seconds(state['eta_s'])}"
        else:
            suffix += f"  {state['status']}"
        lines.append(f"  {name:<20} {_bar(completed, total)} {suffix}")


def _metric(metrics: dict, name: str, key: str = "value"):
    snapshot = metrics.get(name)
    if not isinstance(snapshot, dict):
        return None
    value = snapshot.get(key)
    if value is None:
        return None
    value = float(value)
    return None if value != value else value


def _render_serving(metrics: dict, lines: list[str]) -> None:
    latency = metrics.get("serving.request.latency_s")
    throughput = _metric(metrics, "serving.request.throughput_qps")
    n_ok = _metric(metrics, "serving.request.outcome.ok")
    n_error = _metric(metrics, "serving.request.outcome.error")
    drift = _metric(metrics, "serving.drift.flag_fraction")
    margin = _metric(metrics, "serving.drift.nystrom_margin_min")
    if not any(value is not None for value in (throughput, n_ok, n_error, drift)) and latency is None:
        return
    lines.append("serving")
    if throughput is not None:
        lines.append(f"  throughput      {_fmt_quantity(throughput)} q/s")
    if isinstance(latency, dict) and latency.get("count"):
        parts = []
        for key in ("p50", "p95", "p99"):
            value = latency.get(key)
            if value is not None and value == value:
                parts.append(f"{key} {float(value) * 1e3:.3g}ms")
        if parts:
            lines.append(f"  latency         {'  '.join(parts)}")
    queue_wait = metrics.get("serving.request.queue_wait_s")
    if isinstance(queue_wait, dict) and queue_wait.get("count"):
        p95 = queue_wait.get("p95")
        if p95 is not None and p95 == p95:
            lines.append(f"  queue wait p95  {float(p95) * 1e3:.3g}ms")
    if n_ok is not None or n_error is not None:
        total = (n_ok or 0.0) + (n_error or 0.0)
        rate = (n_error or 0.0) / total if total else 0.0
        lines.append(
            f"  requests        {int(n_ok or 0)} ok, {int(n_error or 0)} "
            f"error ({100.0 * rate:.2f}% errors)"
        )
    if drift is not None:
        flagged = _metric(metrics, "serving.drift.flagged") or 0.0
        observed = _metric(metrics, "serving.drift.observed") or 0.0
        line = (
            f"  drift           {100.0 * drift:.2f}% flagged "
            f"({int(flagged)}/{int(observed)})"
        )
        if margin is not None:
            line += f", nystrom margin min {margin:+.3f}"
        lines.append(line)


def _render_workspace(metrics: dict, lines: list[str]) -> None:
    prefix = "workspace.path."
    paths = sorted(
        name[len(prefix):]
        for name in metrics
        if name.startswith(prefix) and (_metric(metrics, name) or 0) > 0
    )
    solves = _metric(metrics, "workspace.solves")
    multigrid = _metric(metrics, "workspace.multigrid_solves")
    if not paths and solves is None and multigrid is None:
        return
    lines.append("workspace")
    if paths:
        # counter names carry "<hierarchy_mode>.<dtype_policy>"
        rendered = ", ".join(
            "{} / {}".format(*path.split(".", 1)) if "." in path else path
            for path in paths
        )
        lines.append(f"  solve path      {rendered}")
    if solves is not None:
        line = f"  solves          {int(solves)}"
        if multigrid is not None:
            line += f" ({int(multigrid)} multigrid)"
        lines.append(line)
    hits = _metric(metrics, "workspace.factor.hits")
    misses = _metric(metrics, "workspace.factor.misses")
    if hits is not None or misses is not None:
        traffic = (hits or 0.0) + (misses or 0.0)
        rate = (hits or 0.0) / traffic if traffic else 0.0
        lines.append(
            f"  factor cache    {int(hits or 0)} hit / {int(misses or 0)} "
            f"miss ({100.0 * rate:.0f}%)"
        )


def render_top(
    events: list[dict] | None,
    metrics: dict | None = None,
    *,
    progress_path=None,
    metrics_path=None,
) -> str:
    """Render one dashboard frame from loaded events + metric snapshots.

    Pure function of its inputs (paths only decorate the header), so
    tests can assert on frames without touching the refresh loop.
    """
    lines: list[str] = []
    header = "repro obs top"
    if progress_path is not None:
        header += f" — {progress_path}"
    lines.append(header)
    lines.append("=" * len(header))
    if events is None:
        lines.append(
            f"waiting for progress stream"
            f"{f' at {progress_path}' if progress_path is not None else ''} ..."
        )
    else:
        tasks = _task_states(events)
        if tasks:
            _render_tasks(tasks, lines)
        else:
            lines.append("progress stream open, no task events yet")
    if metrics is not None:
        _render_workspace(metrics, lines)
        _render_serving(metrics, lines)
    elif metrics_path is not None:
        lines.append(f"waiting for metrics dump at {metrics_path} ...")
    return "\n".join(lines) + "\n"


def _all_ended(events: list[dict] | None) -> bool:
    if not events:
        return False
    tasks = _task_states(events)
    return bool(tasks) and all(
        state["status"] != "running" for state in tasks.values()
    )


def run_top(
    progress_path,
    metrics_path=None,
    *,
    interval: float = 1.0,
    max_refreshes: int | None = None,
    stream=None,
    clear: bool | None = None,
) -> int:
    """Tail progress/metrics files and re-render until the run ends.

    Exits 0 when every task in the stream has ended (or after
    ``max_refreshes`` frames — the bound the CLI's ``--refreshes`` flag
    and the tests use).  ``clear`` defaults to "only when the stream is
    a terminal", so piped output stays an append-only frame log.
    """
    import sys

    if stream is None:
        stream = sys.stdout
    if clear is None:
        clear = hasattr(stream, "isatty") and stream.isatty()
    refreshes = 0
    while True:
        events = read_progress_events(progress_path)
        metrics = read_metrics_dump(metrics_path) if metrics_path is not None else None
        frame = render_top(
            events,
            metrics,
            progress_path=progress_path,
            metrics_path=metrics_path if metrics is None else None,
        )
        if clear:
            stream.write("\x1b[2J\x1b[H")
        stream.write(frame)
        stream.flush()
        refreshes += 1
        if _all_ended(events):
            return 0
        if max_refreshes is not None and refreshes >= max_refreshes:
            return 0
        time.sleep(interval)
