"""Trace exporters: JSONL files, human-readable tables, in-memory lists.

The JSONL format is one flat span record per line (pre-order), each with
``span_id`` / ``parent_id`` / ``depth`` so the tree is reconstructable::

    {"span_id": 1, "parent_id": null, "depth": 0, "name": "repro.replicate",
     "start_wall": 1733..., "duration_s": 0.012, "attributes": {...}}

Since the provenance unification with the benchmark records (see
:mod:`repro.obs.bench`), :func:`write_jsonl` prepends one *header* line
(``"type": "header"``) carrying the environment fingerprint and creation
time.  :func:`load_jsonl` returns span records only — header lines are
skipped, so traces written before the header existed load identically —
and :func:`load_header` retrieves the provenance when present.

:func:`render_trace_report` aggregates records by span name into an
aligned table (count / total / mean / max durations) plus per-name
numeric-attribute summaries — this backs ``python -m repro trace-report``.

Durability: whole-file dumps (:func:`write_jsonl`,
:func:`dump_metrics_json`) go through :func:`atomic_write_text` —
written to a temp file in the target directory, fsynced, then renamed —
so a crash mid-write never leaves a truncated artifact under the final
name.  Streaming writers use :class:`JsonlSink`, which flushes and
fsyncs every record, so an interrupted process leaves a readable prefix;
:func:`load_jsonl` correspondingly tolerates (with a
:class:`PartialArtifactWarning`) a trailing half-written line.
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from pathlib import Path

__all__ = [
    "PartialArtifactWarning",
    "to_records",
    "atomic_write_text",
    "JsonlSink",
    "write_jsonl",
    "load_jsonl",
    "load_header",
    "dump_metrics_json",
    "dump_metrics_openmetrics",
    "InMemoryExporter",
    "render_tree",
    "render_trace_report",
]


class PartialArtifactWarning(UserWarning):
    """A JSONL artifact ended mid-record (interrupted writer); the readable
    prefix was loaded and the partial trailing line skipped."""

#: Schema tag on the JSONL header line.
TRACE_SCHEMA = "repro.trace/v1"


def _is_header(record: dict) -> bool:
    return record.get("type") == "header"


def _json_default(value):
    """Coerce numpy scalars (and other oddballs) to plain JSON types."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file + fsync + rename.

    The temp file lives in the destination directory so the rename is
    atomic on POSIX; readers either see the old file or the complete new
    one, never a truncated intermediate.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        with tmp.open("w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        if tmp.exists():  # rename failed; don't litter
            tmp.unlink(missing_ok=True)
    return path


class JsonlSink:
    """Append-structured JSONL writer that survives being killed.

    Every :meth:`write` serialises one record, flushes, and fsyncs, so
    the file on disk is always a readable prefix of the stream — the
    durability contract progress telemetry and the run ledger's
    partial-run detection rely on.  Not for hot paths: an fsync per
    record is deliberate (progress events are seconds apart).
    """

    def __init__(self, path, *, fsync: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._handle = self.path.open("w")

    def write(self, record: dict) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        self._handle.write(json.dumps(record, default=_json_default))
        self._handle.write("\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def to_records(trace) -> list[dict]:
    """Normalize a tracer, span iterable, or record list to record dicts."""
    if hasattr(trace, "to_records"):
        return trace.to_records()
    records = []
    for entry in trace:
        records.append(entry if isinstance(entry, dict) else entry.to_record())
    return records


def write_jsonl(trace, path, *, header: bool = True) -> Path:
    """Write one span record per line; returns the resolved path.

    Unless ``header=False``, the first line is a provenance header with
    the environment fingerprint — the same dict benchmark records embed,
    so traces and bench artifacts share one provenance format.  The file
    lands atomically (temp + rename): a crash mid-export cannot leave a
    truncated trace under the final name.
    """
    from repro.obs.environment import environment_fingerprint

    lines = []
    if header:
        head = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "created_unix": time.time(),
            "environment": environment_fingerprint(),
        }
        lines.append(json.dumps(head, default=_json_default))
    for record in to_records(trace):
        lines.append(json.dumps(record, default=_json_default))
    return atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))


def load_jsonl(path) -> list[dict]:
    """Read span records written by :func:`write_jsonl`.

    Header lines are skipped, so files from before the header existed and
    files carrying one load to the same span-record list; use
    :func:`load_header` for the provenance record itself.

    A file whose *last* line does not parse — after at least one line
    that did — is treated as the readable prefix of an interrupted
    streaming writer: the partial line is skipped with a
    :class:`PartialArtifactWarning`.  An unparseable line followed by
    further content, or a file whose very first line is unparseable, is
    real corruption and still raises.
    """
    path = Path(path)
    with path.open() as handle:
        lines = [
            (number, line.strip())
            for number, line in enumerate(handle, start=1)
            if line.strip()
        ]
    records = []
    for position, (number, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1 and position > 0:
                warnings.warn(
                    f"{path}:{number}: skipping partial trailing line "
                    f"(interrupted writer)",
                    PartialArtifactWarning,
                    stacklevel=2,
                )
                break
            raise
        if not (isinstance(record, dict) and _is_header(record)):
            records.append(record)
    return records


def load_header(path) -> dict | None:
    """The provenance header of a JSONL trace, or None on old files."""
    path = Path(path)
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                record = json.loads(line)
                if isinstance(record, dict) and _is_header(record):
                    return record
                return None
    return None


def dump_metrics_json(registry, path, *, command: str | None = None) -> Path:
    """Write a metrics-registry snapshot as one provenance-carrying JSON.

    Backs the CLI's ``--metrics PATH`` flag; the document embeds the
    environment fingerprint so metric dumps, traces, and bench records
    all answer "where did this number come from" the same way.
    """
    from repro.obs.environment import environment_fingerprint

    payload = {
        "schema": "repro.metrics/v1",
        "command": command,
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "metrics": registry.snapshot(),
    }
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True, default=_json_default) + "\n"
    )


def dump_metrics_openmetrics(registry, path) -> Path:
    """Write a registry snapshot as OpenMetrics text exposition.

    The Prometheus-scrapeable sibling of :func:`dump_metrics_json`
    (``repro obs export-metrics`` converts between the two).  The output
    always passes our own :func:`~repro.obs.openmetrics.parse_openmetrics`
    validator; rendering details live in :mod:`repro.obs.openmetrics`.
    """
    from repro.obs.openmetrics import render_openmetrics

    return atomic_write_text(path, render_openmetrics(registry.snapshot()))


class InMemoryExporter:
    """Collects span records in a list — for assertions in tests."""

    def __init__(self):
        self.records: list[dict] = []

    def export(self, trace) -> list[dict]:
        batch = to_records(trace)
        self.records.extend(batch)
        return batch

    def names(self) -> list[str]:
        return [record["name"] for record in self.records]

    def find(self, name: str) -> list[dict]:
        return [record for record in self.records if record["name"] == name]

    def clear(self) -> None:
        self.records.clear()


def _fmt_seconds(value) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.6f}"


def render_tree(trace, *, max_spans: int = 200) -> str:
    """Indented per-span listing (one line per span, pre-order)."""
    records = [r for r in to_records(trace) if "name" in r]
    lines = []
    for record in records[:max_spans]:
        indent = "  " * record.get("depth", 0)
        attrs = record.get("attributes") or {}
        attr_text = ", ".join(f"{k}={_compact(v)}" for k, v in attrs.items())
        suffix = f"  [{attr_text}]" if attr_text else ""
        lines.append(
            f"{indent}{record['name']}  {_fmt_seconds(record.get('duration_s'))}s{suffix}"
        )
    if len(records) > max_spans:
        lines.append(f"... {len(records) - max_spans} more spans")
    return "\n".join(lines)


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_trace_report(trace) -> str:
    """Aggregate a trace into aligned summary tables.

    One table of span durations grouped by name, and one of numeric
    attribute statistics grouped by ``span name / attribute`` — the
    latter is where solver health (iterations, condition estimates,
    degree statistics) surfaces.
    """
    from repro.experiments.report import ascii_table

    records = [r for r in to_records(trace) if "name" in r]
    if not records:
        return "empty trace (0 spans)"

    by_name: dict[str, list[float]] = {}
    attr_values: dict[tuple[str, str], list[float]] = {}
    for record in records:
        duration = record.get("duration_s")
        by_name.setdefault(record["name"], []).append(
            float(duration) if duration is not None else math.nan
        )
        for key, value in (record.get("attributes") or {}).items():
            if isinstance(value, bool):
                value = float(value)
            if isinstance(value, (int, float)) and math.isfinite(value):
                attr_values.setdefault((record["name"], key), []).append(float(value))

    span_rows = []
    for name in sorted(by_name):
        durations = [d for d in by_name[name] if not math.isnan(d)]
        count = len(by_name[name])
        total = sum(durations)
        mean = total / len(durations) if durations else math.nan
        peak = max(durations) if durations else math.nan
        span_rows.append([name, count, f"{total:.6f}", f"{mean:.6f}", f"{peak:.6f}"])

    lines = [
        f"trace report: {len(records)} spans, {len(by_name)} distinct names",
        "",
        ascii_table(["span", "count", "total_s", "mean_s", "max_s"], span_rows),
    ]

    if attr_values:
        attr_rows = []
        for (name, key) in sorted(attr_values):
            values = attr_values[(name, key)]
            attr_rows.append(
                [
                    f"{name} / {key}",
                    len(values),
                    f"{min(values):.4g}",
                    f"{sum(values) / len(values):.4g}",
                    f"{max(values):.4g}",
                ]
            )
        lines.extend(["", ascii_table(["attribute", "n", "min", "mean", "max"], attr_rows)])
    return "\n".join(lines)
