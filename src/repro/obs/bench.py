"""Structured benchmark capture and noise-aware regression comparison.

The benchmark harness used to emit free-text tables only; this module is
the machine-readable twin.  A :class:`BenchRecorder` captures, per
benchmark:

* repeated wall-clock timings with min/median/mean summaries (the *min*
  is the noise-robust statistic regressions are judged on);
* peak and net ``tracemalloc`` memory from one dedicated profiled pass —
  kept separate from the timing passes so the ~2x tracemalloc slowdown
  never pollutes the timings;
* solver-health evidence harvested from the span trace of the profiled
  pass (``solver.method`` / iterations / nnz / fill ratio — see
  :mod:`repro.obs.probes`);
* the :func:`~repro.obs.environment.environment_fingerprint`, so two
  runs can be checked for comparability before their numbers are.

Records serialize as one JSON document per benchmark plus a session
trajectory file ``BENCH_<run_id>.json``; :func:`compare_runs` implements
the regression gate behind ``python -m repro bench-compare``:
relative-to-min comparison with a configurable tolerance and a
minimum-repeat requirement (single-shot timings are reported but never
gate — one sample cannot distinguish a regression from scheduler noise).

The module also hosts the *memory budget* gate the out-of-core pipeline
is held to: a :class:`MemoryBudget` wraps named phases of a run in
tracemalloc + RSS bookkeeping and raises :class:`MemoryBudgetExceeded`
the moment a phase's traced peak crosses its declared byte budget, so a
memory regression fails the benchmark instead of silently fitting in a
bigger machine.  :func:`prune_bench_runs` keeps result directories from
growing without bound by dropping trajectory files fully superseded by
newer runs of the same benchmarks.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs.environment import environment_fingerprint
from repro.obs.trace import RecordingTracer, use_tracer

__all__ = [
    "BenchRecord",
    "BenchRecorder",
    "BenchComparison",
    "BenchDelta",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "PhaseUsage",
    "compare_runs",
    "compare_run_sequence",
    "load_bench_run",
    "prune_bench_runs",
    "render_bench_report",
    "render_bench_compare",
    "solver_health_from_trace",
]

RECORD_SCHEMA = "repro.bench.record/v1"
RUN_SCHEMA = "repro.bench.run/v1"

#: Raw timing samples stored per record (summaries stay exact beyond this).
MAX_STORED_SAMPLES = 64


def _default_run_id() -> str:
    return time.strftime("%Y%m%dT%H%M%S", time.gmtime()) + f"-{os.getpid()}"


@dataclass
class BenchRecord:
    """One benchmark's captured evidence (see module docstring)."""

    name: str
    min_s: float
    median_s: float
    mean_s: float
    repeats: int
    samples_s: list[float] = field(default_factory=list)
    memory: dict = field(default_factory=dict)
    solver_health: dict = field(default_factory=dict)
    environment: dict = field(default_factory=environment_fingerprint)
    scale: str = "quick"
    created_unix: float = field(default_factory=time.time)

    @classmethod
    def from_samples(cls, name: str, samples, *, repeats: int | None = None, **kwargs) -> "BenchRecord":
        """Build a record from raw timing samples, computing the summaries.

        ``repeats`` defaults to ``len(samples)``; pass it explicitly when
        the samples are a capped subset of a larger population (e.g.
        pytest-benchmark rounds).
        """
        samples = [float(s) for s in samples]
        if not samples:
            raise ValueError(f"benchmark {name!r} needs at least one timing sample")
        return cls(
            name=name,
            min_s=min(samples),
            median_s=statistics.median(samples),
            mean_s=statistics.fmean(samples),
            repeats=len(samples) if repeats is None else int(repeats),
            samples_s=samples[:MAX_STORED_SAMPLES],
            **kwargs,
        )

    def to_dict(self) -> dict:
        return {
            "schema": RECORD_SCHEMA,
            "name": self.name,
            "scale": self.scale,
            "repeats": self.repeats,
            "timings_s": {
                "min": self.min_s,
                "median": self.median_s,
                "mean": self.mean_s,
                "samples": list(self.samples_s),
            },
            "memory": dict(self.memory),
            "solver_health": dict(self.solver_health),
            "environment": dict(self.environment),
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        timings = data.get("timings_s") or {}
        return cls(
            name=data["name"],
            min_s=float(timings.get("min", math.nan)),
            median_s=float(timings.get("median", math.nan)),
            mean_s=float(timings.get("mean", math.nan)),
            repeats=int(data.get("repeats", len(timings.get("samples", ())) or 1)),
            samples_s=[float(s) for s in timings.get("samples", ())],
            memory=dict(data.get("memory") or {}),
            solver_health=dict(data.get("solver_health") or {}),
            environment=dict(data.get("environment") or {}),
            scale=data.get("scale", "quick"),
            created_unix=float(data.get("created_unix", 0.0)),
        )

    def write_json(self, path) -> Path:
        """Write this record as one standalone JSON document (atomically)."""
        from repro.obs.export import atomic_write_text

        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def summary(self) -> str:
        """One-line human summary (the text twin for micro-benchmarks)."""
        peak = self.memory.get("peak_bytes")
        mem = f", peak {peak / 1e6:.2f} MB" if peak is not None else ""
        solves = self.solver_health.get("solves", 0)
        return (
            f"{self.name}: min {_fmt_ms(self.min_s)} / median {_fmt_ms(self.median_s)} / "
            f"mean {_fmt_ms(self.mean_s)} over {self.repeats} repeat(s){mem}, "
            f"{solves} solve(s)"
        )


def solver_health_from_trace(trace) -> dict:
    """Aggregate ``solver.*`` span attributes into one health dict.

    Counts only spans carrying ``solver.method`` (the top-level solve
    spans that :func:`repro.obs.probes.record_solve_info` annotates), so
    inner iterative-solver spans are not double-counted.
    """
    from repro.obs.export import to_records

    health: dict = {"solves": 0, "methods": {}, "iterations_total": 0, "converged_all": True}
    nnz_max = fill_ratio_max = None
    for record in to_records(trace):
        attributes = record.get("attributes") or {}
        method = attributes.get("solver.method")
        if method is None:
            continue
        health["solves"] += 1
        health["methods"][method] = health["methods"].get(method, 0) + 1
        health["iterations_total"] += int(attributes.get("solver.iterations", 0))
        if attributes.get("solver.converged") is False:
            health["converged_all"] = False
        nnz = attributes.get("solver.nnz")
        if nnz is not None:
            nnz_max = max(int(nnz), nnz_max or 0)
        fill_ratio = attributes.get("solver.fill_ratio")
        if fill_ratio is not None:
            fill_ratio_max = max(float(fill_ratio), fill_ratio_max or 0.0)
    if nnz_max is not None:
        health["nnz_max"] = nnz_max
    if fill_ratio_max is not None:
        health["fill_ratio_max"] = fill_ratio_max
    return health


def _profiled_pass(fn):
    """Run ``fn`` once under tracemalloc + a recording tracer.

    Returns ``(result, memory, solver_health)``.  Tracemalloc is only
    stopped afterwards if this pass started it, so a caller already
    profiling is left undisturbed.
    """
    import tracemalloc

    tracer = RecordingTracer()
    owns_tracemalloc = not tracemalloc.is_tracing()
    if owns_tracemalloc:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        with use_tracer(tracer):
            result = fn()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        if owns_tracemalloc:
            tracemalloc.stop()
    memory = {
        "peak_bytes": max(0, int(peak - baseline)),
        "net_bytes": int(current - baseline),
    }
    return result, memory, solver_health_from_trace(tracer)


class MemoryBudgetExceeded(ReproError, RuntimeError):
    """Raised when a :class:`MemoryBudget` phase crosses its byte budget.

    Carries the offending :class:`PhaseUsage` so the failure message and
    any post-mortem report show exactly which phase blew the budget and
    by how much.
    """

    def __init__(self, message: str, usage: "PhaseUsage"):
        super().__init__(message)
        self.usage = usage


@dataclass(frozen=True)
class PhaseUsage:
    """Measured memory footprint of one :class:`MemoryBudget` phase.

    ``peak_traced_bytes``/``net_traced_bytes`` come from tracemalloc
    (python-level allocations above the phase's baseline — the number
    budgets are declared against, because it is reproducible across
    machines).  ``rss_growth_bytes`` is how much the process high-water
    RSS rose during the phase: a lifetime maximum, so it stays zero when
    an earlier phase already reached higher, and includes allocator and
    BLAS overhead tracemalloc cannot see.
    """

    name: str
    budget_bytes: int | None
    peak_traced_bytes: int
    net_traced_bytes: int
    rss_growth_bytes: int
    duration_s: float

    @property
    def within(self) -> bool | None:
        """Whether the traced peak fit the budget (``None``: no budget)."""
        if self.budget_bytes is None:
            return None
        return self.peak_traced_bytes <= self.budget_bytes

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "budget_bytes": self.budget_bytes,
            "peak_traced_bytes": self.peak_traced_bytes,
            "net_traced_bytes": self.net_traced_bytes,
            "rss_growth_bytes": self.rss_growth_bytes,
            "duration_s": self.duration_s,
            "within": self.within,
        }

    def summary(self) -> str:
        budget = "-" if self.budget_bytes is None else _fmt_mb(self.budget_bytes)
        verdict = {True: "ok", False: "EXCEEDED", None: "unbudgeted"}[self.within]
        return (
            f"{self.name}: peak {_fmt_mb(self.peak_traced_bytes)} MB "
            f"/ budget {budget} MB ({verdict}), "
            f"rss +{_fmt_mb(self.rss_growth_bytes)} MB, {self.duration_s:.1f}s"
        )


def _rss_high_water_bytes() -> int:
    """Process lifetime peak RSS in bytes (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.  Treat small values
    # as KB — no real python process has a sub-16MB peak RSS in bytes.
    return int(peak) * 1024 if peak < 2**24 else int(peak)


class MemoryBudget:
    """Per-phase peak-memory gate for large-``N`` benchmark runs.

    Usage::

        gate = MemoryBudget(rss_factor=3.0)
        with gate.phase("graph", budget_bytes=200 * 2**20):
            graph = approx_knn_graph(x, k)
        gate.assert_within("graph", measured_baseline * 0.4)  # post-hoc

    Each phase measures the tracemalloc peak above the phase's own
    baseline and raises :class:`MemoryBudgetExceeded` at phase exit when
    it crosses ``budget_bytes`` (unless ``enforce=False``, in which case
    violations are only recorded).  The traced peak is the gated number
    because it is machine-independent; as a safety net, RSS *growth*
    during the phase is additionally gated at ``rss_factor *
    budget_bytes`` to catch untraced allocations (BLAS scratch, allocator
    slack) an order of magnitude out of line.

    ``assert_within`` re-judges an already-recorded phase against a
    budget computed only *after* the phase ran (e.g. a fraction of a
    measured baseline).  Phases accumulate in :attr:`phases`;
    :meth:`to_dict` serializes them for a bench record's ``memory``
    field.

    The tracemalloc ownership rule matches :func:`_profiled_pass`:
    tracing already active (an enclosing profiler) is left running and
    undisturbed, otherwise it is started and stopped per phase.  Do not
    nest budget phases inside ``BenchRecorder.measure(profile=True)``
    timing passes — both reset the shared tracemalloc peak; time the
    phase with ``profile=False`` instead.
    """

    def __init__(self, *, rss_factor: float = 3.0, enforce: bool = True):
        if not rss_factor > 0:
            raise ValueError(f"rss_factor must be positive, got {rss_factor}")
        self.rss_factor = float(rss_factor)
        self.enforce = bool(enforce)
        self.phases: list[PhaseUsage] = []

    @contextlib.contextmanager
    def phase(self, name: str, budget_bytes: int | float | None = None):
        """Measure (and gate) one named phase of work."""
        import tracemalloc

        if budget_bytes is not None:
            budget_bytes = int(budget_bytes)
            if budget_bytes <= 0:
                raise ValueError(
                    f"budget_bytes must be positive, got {budget_bytes}"
                )
        owns_tracemalloc = not tracemalloc.is_tracing()
        if owns_tracemalloc:
            tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        rss_before = _rss_high_water_bytes()
        started = time.perf_counter()
        try:
            yield self
            current, peak = tracemalloc.get_traced_memory()
        finally:
            if owns_tracemalloc:
                tracemalloc.stop()
        usage = PhaseUsage(
            name=name,
            budget_bytes=budget_bytes,
            peak_traced_bytes=max(0, int(peak - baseline)),
            net_traced_bytes=int(current - baseline),
            rss_growth_bytes=max(0, _rss_high_water_bytes() - rss_before),
            duration_s=time.perf_counter() - started,
        )
        self.phases.append(usage)
        self._judge(usage)

    def measure(self, name: str, fn, *, budget_bytes: int | float | None = None):
        """Run ``fn()`` inside a budgeted phase; returns ``(result, usage)``."""
        with self.phase(name, budget_bytes=budget_bytes):
            result = fn()
        return result, self.phases[-1]

    def assert_within(self, name: str, budget_bytes: int | float) -> PhaseUsage:
        """Re-gate the most recent phase ``name`` against a post-hoc budget.

        For budgets derivable only after the fact (a fraction of a
        baseline measured by the phase itself).  Replaces the stored
        usage with the budgeted version and returns it.
        """
        budget_bytes = int(budget_bytes)
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        for i in range(len(self.phases) - 1, -1, -1):
            if self.phases[i].name == name:
                usage = PhaseUsage(
                    name=name,
                    budget_bytes=budget_bytes,
                    peak_traced_bytes=self.phases[i].peak_traced_bytes,
                    net_traced_bytes=self.phases[i].net_traced_bytes,
                    rss_growth_bytes=self.phases[i].rss_growth_bytes,
                    duration_s=self.phases[i].duration_s,
                )
                self.phases[i] = usage
                self._judge(usage)
                return usage
        raise KeyError(f"no recorded phase named {name!r}")

    def _judge(self, usage: PhaseUsage) -> None:
        if usage.budget_bytes is None or not self.enforce:
            return
        if usage.peak_traced_bytes > usage.budget_bytes:
            raise MemoryBudgetExceeded(
                f"phase {usage.name!r} traced peak "
                f"{usage.peak_traced_bytes / 2**20:.1f} MiB exceeds budget "
                f"{usage.budget_bytes / 2**20:.1f} MiB",
                usage,
            )
        rss_limit = int(self.rss_factor * usage.budget_bytes)
        if usage.rss_growth_bytes > rss_limit:
            raise MemoryBudgetExceeded(
                f"phase {usage.name!r} RSS growth "
                f"{usage.rss_growth_bytes / 2**20:.1f} MiB exceeds "
                f"{self.rss_factor:g}x budget "
                f"{rss_limit / 2**20:.1f} MiB",
                usage,
            )

    @property
    def ok(self) -> bool:
        """True when every budgeted phase recorded so far fit its budget."""
        return all(usage.within is not False for usage in self.phases)

    def to_dict(self) -> dict:
        """Serializable snapshot (drop into a record's ``memory`` field)."""
        return {
            "rss_factor": self.rss_factor,
            "phases": [usage.to_dict() for usage in self.phases],
            "ok": self.ok,
        }

    def report(self) -> str:
        """Multi-line human summary, one line per phase."""
        return "\n".join(usage.summary() for usage in self.phases)


def prune_bench_runs(directory, *, keep: int = 3) -> list[Path]:
    """Delete ``BENCH_*.json`` trajectories fully superseded by newer runs.

    Walks the directory's trajectory files newest-first (by recorded
    ``created_unix``, falling back to mtime) and keeps a file as long as
    *any* benchmark name it contains has been seen fewer than ``keep``
    times among already-kept newer files.  A file is deleted only when
    every benchmark in it already has ``keep`` newer retained runs — so
    trend analysis keeps a ``keep``-deep history per benchmark while the
    results directory stops growing linearly with CI runs.  Unreadable
    or schema-less files are left untouched.  Returns the deleted paths.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    directory = Path(directory)
    candidates = []
    for path in directory.glob("BENCH_*.json"):
        try:
            run = load_bench_run(path)
            names = {record["name"] for record in run.get("benchmarks", ())}
        except (ValueError, KeyError, OSError, json.JSONDecodeError):
            continue
        if not names:
            continue
        created = float(run.get("created_unix") or 0.0) or path.stat().st_mtime
        candidates.append((created, path, names))
    candidates.sort(key=lambda item: item[0], reverse=True)

    seen: dict[str, int] = {}
    deleted: list[Path] = []
    for _, path, names in candidates:
        if any(seen.get(name, 0) < keep for name in names):
            for name in names:
                seen[name] = seen.get(name, 0) + 1
        else:
            path.unlink()
            deleted.append(path)
    return deleted


class BenchRecorder:
    """Collects :class:`BenchRecord` objects for one benchmark session.

    ``measure(name, fn)`` runs one profiled pass (memory + solver health;
    it doubles as warmup) followed by ``repeats`` clean timing passes,
    and returns ``(result, record)`` where ``result`` is the profiled
    pass's return value.  ``write_run(directory)`` serializes the session
    as ``BENCH_<run_id>.json``.
    """

    def __init__(self, *, scale: str = "quick", run_id: str | None = None,
                 environment: dict | None = None):
        self.scale = scale
        self.run_id = run_id or _default_run_id()
        self.environment = environment or environment_fingerprint()
        self.records: list[BenchRecord] = []
        self.created_unix = time.time()

    def measure(self, name: str, fn, *, repeats: int = 3, profile: bool = True):
        """Benchmark ``fn`` and register the record; returns ``(result, record)``."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        from repro.utils.timing import collect_timings

        if profile:
            result, memory, health = _profiled_pass(fn)
            timings, _ = collect_timings(fn, repeats)
        else:
            memory, health = {}, {}
            timings, result = collect_timings(fn, repeats)
        record = BenchRecord.from_samples(
            name, timings, memory=memory, solver_health=health,
            environment=self.environment, scale=self.scale,
        )
        self.add(record)
        return result, record

    def from_pytest_benchmark(self, name: str, stats, fn=None, *, profile: bool = True) -> BenchRecord:
        """Import a pytest-benchmark ``Stats`` object as a record.

        ``stats`` is ``benchmark.stats.stats`` after the fixture ran; its
        min/median/mean and round count are taken as-is (its calibration
        already de-noised them).  When ``fn`` is given and ``profile`` is
        true, one extra profiled pass supplies memory and solver health.
        """
        memory, health = {}, {}
        if profile and fn is not None:
            _, memory, health = _profiled_pass(fn)
        record = BenchRecord(
            name=name,
            min_s=float(stats.min),
            median_s=float(stats.median),
            mean_s=float(stats.mean),
            repeats=int(stats.rounds),
            samples_s=[float(s) for s in list(stats.data)[:MAX_STORED_SAMPLES]],
            memory=memory,
            solver_health=health,
            environment=self.environment,
            scale=self.scale,
        )
        self.add(record)
        return record

    def add(self, record: BenchRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def to_run(self) -> dict:
        """The session trajectory document (``repro.bench.run/v1``)."""
        return {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "scale": self.scale,
            "created_unix": self.created_unix,
            "environment": dict(self.environment),
            "benchmarks": [record.to_dict() for record in self.records],
        }

    def write_run(self, directory) -> Path:
        """Write ``BENCH_<run_id>.json`` under ``directory`` (atomically)."""
        from repro.obs.export import atomic_write_text

        path = Path(directory) / f"BENCH_{self.run_id}.json"
        return atomic_write_text(
            path, json.dumps(self.to_run(), indent=2, sort_keys=True) + "\n"
        )


def load_bench_run(path) -> dict:
    """Read a ``BENCH_*.json`` trajectory (or a single-record JSON).

    A single benchmark record is wrapped into a one-entry run so both
    artifact shapes work with ``bench-report`` / ``bench-compare``.
    Raises ``ValueError`` for JSON that is neither.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if isinstance(data, dict) and isinstance(data.get("benchmarks"), list):
        return data
    if isinstance(data, dict) and ("timings_s" in data or data.get("schema") == RECORD_SCHEMA):
        return {
            "schema": RUN_SCHEMA,
            "run_id": data.get("name", path.stem),
            "scale": data.get("scale", "quick"),
            "created_unix": data.get("created_unix", 0.0),
            "environment": data.get("environment") or {},
            "benchmarks": [data],
        }
    raise ValueError(
        f"{path} is not a bench run or record (expected a 'benchmarks' list "
        f"or a '{RECORD_SCHEMA}' document)"
    )


@dataclass
class BenchDelta:
    """One benchmark's old-vs-new timing verdict."""

    name: str
    old_min_s: float
    new_min_s: float
    ratio: float
    old_repeats: int
    new_repeats: int
    status: str  # "ok" | "regression" | "improvement" | "informational"


@dataclass
class BenchComparison:
    """The full old-vs-new verdict :func:`compare_runs` produces."""

    threshold: float
    min_repeats: int
    entries: list[BenchDelta] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [entry for entry in self.entries if entry.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_runs(old_run: dict, new_run: dict, *, threshold: float = 0.15,
                 min_repeats: int = 3) -> BenchComparison:
    """Noise-aware comparison of two bench runs (loaded trajectory dicts).

    A benchmark *regresses* when ``new_min / old_min > 1 + threshold``
    **and** both sides took at least ``min_repeats`` timing samples; with
    fewer repeats the delta is reported as ``informational`` only — a
    single sample cannot separate a regression from scheduler noise.
    Symmetrically, ``new_min / old_min < 1 / (1 + threshold)`` reports an
    ``improvement``.  Deterministic: a pure function of its inputs.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if min_repeats < 1:
        raise ValueError(f"min_repeats must be >= 1, got {min_repeats}")
    old_records = {r["name"]: BenchRecord.from_dict(r) for r in old_run.get("benchmarks", ())}
    new_records = {r["name"]: BenchRecord.from_dict(r) for r in new_run.get("benchmarks", ())}

    comparison = BenchComparison(
        threshold=threshold,
        min_repeats=min_repeats,
        added=sorted(set(new_records) - set(old_records)),
        removed=sorted(set(old_records) - set(new_records)),
    )
    for name in sorted(set(old_records) & set(new_records)):
        old, new = old_records[name], new_records[name]
        if not (old.min_s > 0 and math.isfinite(old.min_s) and math.isfinite(new.min_s)):
            ratio, status = math.nan, "informational"
        else:
            ratio = new.min_s / old.min_s
            if old.repeats < min_repeats or new.repeats < min_repeats:
                status = "informational"
            elif ratio > 1.0 + threshold:
                status = "regression"
            elif ratio < 1.0 / (1.0 + threshold):
                status = "improvement"
            else:
                status = "ok"
        comparison.entries.append(
            BenchDelta(
                name=name,
                old_min_s=old.min_s,
                new_min_s=new.min_s,
                ratio=ratio,
                old_repeats=old.repeats,
                new_repeats=new.repeats,
                status=status,
            )
        )
    return comparison


def compare_run_sequence(runs, *, threshold: float = 0.15,
                         min_repeats: int = 3) -> BenchComparison:
    """Compare ``>= 2`` bench runs, oldest against newest per benchmark.

    Runs are ordered by ``created_unix``.  For every benchmark the delta
    is judged between its *earliest* and *latest* appearance in the
    sequence (intermediate runs contribute nothing to the verdict — use
    ``repro obs trend`` for sustained-regression analysis over the full
    series).  Benchmarks seen in only one run are listed as ``added``
    when that run is the newest overall and ``removed`` otherwise.  With
    exactly two runs this reduces to :func:`compare_runs`.
    """
    runs = sorted(runs, key=lambda run: float(run.get("created_unix", 0.0)))
    if len(runs) < 2:
        raise ValueError(f"need at least 2 bench runs to compare, got {len(runs)}")
    earliest: dict[str, dict] = {}
    latest: dict[str, dict] = {}
    seen_in: dict[str, int] = {}
    for run in runs:
        for record in run.get("benchmarks", ()):
            name = record["name"]
            earliest.setdefault(name, record)
            latest[name] = record
            seen_in[name] = seen_in.get(name, 0) + 1
    newest_names = {r["name"] for r in runs[-1].get("benchmarks", ())}
    shared = {name for name, count in seen_in.items() if count >= 2}
    comparison = compare_runs(
        {"benchmarks": [earliest[name] for name in shared]},
        {"benchmarks": [latest[name] for name in shared]},
        threshold=threshold,
        min_repeats=min_repeats,
    )
    singles = set(seen_in) - shared
    comparison.added = sorted(singles & newest_names)
    comparison.removed = sorted(singles - newest_names)
    return comparison


def _fmt_ms(seconds: float) -> str:
    if seconds != seconds:
        return "-"
    return f"{seconds * 1e3:.4g}ms"


def _fmt_mb(value) -> str:
    if value is None:
        return "-"
    return f"{value / 1e6:.2f}"


def render_bench_report(run: dict) -> str:
    """Human-readable table for one trajectory (``repro bench-report``)."""
    from repro.experiments.report import ascii_table

    env = run.get("environment") or {}
    lines = [
        f"bench run {run.get('run_id', '?')} (scale={run.get('scale', '?')}, "
        f"{len(run.get('benchmarks', ()))} benchmarks)",
        f"environment: python {env.get('python', '?')}, numpy {env.get('numpy', '?')}, "
        f"scipy {env.get('scipy', '?')}, {env.get('cpu_count', '?')} cpus, "
        f"git {str(env.get('git_sha'))[:12]}",
        "",
    ]
    rows = []
    for data in run.get("benchmarks", ()):
        record = BenchRecord.from_dict(data)
        methods = ",".join(
            f"{method}x{count}" for method, count in sorted(record.solver_health.get("methods", {}).items())
        )
        rows.append(
            [
                record.name,
                record.repeats,
                _fmt_ms(record.min_s),
                _fmt_ms(record.median_s),
                _fmt_ms(record.mean_s),
                _fmt_mb(record.memory.get("peak_bytes")),
                record.solver_health.get("solves", 0),
                methods or "-",
            ]
        )
    lines.append(
        ascii_table(
            ["benchmark", "repeats", "min", "median", "mean", "peak MB", "solves", "methods"],
            rows,
        )
    )
    return "\n".join(lines)


def render_bench_compare(comparison: BenchComparison) -> str:
    """Human-readable verdict table for ``repro bench-compare``."""
    from repro.experiments.report import ascii_table

    rows = []
    for entry in comparison.entries:
        delta = "-" if entry.ratio != entry.ratio else f"{(entry.ratio - 1.0) * 100:+.1f}%"
        rows.append(
            [
                entry.name,
                _fmt_ms(entry.old_min_s),
                _fmt_ms(entry.new_min_s),
                delta,
                f"{entry.old_repeats}/{entry.new_repeats}",
                entry.status,
            ]
        )
    lines = [
        ascii_table(
            ["benchmark", "old min", "new min", "delta", "repeats", "status"], rows
        )
    ]
    if comparison.added:
        lines.append(f"added: {', '.join(comparison.added)}")
    if comparison.removed:
        lines.append(f"removed: {', '.join(comparison.removed)}")
    regressions = comparison.regressions
    lines.append(
        f"{len(regressions)} regression(s) at threshold {comparison.threshold:.0%} "
        f"(min {comparison.min_repeats} repeats to gate)"
    )
    return "\n".join(lines)
