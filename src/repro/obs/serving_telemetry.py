"""Per-request serving telemetry: latency recording and query drift.

PR 7's serving stack counted *what* was served (``ServingStats`` /
``ServerStats``); this module records *how well*.  Two concerns live
here, both designed around the serving hot path's budget (~12 us/query
batched — a naive per-request ``span()`` would triple it):

:class:`ServingTelemetry`
    Batch-vectorized recording of request latency, queue wait, phase
    timings, and method/outcome counters into ``serving.request.*`` /
    ``serving.phase.*`` metrics.  Latency distributions go into
    :class:`~repro.obs.metrics.LogBucketHistogram` (bounded memory,
    exact cross-process merge, quantiles within a documented relative
    error).  The whole recorder is a no-op when constructed with
    ``enabled=False`` — the opt-out the <5% overhead gate in
    ``benchmarks/test_bench_serving.py`` measures against.

:class:`DriftWatchdog`
    The paper's hard-criterion consistency guarantee (and the Nystrom
    stability cut derived from it) holds for queries that land inside
    the reference density's degree regime.  The watchdog freezes a
    baseline band of attachment-row degrees at fit time
    (:func:`fit_drift_baseline`) and, per served batch, flags queries
    whose degree falls outside it — plus queries eroding the Nystrom
    ``mu_k`` stability margin — as ``serving.drift.*`` metrics that the
    SLO gate (:mod:`repro.obs.slo`) can alarm on.

Nothing here allocates spans: all output is counters/gauges/histograms
in the ambient :class:`~repro.obs.metrics.MetricsRegistry`, so it
composes with ``--metrics`` dumps, cross-process grafting, the
OpenMetrics exporter, and ``repro obs top``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "ServingTelemetry",
    "DriftBaseline",
    "DriftWatchdog",
    "fit_drift_baseline",
    "DRIFT_BAND",
]

#: Quantile band of fit-time attachment degrees considered "in regime".
#: Queries outside the band are exactly the ones for which the paper's
#: consistency analysis (and our Nystrom cut) offers no guarantee.
DRIFT_BAND = (0.025, 0.975)

#: A query's Nystrom denominators ``d(x) - mu_k`` stay comfortably
#: bounded while ``d(x) >= SAFETY * mu_max`` for the largest served
#: eigenvalue ``mu_max``.  Below that the extension starts amplifying
#: the top components; the watchdog flags it as margin erosion.
NYSTROM_MARGIN_SAFETY = 2.0


@dataclass(frozen=True)
class DriftBaseline:
    """Fit-time calibration the watchdog compares live queries against."""

    degree_lo: float
    degree_hi: float
    degree_median: float
    band: tuple[float, float] = DRIFT_BAND

    def to_dict(self) -> dict:
        return {
            "degree_lo": self.degree_lo,
            "degree_hi": self.degree_hi,
            "degree_median": self.degree_median,
            "band": list(self.band),
        }


def fit_drift_baseline(degrees, *, band: tuple[float, float] = DRIFT_BAND) -> DriftBaseline:
    """Calibrate a :class:`DriftBaseline` from reference-vertex degrees.

    ``degrees`` is the fitted graph's degree vector (the same array the
    Nystrom stability cut quantiles, so serving and drift detection
    agree on what "in regime" means).
    """
    degrees = np.asarray(degrees, dtype=np.float64).ravel()
    if degrees.size == 0:
        raise ValueError("cannot calibrate a drift baseline from zero degrees")
    lo, hi = band
    if not 0.0 <= lo < hi <= 1.0:
        raise ValueError(f"band must satisfy 0 <= lo < hi <= 1, got {band}")
    return DriftBaseline(
        degree_lo=float(np.quantile(degrees, lo)),
        degree_hi=float(np.quantile(degrees, hi)),
        degree_median=float(np.median(degrees)),
        band=(float(lo), float(hi)),
    )


class DriftWatchdog:
    """Flags served queries that left the fit-time degree regime.

    One watchdog per fitted model.  :meth:`observe` takes the degrees of
    an extracted query batch (``QueryRow.degree()`` — self weight plus
    attachment mass, the quantity the serving math divides by) and
    updates:

    ``serving.drift.observed`` / ``serving.drift.flagged``
        Counters of queries seen / flagged out-of-band.
    ``serving.drift.flag_fraction``
        Gauge: cumulative flagged/observed — the number SLO specs bound.
    ``serving.drift.degree_low`` / ``serving.drift.degree_high``
        Counters splitting the flags by which side of the band.
    ``serving.drift.nystrom_margin_min``
        Gauge: the worst ``d(x) / (SAFETY * mu_max) - 1`` seen (only
        when serving supplies ``mu_max``); negative means some query's
        stability margin eroded, and those queries are flagged too.
    """

    def __init__(self, baseline: DriftBaseline, *, registry: MetricsRegistry | None = None):
        self.baseline = baseline
        self._registry = registry
        self.observed = 0
        self.flagged = 0
        self.margin_min = np.inf

    def _reg(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def flag_fraction(self) -> float:
        return self.flagged / self.observed if self.observed else 0.0

    def observe(self, degrees, *, mu_max: float | None = None) -> int:
        """Record one served batch's degrees; returns how many flagged."""
        degrees = np.asarray(degrees, dtype=np.float64).ravel()
        if degrees.size == 0:
            return 0
        vmin = float(degrees.min())
        vmax = float(degrees.max())
        floor = None
        if mu_max is not None and mu_max > 0.0:
            floor = NYSTROM_MARGIN_SAFETY * mu_max
            batch_min = vmin / floor - 1.0
            if batch_min < self.margin_min:
                self.margin_min = batch_min
        if (
            vmin >= self.baseline.degree_lo
            and vmax <= self.baseline.degree_hi
            and (floor is None or vmin >= floor)
        ):
            # Whole batch in regime — the hot-path common case: two
            # reductions decide it, no boolean masks allocated.
            n_flagged = n_low = n_high = 0
        else:
            low = degrees < self.baseline.degree_lo
            high = degrees > self.baseline.degree_hi
            flags = np.logical_or(low, high)
            if floor is not None:
                flags |= degrees < floor
            n_flagged = int(np.count_nonzero(flags))
            n_low = int(np.count_nonzero(low))
            n_high = int(np.count_nonzero(high))
        self.observed += int(degrees.size)
        self.flagged += n_flagged

        registry = self._reg()
        registry.counter("serving.drift.observed").inc(int(degrees.size))
        if n_flagged:
            registry.counter("serving.drift.flagged").inc(n_flagged)
            if n_low:
                registry.counter("serving.drift.degree_low").inc(n_low)
            if n_high:
                registry.counter("serving.drift.degree_high").inc(n_high)
        registry.gauge("serving.drift.flag_fraction").set(self.flag_fraction)
        if np.isfinite(self.margin_min):
            registry.gauge("serving.drift.nystrom_margin_min").set(
                float(self.margin_min)
            )
        return n_flagged


class ServingTelemetry:
    """Vectorized per-request metric recorder for the serving stack.

    All recording is *batch-granular*: the server keeps one
    ``perf_counter()`` per submitted request (a float append — the only
    per-request cost on the hot path) and hands whole arrays here at
    flush time, where a single :meth:`LogBucketHistogram.observe_many`
    pass buckets them.  With ``enabled=False`` every method returns
    immediately, which is what keeps the uninstrumented path inside the
    bench gate's 5% budget.
    """

    __slots__ = ("enabled", "_registry")

    def __init__(self, *, enabled: bool = True, registry: MetricsRegistry | None = None):
        self.enabled = bool(enabled)
        self._registry = registry

    def _reg(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------
    # Request-level recording
    # ------------------------------------------------------------------

    def record_requests(
        self,
        method: str,
        n_queries: int,
        *,
        latencies_s=None,
        queue_waits_s=None,
    ) -> None:
        """Record one successfully served batch of ``n_queries`` requests."""
        if not self.enabled or n_queries <= 0:
            return
        registry = self._reg()
        registry.counter(f"serving.request.count.{method}").inc(n_queries)
        registry.counter("serving.request.outcome.ok").inc(n_queries)
        if latencies_s is not None:
            registry.log_histogram("serving.request.latency_s").observe_many(
                latencies_s
            )
        if queue_waits_s is not None:
            registry.log_histogram("serving.request.queue_wait_s").observe_many(
                queue_waits_s
            )

    def record_errors(self, method: str, n_queries: int) -> None:
        """Record a failed batch: every request in it errored."""
        if not self.enabled or n_queries <= 0:
            return
        registry = self._reg()
        registry.counter(f"serving.request.count.{method}").inc(n_queries)
        registry.counter("serving.request.outcome.error").inc(n_queries)

    def record_phase(self, phase: str, seconds: float) -> None:
        """Record one timed pass of a serving phase (extract/predict/...)."""
        if not self.enabled:
            return
        self._reg().log_histogram(f"serving.phase.{phase}_s").observe(seconds)

    def record_flush(self, reason: str) -> None:
        """Count one queue flush by trigger (``full``/``manual``/``lazy``)."""
        if not self.enabled:
            return
        self._reg().counter(f"serving.server.flush.{reason}").inc()

    def record_throughput(self, queries_per_second: float) -> None:
        """Publish the most recent batch-level throughput observation."""
        if not self.enabled:
            return
        self._reg().gauge("serving.request.throughput_qps").set(
            float(queries_per_second)
        )
