"""Observability stack: span tracing, metrics, health probes, exporters.

Layered so each piece is independently usable:

* :mod:`repro.obs.trace` — nestable context-manager spans collected into
  an in-memory trace tree; a no-op tracer is the default, so leaving
  instrumentation in hot paths is near-free.
* :mod:`repro.obs.metrics` — counters / gauges / histograms with a global
  default registry plus injectable instances for tests.
* :mod:`repro.obs.probes` — cheap numeric health probes (condition
  estimates, graph degree/component statistics, CG iteration counts,
  Schur block sizes) that attach to recording spans.
* :mod:`repro.obs.export` — JSONL files (with provenance headers),
  aligned-table reports, and an in-memory exporter for assertions.
* :mod:`repro.obs.environment` — the environment fingerprint every
  provenance-carrying artifact (trace header, bench record, metrics
  dump) embeds.
* :mod:`repro.obs.bench` — structured benchmark capture
  (:class:`~repro.obs.bench.BenchRecorder`) and the noise-aware
  regression comparison behind ``python -m repro bench-compare``.
* :mod:`repro.obs.progress` — live progress telemetry: heartbeat and
  per-replicate-completion events streamed to stderr and/or an fsynced
  JSONL sink while experiments run.
* :mod:`repro.obs.ledger` — the SQLite run ledger ingesting every
  provenance-carrying artifact into one queryable history (``repro obs``
  CLI family).
* :mod:`repro.obs.trend` — multi-run history series and the sustained
  regression gate behind ``repro obs trend``.
* :mod:`repro.obs.serving_telemetry` — per-request serving telemetry:
  vectorized latency recording and the query-drift watchdog.
* :mod:`repro.obs.slo` — declarative service-level objectives evaluated
  against metrics dumps or ledger runs (``repro obs slo``).
* :mod:`repro.obs.openmetrics` — OpenMetrics/Prometheus text exposition
  (``repro obs export-metrics``) plus a validating parser.
* :mod:`repro.obs.dashboard` — the live ``repro obs top`` terminal view
  over a running run's progress/metrics files.

Typical use::

    from repro import obs

    tracer = obs.RecordingTracer()
    with obs.use_tracer(tracer):
        solve_hard_criterion(weights, y, method="cg")
    print(obs.export.render_trace_report(tracer))
"""

from repro.obs import (
    bench,
    dashboard,
    export,
    openmetrics,
    probes,
    progress,
    serving_telemetry,
    slo,
    trend,
)
from repro.obs.environment import environment_fingerprint, fingerprint_digest
from repro.obs.ledger import RunLedger
from repro.obs.serving_telemetry import (
    DriftBaseline,
    DriftWatchdog,
    ServingTelemetry,
    fit_drift_baseline,
)
from repro.obs.progress import (
    NullProgress,
    ProgressEmitter,
    get_progress,
    progress_enabled,
    set_progress,
    use_progress,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogBucketHistogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    NoopSpan,
    NoopTracer,
    RecordingTracer,
    Span,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "bench",
    "dashboard",
    "export",
    "openmetrics",
    "probes",
    "progress",
    "serving_telemetry",
    "slo",
    "trend",
    "environment_fingerprint",
    "fingerprint_digest",
    "RunLedger",
    "ServingTelemetry",
    "DriftBaseline",
    "DriftWatchdog",
    "fit_drift_baseline",
    "ProgressEmitter",
    "NullProgress",
    "get_progress",
    "set_progress",
    "use_progress",
    "progress_enabled",
    "Span",
    "NoopSpan",
    "NoopTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "LogBucketHistogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]
