"""SQLite-backed run ledger: a persistent, queryable history of runs.

Every provenance-carrying artifact the stack produces — ``BENCH_*.json``
trajectories and single-record twins, JSONL span traces with headers,
metrics dumps, progress event streams — is a loose file until it lands
here.  The ledger (stdlib :mod:`sqlite3`, no dependencies) ingests them
all into one ``.sqlite`` file keyed three ways:

* **run id** — the artifact's own identity (``<utc-timestamp>-<pid>``);
* **git sha** — which code produced it;
* **environment digest** — which machine/toolchain produced it
  (:func:`~repro.obs.environment.fingerprint_digest`), so queries can
  refuse to compare numbers across incomparable environments.

Ingestion is idempotent per ``(run_id, kind)``: re-ingesting an artifact
replaces its rows, so pointing ``repro obs ingest`` at a glob repeatedly
is safe.  Progress streams additionally determine the run's *status*:
a stream whose tasks all reached an ``end`` event is ``complete``, any
other readable prefix is ``partial`` — interrupted runs stay visible
instead of vanishing with their process.

Query API highlights (each backing one ``repro obs`` CLI verb):
:meth:`RunLedger.runs`, :meth:`RunLedger.show`,
:meth:`RunLedger.history` (per-benchmark time series across N runs),
:meth:`RunLedger.bench_runs` (feeds :func:`repro.obs.trend.trend_runs`,
the multi-run regression gate), and :meth:`RunLedger.span_records`
(reconstructs a stored trace for span-tree rendering with memory
attribution).
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.environment import fingerprint_digest

__all__ = ["LEDGER_SCHEMA_VERSION", "IngestResult", "RunLedger", "render_span_tree"]

#: Bumped when the table layout changes; stored in ``ledger_meta``.
LEDGER_SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS ledger_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    schema TEXT,
    created_unix REAL,
    ingested_unix REAL NOT NULL,
    status TEXT NOT NULL DEFAULT 'complete',
    scale TEXT,
    git_sha TEXT,
    env_digest TEXT,
    environment_json TEXT,
    source_path TEXT,
    n_records INTEGER NOT NULL DEFAULT 0,
    UNIQUE (run_id, kind)
);
CREATE TABLE IF NOT EXISTS bench_records (
    run_key INTEGER NOT NULL REFERENCES runs(run_key) ON DELETE CASCADE,
    name TEXT NOT NULL,
    scale TEXT,
    repeats INTEGER,
    min_s REAL,
    median_s REAL,
    mean_s REAL,
    peak_bytes INTEGER,
    net_bytes INTEGER,
    solves INTEGER,
    created_unix REAL,
    record_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_bench_records_name ON bench_records(name);
CREATE TABLE IF NOT EXISTS spans (
    run_key INTEGER NOT NULL REFERENCES runs(run_key) ON DELETE CASCADE,
    span_id INTEGER,
    parent_id INTEGER,
    depth INTEGER,
    name TEXT,
    start_wall REAL,
    duration_s REAL,
    peak_bytes INTEGER,
    net_bytes INTEGER,
    attributes_json TEXT
);
CREATE INDEX IF NOT EXISTS idx_spans_run ON spans(run_key);
CREATE TABLE IF NOT EXISTS metric_values (
    run_key INTEGER NOT NULL REFERENCES runs(run_key) ON DELETE CASCADE,
    name TEXT NOT NULL,
    command TEXT,
    value_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS progress_events (
    run_key INTEGER NOT NULL REFERENCES runs(run_key) ON DELETE CASCADE,
    seq INTEGER,
    type TEXT NOT NULL,
    task TEXT,
    replicate_index INTEGER,
    completed INTEGER,
    total INTEGER,
    elapsed_s REAL,
    eta_s REAL,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_progress_run ON progress_events(run_key);
"""


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`RunLedger.ingest` call stored."""

    run_id: str
    kind: str  # "bench" | "trace" | "metrics" | "progress"
    n_records: int
    status: str
    replaced: bool


class RunLedger:
    """One SQLite ledger file; usable as a context manager."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        with self._conn:
            self._conn.executescript(_TABLES)
            self._conn.execute(
                "INSERT OR IGNORE INTO ledger_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(LEDGER_SCHEMA_VERSION)),
            )
        stored = self._conn.execute(
            "SELECT value FROM ledger_meta WHERE key = 'schema_version'"
        ).fetchone()
        if stored and int(stored["value"]) != LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"{self.path} uses ledger schema v{stored['value']}, "
                f"this build expects v{LEDGER_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- ingest

    def ingest(self, path) -> IngestResult:
        """Ingest one artifact file, dispatching on its content.

        Recognizes bench runs and single bench records (``.json``),
        metrics dumps (``.json`` with the ``repro.metrics/v1`` schema),
        span traces and progress streams (``.jsonl``, told apart by the
        header schema; headerless JSONL is treated as a legacy trace).
        Raises ``ValueError`` for anything else.
        """
        path = Path(path)
        if path.suffix == ".jsonl":
            return self._ingest_jsonl(path)
        data = json.loads(path.read_text())
        if isinstance(data, dict) and data.get("schema") == "repro.metrics/v1":
            return self._ingest_metrics(data, path)
        if isinstance(data, dict) and (
            isinstance(data.get("benchmarks"), list)
            or "timings_s" in data
            or str(data.get("schema", "")).startswith("repro.bench")
        ):
            from repro.obs.bench import load_bench_run

            return self._ingest_bench_run(load_bench_run(path), path)
        raise ValueError(f"{path}: not a recognized repro artifact")

    def _replace_run(self, run_id: str, kind: str, **columns) -> tuple[int, bool]:
        existing = self._conn.execute(
            "SELECT run_key FROM runs WHERE run_id = ? AND kind = ?", (run_id, kind)
        ).fetchone()
        if existing:
            self._conn.execute(
                "DELETE FROM runs WHERE run_key = ?", (existing["run_key"],)
            )
        environment = columns.pop("environment", None) or {}
        cursor = self._conn.execute(
            """
            INSERT INTO runs (run_id, kind, schema, created_unix, ingested_unix,
                              status, scale, git_sha, env_digest, environment_json,
                              source_path, n_records)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                run_id,
                kind,
                columns.get("schema"),
                columns.get("created_unix"),
                time.time(),
                columns.get("status", "complete"),
                columns.get("scale"),
                environment.get("git_sha"),
                fingerprint_digest(environment) if environment else None,
                json.dumps(environment, sort_keys=True, default=str),
                columns.get("source_path"),
                columns.get("n_records", 0),
            ),
        )
        return cursor.lastrowid, existing is not None

    def _ingest_bench_run(self, run: dict, path: Path) -> IngestResult:
        records = run.get("benchmarks", [])
        with self._conn:
            run_key, replaced = self._replace_run(
                str(run.get("run_id", path.stem)),
                "bench",
                schema=run.get("schema"),
                created_unix=run.get("created_unix"),
                scale=run.get("scale"),
                environment=run.get("environment") or {},
                source_path=str(path),
                n_records=len(records),
            )
            for data in records:
                timings = data.get("timings_s") or {}
                memory = data.get("memory") or {}
                health = data.get("solver_health") or {}
                self._conn.execute(
                    """
                    INSERT INTO bench_records (run_key, name, scale, repeats,
                        min_s, median_s, mean_s, peak_bytes, net_bytes, solves,
                        created_unix, record_json)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        run_key,
                        data.get("name"),
                        data.get("scale"),
                        data.get("repeats"),
                        timings.get("min"),
                        timings.get("median"),
                        timings.get("mean"),
                        memory.get("peak_bytes"),
                        memory.get("net_bytes"),
                        health.get("solves"),
                        data.get("created_unix"),
                        json.dumps(data, sort_keys=True, default=str),
                    ),
                )
        return IngestResult(
            run_id=str(run.get("run_id", path.stem)),
            kind="bench",
            n_records=len(records),
            status="complete",
            replaced=replaced,
        )

    def _ingest_metrics(self, data: dict, path: Path) -> IngestResult:
        metrics = data.get("metrics") or {}
        run_id = data.get("run_id") or path.stem
        with self._conn:
            run_key, replaced = self._replace_run(
                str(run_id),
                "metrics",
                schema=data.get("schema"),
                created_unix=data.get("created_unix"),
                environment=data.get("environment") or {},
                source_path=str(path),
                n_records=len(metrics),
            )
            for name, value in metrics.items():
                self._conn.execute(
                    "INSERT INTO metric_values (run_key, name, command, value_json) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        run_key,
                        str(name),
                        data.get("command"),
                        json.dumps(value, sort_keys=True, default=str),
                    ),
                )
        return IngestResult(
            run_id=str(run_id), kind="metrics", n_records=len(metrics),
            status="complete", replaced=replaced,
        )

    def _ingest_jsonl(self, path: Path) -> IngestResult:
        from repro.obs.export import load_header, load_jsonl
        from repro.obs.progress import PROGRESS_SCHEMA

        header = load_header(path) or {}
        records = load_jsonl(path)
        if header.get("schema") == PROGRESS_SCHEMA:
            return self._ingest_progress(header, records, path)
        return self._ingest_trace(header, records, path)

    def _ingest_trace(self, header: dict, records: list, path: Path) -> IngestResult:
        run_id = str(header.get("run_id") or path.stem)
        with self._conn:
            run_key, replaced = self._replace_run(
                run_id,
                "trace",
                schema=header.get("schema", "repro.trace/v1"),
                created_unix=header.get("created_unix"),
                environment=header.get("environment") or {},
                source_path=str(path),
                n_records=len(records),
            )
            for record in records:
                if not isinstance(record, dict):
                    continue
                attributes = record.get("attributes") or {}
                self._conn.execute(
                    """
                    INSERT INTO spans (run_key, span_id, parent_id, depth, name,
                        start_wall, duration_s, peak_bytes, net_bytes, attributes_json)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        run_key,
                        record.get("span_id"),
                        record.get("parent_id"),
                        record.get("depth"),
                        record.get("name"),
                        record.get("start_wall"),
                        record.get("duration_s"),
                        attributes.get("memory.peak_bytes"),
                        attributes.get("memory.net_bytes"),
                        json.dumps(attributes, sort_keys=True, default=str),
                    ),
                )
        return IngestResult(
            run_id=run_id, kind="trace", n_records=len(records),
            status="complete", replaced=replaced,
        )

    def _ingest_progress(self, header: dict, events: list, path: Path) -> IngestResult:
        run_id = str(header.get("run_id") or path.stem)
        started: dict[str, int] = {}
        ended: dict[str, str] = {}
        for event in events:
            if not isinstance(event, dict):
                continue
            task = str(event.get("task", "?"))
            if event.get("type") == "start":
                started[task] = started.get(task, 0) + 1
                ended.pop(task, None)
            elif event.get("type") == "end":
                ended[task] = str(event.get("status", "complete"))
        interrupted = (
            not events
            or set(started) != set(ended)
            or any(status != "complete" for status in ended.values())
        )
        status = "partial" if interrupted else "complete"
        with self._conn:
            run_key, replaced = self._replace_run(
                run_id,
                "progress",
                schema=header.get("schema"),
                created_unix=header.get("created_unix"),
                status=status,
                environment=header.get("environment") or {},
                source_path=str(path),
                n_records=len(events),
            )
            for event in events:
                if not isinstance(event, dict):
                    continue
                self._conn.execute(
                    """
                    INSERT INTO progress_events (run_key, seq, type, task,
                        replicate_index, completed, total, elapsed_s, eta_s,
                        payload_json)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        run_key,
                        event.get("seq"),
                        str(event.get("type", "?")),
                        event.get("task"),
                        event.get("index"),
                        event.get("completed"),
                        event.get("total"),
                        event.get("elapsed_s"),
                        event.get("eta_s"),
                        json.dumps(event, sort_keys=True, default=str),
                    ),
                )
        return IngestResult(
            run_id=run_id, kind="progress", n_records=len(events),
            status=status, replaced=replaced,
        )

    # ---------------------------------------------------------------- queries

    def runs(self, *, kind: str | None = None) -> list[dict]:
        """Every ingested run, oldest first; optionally one artifact kind."""
        query = (
            "SELECT run_id, kind, schema, created_unix, status, scale, git_sha, "
            "env_digest, source_path, n_records FROM runs"
        )
        params: tuple = ()
        if kind is not None:
            query += " WHERE kind = ?"
            params = (kind,)
        query += " ORDER BY created_unix, run_id"
        return [dict(row) for row in self._conn.execute(query, params)]

    def _run_key(self, run_id: str, kind: str | None = None) -> sqlite3.Row:
        query = "SELECT * FROM runs WHERE run_id = ?"
        params: list = [run_id]
        if kind is not None:
            query += " AND kind = ?"
            params.append(kind)
        rows = self._conn.execute(query + " ORDER BY kind", params).fetchall()
        if not rows:
            raise KeyError(f"no ingested run with id {run_id!r}")
        return rows[0]

    def metric_values(self, run_id: str) -> dict[str, dict]:
        """One run's ingested metrics, as ``{name: snapshot dict}``.

        The snapshots are exactly what the run's ``repro.metrics/v1``
        dump carried, so they feed :func:`repro.obs.slo.evaluate_slo`
        and the OpenMetrics exporter the same way a dump file does.
        Raises ``KeyError`` if the run id has no ingested metrics.
        """
        row = self._run_key(run_id, "metrics")
        return {
            r["name"]: json.loads(r["value_json"])
            for r in self._conn.execute(
                "SELECT name, value_json FROM metric_values WHERE run_key = ?",
                (row["run_key"],),
            )
        }

    def show(self, run_id: str) -> dict:
        """Everything stored about one run id (possibly several kinds)."""
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ? ORDER BY kind", (run_id,)
        ).fetchall()
        if not rows:
            raise KeyError(f"no ingested run with id {run_id!r}")
        out: dict = {"run_id": run_id, "artifacts": []}
        for row in rows:
            entry = dict(row)
            entry["environment"] = json.loads(entry.pop("environment_json") or "{}")
            run_key = entry.pop("run_key")
            if row["kind"] == "bench":
                entry["benchmarks"] = [
                    dict(r)
                    for r in self._conn.execute(
                        "SELECT name, repeats, min_s, median_s, mean_s, peak_bytes, "
                        "solves FROM bench_records WHERE run_key = ? ORDER BY name",
                        (run_key,),
                    )
                ]
            elif row["kind"] == "trace":
                entry["span_count"] = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM spans WHERE run_key = ?", (run_key,)
                ).fetchone()["n"]
            elif row["kind"] == "metrics":
                entry["metrics"] = {
                    r["name"]: json.loads(r["value_json"])
                    for r in self._conn.execute(
                        "SELECT name, value_json FROM metric_values WHERE run_key = ?",
                        (run_key,),
                    )
                }
            elif row["kind"] == "progress":
                entry["tasks"] = [
                    dict(r)
                    for r in self._conn.execute(
                        """
                        SELECT task,
                               MAX(completed) AS completed,
                               MAX(total) AS total,
                               MAX(elapsed_s) AS elapsed_s,
                               SUM(type = 'heartbeat') AS heartbeats,
                               MAX(CASE WHEN type = 'end' THEN payload_json END)
                                   AS end_json
                        FROM progress_events WHERE run_key = ?
                        GROUP BY task ORDER BY MIN(seq)
                        """,
                        (run_key,),
                    )
                ]
            out["artifacts"].append(entry)
        return out

    def bench_runs(self) -> list[dict]:
        """Reconstructed bench-run dicts (for :mod:`repro.obs.trend`)."""
        runs = []
        for row in self._conn.execute(
            "SELECT * FROM runs WHERE kind = 'bench' ORDER BY created_unix, run_id"
        ):
            benchmarks = [
                json.loads(r["record_json"])
                for r in self._conn.execute(
                    "SELECT record_json FROM bench_records WHERE run_key = ?",
                    (row["run_key"],),
                )
            ]
            runs.append(
                {
                    "run_id": row["run_id"],
                    "created_unix": row["created_unix"],
                    "scale": row["scale"],
                    "environment": json.loads(row["environment_json"] or "{}"),
                    "benchmarks": benchmarks,
                }
            )
        return runs

    def bench_names(self) -> list[str]:
        return [
            row["name"]
            for row in self._conn.execute(
                "SELECT DISTINCT name FROM bench_records ORDER BY name"
            )
        ]

    def history(self, name: str):
        """``name``'s time-ordered measurements across all bench runs."""
        from repro.obs.trend import history_series

        return history_series(self.bench_runs(), name)

    def span_records(self, run_id: str) -> list[dict]:
        """A stored trace's flat span records, ready for the renderers."""
        row = self._run_key(run_id, "trace")
        return [
            {
                "span_id": r["span_id"],
                "parent_id": r["parent_id"],
                "depth": r["depth"],
                "name": r["name"],
                "start_wall": r["start_wall"],
                "duration_s": r["duration_s"],
                "attributes": json.loads(r["attributes_json"] or "{}"),
            }
            for r in self._conn.execute(
                "SELECT * FROM spans WHERE run_key = ? ORDER BY rowid",
                (row["run_key"],),
            )
        ]

    def progress_events(self, run_id: str) -> list[dict]:
        row = self._run_key(run_id, "progress")
        return [
            json.loads(r["payload_json"])
            for r in self._conn.execute(
                "SELECT payload_json FROM progress_events WHERE run_key = ? "
                "ORDER BY seq, rowid",
                (row["run_key"],),
            )
        ]


def render_span_tree(records, *, max_spans: int = 200, max_attr_width: int = 100) -> str:
    """Indented span tree with explicit memory attribution columns.

    Like :func:`repro.obs.export.render_tree` but surfaces per-span
    ``memory.peak_bytes`` / ``memory.net_bytes`` as aligned MB columns
    (the ledger stores them first-class), keeping other attributes
    inline (elided at ``max_attr_width`` so the table stays readable —
    the full values live in the ledger's ``spans`` table).
    """
    rows = []
    shown = [r for r in records if "name" in r][:max_spans]
    for record in shown:
        attrs = dict(record.get("attributes") or {})
        peak = attrs.pop("memory.peak_bytes", None)
        net = attrs.pop("memory.net_bytes", None)
        attr_text = ", ".join(f"{k}={v}" for k, v in attrs.items())
        if len(attr_text) > max_attr_width:
            attr_text = attr_text[: max_attr_width - 3] + "..."
        duration = record.get("duration_s")
        rows.append(
            [
                "  " * int(record.get("depth") or 0) + str(record.get("name")),
                "-" if duration is None else f"{duration:.6f}",
                "-" if peak is None else f"{peak / 1e6:.2f}",
                "-" if net is None else f"{net / 1e6:+.2f}",
                attr_text,
            ]
        )
    if not rows:
        return "empty trace (0 spans)"
    from repro.experiments.report import ascii_table

    out = ascii_table(["span", "duration_s", "peak MB", "net MB", "attributes"], rows)
    total = sum(1 for r in records if "name" in r)
    if total > len(shown):
        out += f"\n... {total - len(shown)} more spans"
    return out
