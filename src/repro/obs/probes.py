"""Numeric health probes for solver and graph observability.

The paper's consistency regimes hinge on quantities that are invisible in
a final RMSE: conditioning of the grounded Laplacian as ``lambda`` and the
bandwidth vary, degree spread, connectivity, and iterative-solver effort.
These probes compute those quantities *cheaply* and attach them to spans.

Every ``record_*`` helper is a no-op on a non-recording span, so probes
cost nothing when tracing is disabled; condition estimation additionally
degrades from exact (small dense systems) to a power-iteration estimate
(large systems) so it never dominates the solve being observed.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = [
    "condition_estimate",
    "graph_stats",
    "record_graph_stats",
    "record_spd_system",
    "record_solve_info",
    "record_schur_blocks",
    "record_workspace_stats",
    "record_serving_stats",
]

#: Systems at or below this size get an exact 2-norm condition number.
EXACT_COND_MAX_SIZE = 512


def condition_estimate(matrix, *, exact_max_size: int = EXACT_COND_MAX_SIZE, iterations: int = 30) -> tuple[float, str]:
    """Estimate the 2-norm condition number of a symmetric matrix.

    Returns ``(estimate, method)`` where method is ``"exact"`` (SVD-based,
    for systems up to ``exact_max_size``) or ``"power_iteration"``
    (extreme-eigenvalue estimates from shifted power iterations — an
    O(iterations * nnz) upper-ish bound good to the order of magnitude,
    which is what regime diagnostics need).
    """
    n = matrix.shape[0]
    if n == 0:
        return 1.0, "exact"
    if n <= exact_max_size:
        dense = np.asarray(matrix.todense()) if sparse.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        return float(np.linalg.cond(dense)), "exact"

    if sparse.issparse(matrix):
        mat = matrix.tocsr()
        matvec = lambda v: mat @ v  # noqa: E731
    else:
        mat = np.asarray(matrix, dtype=np.float64)
        matvec = lambda v: mat @ v  # noqa: E731

    rng = np.random.default_rng(0)

    def dominant_eig(operator) -> float:
        vec = rng.normal(size=n)
        vec /= np.linalg.norm(vec)
        value = 0.0
        for _ in range(iterations):
            nxt = operator(vec)
            norm = float(np.linalg.norm(nxt))
            if norm == 0.0:
                return 0.0
            vec = nxt / norm
            value = float(vec @ operator(vec))
        return value

    lam_max = dominant_eig(matvec)
    if lam_max <= 0:
        return float("inf"), "power_iteration"
    # lambda_min of an SPD matrix via the dominant eigenvalue of the
    # spectrum flipped around lam_max: lam_max - A has dominant eigenvalue
    # lam_max - lam_min.
    flipped = dominant_eig(lambda v: lam_max * v - matvec(v))
    lam_min = lam_max - flipped
    if lam_min <= 0:
        return float("inf"), "power_iteration"
    return float(lam_max / lam_min), "power_iteration"


def graph_stats(weights, n_labeled: int | None = None) -> dict:
    """Cheap structural statistics of a similarity graph.

    Returns degree min/mean/max, positive-edge density, connected
    component count, isolated-vertex count, and (when ``n_labeled`` is
    given) the minimum labeled mass seen from any unlabeled vertex.
    """
    n = weights.shape[0]
    stats: dict = {"n_vertices": int(n)}
    if n == 0:
        return stats
    if sparse.issparse(weights):
        csr = weights.tocsr()
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        positive = csr.sign()
    else:
        dense = np.asarray(weights)
        degrees = dense.sum(axis=1)
        positive = sparse.csr_matrix(dense > 0)
    stats["degree_min"] = float(degrees.min())
    stats["degree_mean"] = float(degrees.mean())
    stats["degree_max"] = float(degrees.max())
    nnz_off = positive.nnz - int(positive.diagonal().sum())
    stats["nnz"] = int(positive.nnz)
    stats["edge_density"] = float(nnz_off / (n * (n - 1))) if n > 1 else 0.0
    from scipy.sparse.csgraph import connected_components

    n_components, labels = connected_components(positive, directed=False)
    stats["n_components"] = int(n_components)
    stats["isolated_vertices"] = int(np.sum(degrees == 0))
    if n_labeled is not None and 0 < n_labeled < n:
        if sparse.issparse(weights):
            labeled_mass = np.asarray(weights.tocsr()[n_labeled:, :n_labeled].sum(axis=1)).ravel()
        else:
            labeled_mass = np.asarray(weights)[n_labeled:, :n_labeled].sum(axis=1)
        stats["labeled_mass_min"] = float(labeled_mass.min())
    return stats


def record_graph_stats(span, weights, n_labeled: int | None = None) -> None:
    """Attach :func:`graph_stats` to ``span`` under ``graph.*`` keys."""
    if not span.recording:
        return
    for key, value in graph_stats(weights, n_labeled).items():
        span.set_attribute(f"graph.{key}", value)


def record_spd_system(span, matrix) -> None:
    """Attach system size and a condition estimate under ``system.*`` keys."""
    if not span.recording:
        return
    span.set_attribute("system.size", int(matrix.shape[0]))
    estimate, how = condition_estimate(matrix)
    span.set_attribute("system.condition_estimate", estimate)
    span.set_attribute("system.condition_method", how)


def record_solve_info(span, info) -> None:
    """Attach a :class:`~repro.linalg.solvers.SolveInfo` under ``solver.*``."""
    if not span.recording or info is None:
        return
    span.set_attribute("solver.method", info.method)
    span.set_attribute("solver.iterations", int(info.iterations))
    span.set_attribute("solver.converged", bool(info.converged))
    residual = info.final_residual
    if residual == residual:  # skip NaN (direct solves without a residual)
        span.set_attribute("solver.final_residual", float(residual))
    nnz = getattr(info, "nnz", None)
    fill = getattr(info, "fill_nnz", None)
    if nnz is not None:
        span.set_attribute("solver.nnz", int(nnz))
    if fill is not None:
        span.set_attribute("solver.fill_nnz", int(fill))
        if nnz:
            span.set_attribute("solver.fill_ratio", float(fill) / float(nnz))


def record_workspace_stats(span, stats) -> None:
    """Attach a :class:`~repro.linalg.workspace.WorkspaceStats` snapshot.

    Every counter lands under a ``workspace.*`` key, plus a derived
    ``workspace.factor_hit_rate`` when any factorization traffic
    occurred, so traces show how much amortization a sweep achieved.
    String-valued fields (``dtype_policy``, ``hierarchy_mode``) are
    attached verbatim, so traces also show *which path* a run took.
    """
    if not span.recording or stats is None:
        return
    for key, value in stats._asdict().items():
        span.set_attribute(
            f"workspace.{key}",
            value if isinstance(value, str) else int(value),
        )
    traffic = stats.factor_hits + stats.factor_misses
    if traffic:
        span.set_attribute(
            "workspace.factor_hit_rate", stats.factor_hits / traffic
        )


def record_serving_stats(span, stats) -> None:
    """Attach a serving stats snapshot under ``serving.*`` keys.

    Works with both counter tuples of the serving stack — a model's
    :class:`~repro.serving.model.ServingStats` (adds a derived
    ``serving.mean_batch_size``) and a server's
    :class:`~repro.serving.server.ServerStats` (adds
    ``serving.mean_flush_size`` and ``serving.pending``, and carries
    the error/flush-reason counters) — so traces show how much
    amortization request batching achieved and how the queue behaved.
    """
    if not span.recording or stats is None:
        return
    for key, value in stats._asdict().items():
        span.set_attribute(f"serving.{key}", int(value))
    batches = getattr(stats, "batches", None)
    if batches:
        span.set_attribute(
            "serving.mean_batch_size", stats.queries / batches
        )
    flushes = getattr(stats, "flushes", None)
    if flushes is not None:
        span.set_attribute("serving.pending", int(stats.pending))
        if flushes:
            span.set_attribute(
                "serving.mean_flush_size", stats.answered / flushes
            )


def record_schur_blocks(span, n: int, m: int) -> None:
    """Attach Schur-complement block sizes under ``schur.*`` keys."""
    if not span.recording:
        return
    span.set_attribute("schur.labeled_block", int(n))
    span.set_attribute("schur.unlabeled_block", int(m))
