"""Live progress telemetry for long-running experiment drivers.

A multi-hour sweep that prints nothing until it finishes is
indistinguishable from a hung one.  This module adds a lightweight event
stream alongside the existing span/metric instrumentation: a
:class:`ProgressEmitter` scopes work into *tasks* (one per
:func:`~repro.experiments.runner.run_replicates` call) and emits four
event types:

``start``
    A task began: label, total replicate count, worker count.
``replicate``
    One replicate completed: its seed-stream ``index`` (the position in
    every aggregate), running ``completed`` count, elapsed seconds, and
    an ETA extrapolated from the mean per-replicate rate.
``heartbeat``
    Periodic liveness signal (default every 5 s, plus one immediately
    after ``start`` so even an instant task proves the stream works).
``end``
    The task finished: final counts and a ``status`` of ``complete`` or
    ``interrupted`` (the task exited with replicates outstanding).

Events go to any combination of two sinks: a human-readable line stream
(typically stderr) and an append-only JSONL file whose records are
flushed and fsynced as written — an interrupted run leaves a readable
prefix, which is how the run ledger (:mod:`repro.obs.ledger`) recognises
partial runs.  The JSONL file opens with the same provenance header as
span traces (run id, creation time, environment fingerprint), so ledger
ingestion can key progress streams exactly like every other artifact.

Like the tracer and the metrics registry, the emitter is ambient: the
module-level default is a :class:`NullProgress` whose per-event cost is
one attribute lookup, and :func:`use_progress` temporarily installs a
real emitter for the duration of a driver run.  Under ``n_jobs > 1`` the
*parent* emits every event (workers only ship their results back via the
executor's record-shipping path), so the stream is ordered and complete
regardless of worker count.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "PROGRESS_SCHEMA",
    "ProgressEmitter",
    "NullProgress",
    "NullProgressTask",
    "get_progress",
    "set_progress",
    "use_progress",
    "progress_enabled",
]

#: Schema tag on the JSONL header line of a progress stream.
PROGRESS_SCHEMA = "repro.progress/v1"


def _default_run_id() -> str:
    import os

    return time.strftime("%Y%m%dT%H%M%S", time.gmtime()) + f"-{os.getpid()}"


class NullProgressTask:
    """Do-nothing task handle returned while progress is disabled."""

    __slots__ = ()

    enabled = False
    heartbeat_interval = None

    def replicate_done(self, index: int) -> None:
        pass

    def heartbeat(self) -> None:
        pass

    def maybe_heartbeat(self) -> None:
        pass

    def __enter__(self) -> "NullProgressTask":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_TASK = NullProgressTask()


class NullProgress:
    """Default emitter: produces nothing, costs (almost) nothing."""

    enabled = False
    heartbeat_interval = None

    def task(self, label: str, *, total: int, n_jobs: int = 1) -> NullProgressTask:
        return _NULL_TASK

    def close(self) -> None:
        pass


class ProgressTask:
    """One scoped unit of work (a ``run_replicates`` call) being tracked.

    Use as a context manager; entering emits ``start`` plus an initial
    heartbeat, :meth:`replicate_done` emits one ``replicate`` event per
    completed replicate, and exiting emits ``end`` — with
    ``status="interrupted"`` when replicates are outstanding (exception,
    Ctrl-C) so partial runs are distinguishable in the stream.
    """

    enabled = True

    def __init__(self, emitter: "ProgressEmitter", label: str, total: int, n_jobs: int):
        self._emitter = emitter
        self.label = label
        self.total = int(total)
        self.n_jobs = int(n_jobs)
        self.completed = 0
        self._t0 = 0.0
        self._last_heartbeat = 0.0

    @property
    def heartbeat_interval(self) -> float | None:
        return self._emitter.heartbeat_interval

    def _elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def _eta(self, elapsed: float) -> float | None:
        if self.completed <= 0 or self.total <= self.completed:
            return 0.0 if self.total <= self.completed else None
        return elapsed / self.completed * (self.total - self.completed)

    def __enter__(self) -> "ProgressTask":
        self._t0 = time.perf_counter()
        self._emitter._emit(
            {
                "type": "start",
                "task": self.label,
                "total": self.total,
                "n_jobs": self.n_jobs,
                "elapsed_s": 0.0,
            }
        )
        self.heartbeat()
        return self

    def replicate_done(self, index: int) -> None:
        """Record one completed replicate by its seed-stream position."""
        self.completed += 1
        elapsed = self._elapsed()
        self._emitter._emit(
            {
                "type": "replicate",
                "task": self.label,
                "index": int(index),
                "completed": self.completed,
                "total": self.total,
                "elapsed_s": elapsed,
                "eta_s": self._eta(elapsed),
            }
        )
        self.maybe_heartbeat()

    def heartbeat(self) -> None:
        """Emit a liveness event unconditionally."""
        elapsed = self._elapsed()
        self._last_heartbeat = time.perf_counter()
        self._emitter._emit(
            {
                "type": "heartbeat",
                "task": self.label,
                "completed": self.completed,
                "total": self.total,
                "elapsed_s": elapsed,
                "eta_s": self._eta(elapsed),
            }
        )

    def maybe_heartbeat(self) -> None:
        """Emit a heartbeat when the configured interval has elapsed."""
        interval = self._emitter.heartbeat_interval
        if interval is not None and time.perf_counter() - self._last_heartbeat >= interval:
            self.heartbeat()

    def __exit__(self, exc_type, exc, tb) -> None:
        status = "complete" if exc_type is None and self.completed >= self.total else "interrupted"
        event = {
            "type": "end",
            "task": self.label,
            "completed": self.completed,
            "total": self.total,
            "elapsed_s": self._elapsed(),
            "status": status,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        self._emitter._emit(event)


class ProgressEmitter:
    """Streams progress events to stderr-style text and/or fsynced JSONL.

    Parameters
    ----------
    stream:
        Writable text stream for human-readable lines (``sys.stderr``
        typically); ``None`` disables the text sink.
    jsonl_path:
        Path for the machine-readable event stream; opened immediately
        with a provenance header, each event flushed and fsynced so an
        interrupted run leaves a readable prefix.  ``None`` disables it.
    heartbeat_interval:
        Seconds between periodic heartbeats (``None`` = only the initial
        per-task heartbeat).
    run_id:
        Identity of this progress stream in the run ledger; defaults to
        the same ``<utc-timestamp>-<pid>`` shape bench runs use.
    """

    enabled = True

    def __init__(
        self,
        *,
        stream=None,
        jsonl_path=None,
        heartbeat_interval: float | None = 5.0,
        run_id: str | None = None,
    ):
        if stream is None and jsonl_path is None:
            raise ValueError("ProgressEmitter needs at least one sink (stream or jsonl_path)")
        self.stream = stream
        self.run_id = run_id or _default_run_id()
        self.heartbeat_interval = heartbeat_interval
        self._seq = 0
        self._sink = None
        if jsonl_path is not None:
            from repro.obs.environment import environment_fingerprint
            from repro.obs.export import JsonlSink

            self._sink = JsonlSink(jsonl_path)
            self._sink.write(
                {
                    "type": "header",
                    "schema": PROGRESS_SCHEMA,
                    "run_id": self.run_id,
                    "created_unix": time.time(),
                    "environment": environment_fingerprint(),
                }
            )

    @property
    def jsonl_path(self):
        return None if self._sink is None else self._sink.path

    def task(self, label: str, *, total: int, n_jobs: int = 1) -> ProgressTask:
        """Scope one replicate loop; use the returned object as a context manager."""
        return ProgressTask(self, label, total, n_jobs)

    def _emit(self, event: dict) -> None:
        self._seq += 1
        event = {"seq": self._seq, "run_id": self.run_id, **event}
        if self._sink is not None:
            self._sink.write(event)
        if self.stream is not None:
            self.stream.write(self._format_line(event) + "\n")
            self.stream.flush()

    @staticmethod
    def _format_line(event: dict) -> str:
        label = event.get("task", "?")
        kind = event["type"]
        completed, total = event.get("completed"), event.get("total")
        elapsed = event.get("elapsed_s")
        eta = event.get("eta_s")
        eta_text = "" if eta is None else f" eta {eta:.1f}s"
        if kind == "start":
            return f"[{label}] start: {total} replicate(s), {event.get('n_jobs', 1)} job(s)"
        if kind == "replicate":
            return (
                f"[{label}] replicate {completed}/{total} "
                f"(index {event.get('index')}) elapsed {elapsed:.1f}s{eta_text}"
            )
        if kind == "heartbeat":
            return f"[{label}] heartbeat {completed}/{total} elapsed {elapsed:.1f}s{eta_text}"
        if kind == "end":
            return (
                f"[{label}] {event.get('status', '?')}: {completed}/{total} "
                f"in {elapsed:.1f}s"
            )
        return f"[{label}] {kind}"

    def close(self) -> None:
        """Close the JSONL sink (idempotent); the text stream is not owned."""
        if self._sink is not None:
            self._sink.close()


_ACTIVE: NullProgress | ProgressEmitter = NullProgress()


def get_progress() -> NullProgress | ProgressEmitter:
    """The process-global active progress emitter (null by default)."""
    return _ACTIVE


def set_progress(emitter) -> None:
    """Install ``emitter`` as the process-global progress emitter."""
    global _ACTIVE
    _ACTIVE = emitter


@contextmanager
def use_progress(emitter):
    """Temporarily install ``emitter``, restoring the previous one on exit."""
    previous = _ACTIVE
    set_progress(emitter)
    try:
        yield emitter
    finally:
        set_progress(previous)


def progress_enabled() -> bool:
    """True when the active emitter produces events."""
    return _ACTIVE.enabled
