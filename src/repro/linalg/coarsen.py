"""Graph-coarsening multigrid preconditioner for large-N solves.

The soft/hard criteria solve ``(V + λL) f = (y; 0)`` where ``L`` is the
Laplacian of a similarity graph.  Exact sparse factorization tops out
around N ≈ 10⁴ in dimension ≥ 3 (splu fill-in grows super-linearly), and
plain Jacobi-preconditioned CG degrades as λ grows.  This module builds
the standard algebraic-multigrid remedy from the *graph itself*:

1. **Heavy-edge matching** (:func:`heavy_edge_matching`) greedily pairs
   each vertex with its heaviest still-unmatched neighbour, producing
   aggregates of size ≤ 2 — the classic coarsening of Karypis & Kumar's
   METIS and of aggregation AMG.
2. The matching defines a piecewise-constant **aggregation operator**
   ``P`` (one nonzero per row); the coarse graph is the Galerkin product
   ``W_c = PᵀWP`` (:func:`coarsen_weights`), which is again a similarity
   graph, and — the identity everything below relies on —
   ``PᵀL(W)P = L(W_c)``: *the Galerkin coarse operator of a graph
   Laplacian is the Laplacian of the coarsened graph*.
3. Repeating until the graph is small yields a
   :class:`CoarseningHierarchy` (:func:`build_hierarchy`).  The hierarchy
   depends only on the graph — **not** on λ or the labeled mask — so one
   hierarchy serves a whole λ-sweep: at each level,
   ``Pᵀ(V + λL)P = diag(PᵀvV) + λ L(W_c)`` re-assembles in O(nnz) from
   cached parts.
4. A **V-cycle** with damped-Jacobi pre/post smoothing and an exact
   factorization at the coarsest level
   (:class:`MultigridPreconditioner`) is a symmetric positive operator,
   hence a valid CG preconditioner; :func:`solve_multigrid` wraps it
   around :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.

The continuum-limit literature (Dunlop et al., *Large Data and Zero
Noise Limits of Graph-Based Semi-Supervised Learning*; Calder,
*Consistency of Lipschitz Learning*) is precisely the theory that coarse
graphs approximate fine ones — the coarse-grid correction is solving the
same SSL problem on a subsampled point cloud.

:class:`~repro.linalg.workspace.SolveWorkspace` exposes this as the
``"multigrid"`` sweep backend; :func:`~repro.linalg.solvers.solve_spd`
as ``method="multigrid"`` (extracting the graph from the system's
off-diagonal).  Measured at N=10⁵, d=3, k=10 (20-point λ-sweep): the
hierarchy builds once in ~1 s and each grid point solves in a handful of
V-cycles, where a single exact splu factorization costs ~80 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro import obs
from repro.exceptions import ConfigurationError, DataValidationError
from repro.linalg.advanced import preconditioned_conjugate_gradient
from repro.linalg.solvers import SPDFactorization, factorize_spd

__all__ = [
    "heavy_edge_matching",
    "aggregation_operator",
    "coarsen_weights",
    "graph_from_system",
    "CoarseLevel",
    "CoarseningHierarchy",
    "build_hierarchy",
    "MultigridPreconditioner",
    "solve_multigrid",
    "DEFAULT_MIN_COARSE_SIZE",
    "DEFAULT_OMEGA",
]

#: Coarsening stops once a level has at most this many vertices; the
#: coarsest level is then solved exactly (one small factorization).
DEFAULT_MIN_COARSE_SIZE = 1024

#: Damped-Jacobi smoothing weight.  ω = 0.7 damps the oscillatory half
#: of the spectrum on graph Laplacians without over-relaxing hubs.
DEFAULT_OMEGA = 0.7

#: Coarsening stalls (stop adding levels) when a matching pass removes
#: fewer than ``1 - STALL_RATIO`` of the vertices — star-like graphs can
#: defeat matching, and a level that barely shrinks only adds cost.
STALL_RATIO = 0.9

#: Default cap on hierarchy depth (a pair-matching hierarchy halves per
#: level, so 32 levels covers any representable graph; the cap guards
#: against stalls that slip past :data:`STALL_RATIO`).
DEFAULT_MAX_LEVELS = 32


def _as_csr(weights) -> sparse.csr_matrix:
    if sparse.issparse(weights):
        return weights.tocsr()
    return sparse.csr_matrix(np.asarray(weights, dtype=np.float64))


def heavy_edge_matching(weights) -> np.ndarray:
    """Aggregate labels from greedy heavy-edge matching.

    Visits vertices in index order; each unmatched vertex is paired with
    its heaviest unmatched neighbour (ties broken toward the smallest
    index, since CSR columns are sorted) or becomes a singleton
    aggregate.  Deterministic by construction.

    Returns an ``(n,)`` integer array mapping each vertex to its
    aggregate id in ``[0, n_coarse)``.
    """
    csr = _as_csr(weights)
    n = csr.shape[0]
    if csr.shape[0] != csr.shape[1]:
        raise DataValidationError(f"weights must be square, got {csr.shape}")
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    labels = np.full(n, -1, dtype=np.intp)
    n_coarse = 0
    for i in range(n):
        if labels[i] >= 0:
            continue
        start, stop = indptr[i], indptr[i + 1]
        row = indices[start:stop]
        candidates = (labels[row] < 0) & (row != i) & (data[start:stop] > 0)
        labels[i] = n_coarse
        if candidates.any():
            weights_i = np.where(candidates, data[start:stop], -np.inf)
            labels[row[int(np.argmax(weights_i))]] = n_coarse
        n_coarse += 1
    return labels


def aggregation_operator(labels: np.ndarray) -> sparse.csr_matrix:
    """The piecewise-constant prolongation ``P`` of an aggregate map.

    ``P`` has shape ``(n, n_coarse)`` with exactly one unit entry per
    row: ``P[i, labels[i]] = 1``.  Its transpose is the restriction
    (summation over aggregates).
    """
    labels = np.asarray(labels, dtype=np.intp)
    n = labels.shape[0]
    if n == 0:
        raise DataValidationError("labels must be non-empty")
    n_coarse = int(labels.max()) + 1
    if labels.min() < 0:
        raise DataValidationError("labels must be non-negative aggregate ids")
    return sparse.csr_matrix(
        (np.ones(n), (np.arange(n), labels)), shape=(n, n_coarse)
    )


def coarsen_weights(weights, prolongation: sparse.csr_matrix) -> sparse.csr_matrix:
    """Galerkin coarse graph ``W_c = PᵀWP`` (symmetric, non-negative).

    Intra-aggregate weights land on the diagonal of ``W_c`` as
    self-loops; like the fine graph's self-weights they cancel in the
    Laplacian quadratic form while keeping the degree bookkeeping
    consistent, so ``L(W_c) = PᵀL(W)P`` holds exactly.
    """
    csr = _as_csr(weights)
    return (prolongation.T @ csr @ prolongation).tocsr()


def _graph_laplacian(weights: sparse.csr_matrix) -> sparse.csr_matrix:
    degrees = np.asarray(weights.sum(axis=1)).ravel()
    return (sparse.diags(degrees, format="csr") - weights).tocsr()


def graph_from_system(matrix) -> sparse.csr_matrix:
    """Recover a similarity graph from an SPD system's off-diagonal.

    For ``A = V + λL(W)`` the off-diagonal is exactly ``-λ w_ij``, so
    ``W ∝ -offdiag(A)`` clipped at zero (positive off-diagonal entries —
    a non-Laplacian system — contribute nothing to the coarsening but do
    not break it).  The result is symmetrized so matching is well
    defined even for slightly asymmetric inputs.
    """
    csr = _as_csr(matrix)
    graph = csr - sparse.diags(csr.diagonal(), format="csr")
    graph = -graph
    graph.data = np.maximum(graph.data, 0.0)
    graph = graph.maximum(graph.T).tocsr()
    graph.eliminate_zeros()
    return graph


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a coarsening hierarchy.

    Attributes
    ----------
    prolongation:
        ``(n_fine, n_coarse)`` aggregation operator ``P`` mapping coarse
        vectors up to the fine level.
    weights:
        Coarse similarity graph ``W_c = PᵀWP``.
    laplacian:
        Its Laplacian ``L(W_c)`` — equal to ``PᵀL(W)P`` by the Galerkin
        identity, precomputed once because it is λ-independent.
    """

    prolongation: sparse.csr_matrix
    weights: sparse.csr_matrix
    laplacian: sparse.csr_matrix

    @property
    def n_fine(self) -> int:
        return int(self.prolongation.shape[0])

    @property
    def n_coarse(self) -> int:
        return int(self.prolongation.shape[1])


@dataclass(frozen=True)
class CoarseningHierarchy:
    """A λ-independent stack of coarse graphs for one similarity graph.

    ``levels[0].prolongation`` maps level-1 (first coarse) vectors to
    the fine graph; deeper levels continue the chain.  For a diagonal
    fine-level term ``diag(v)`` (the labeled-mask ``V`` of the soft
    criterion), :meth:`coarsen_diagonal` returns the per-level Galerkin
    diagonals ``Pᵀ…Pᵀ v`` — diagonal again because ``P`` has orthogonal
    columns of 0/1 entries.
    """

    n_vertices: int
    levels: tuple[CoarseLevel, ...] = field(default_factory=tuple)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Vertex counts per level, finest first."""
        return (self.n_vertices,) + tuple(lvl.n_coarse for lvl in self.levels)

    def coarsen_diagonal(self, values: np.ndarray) -> list[np.ndarray]:
        """Aggregate a fine-level diagonal through every level.

        ``Pᵀ diag(v) P`` is diagonal with entries ``Σ_{i∈agg} v_i``;
        returns one vector per coarse level (finest coarse first).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.n_vertices:
            raise DataValidationError(
                f"diagonal has length {values.shape[0]} but the hierarchy "
                f"was built over {self.n_vertices} vertices"
            )
        out = []
        current = values
        for level in self.levels:
            current = np.asarray(level.prolongation.T @ current).ravel()
            out.append(current)
        return out


def build_hierarchy(
    weights,
    *,
    min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
    max_levels: int = DEFAULT_MAX_LEVELS,
) -> CoarseningHierarchy:
    """Coarsen a similarity graph by repeated heavy-edge matching.

    Stops when the coarsest level has at most ``min_coarse_size``
    vertices, after ``max_levels`` levels, or when a matching pass
    stalls (shrinks the graph by less than ``1 -`` :data:`STALL_RATIO`).
    A graph already at or below ``min_coarse_size`` yields an empty
    hierarchy — the V-cycle then degenerates to one exact solve.
    """
    if min_coarse_size < 1:
        raise ConfigurationError(
            f"min_coarse_size must be >= 1, got {min_coarse_size}"
        )
    if max_levels < 0:
        raise ConfigurationError(f"max_levels must be >= 0, got {max_levels}")
    current = _as_csr(weights)
    n = int(current.shape[0])
    levels: list[CoarseLevel] = []
    with obs.span(
        "repro.coarsen.hierarchy",
        n_vertices=n,
        min_coarse_size=int(min_coarse_size),
    ) as span:
        while current.shape[0] > min_coarse_size and len(levels) < max_levels:
            labels = heavy_edge_matching(current)
            n_coarse = int(labels.max()) + 1
            if n_coarse >= STALL_RATIO * current.shape[0]:
                break
            prolongation = aggregation_operator(labels)
            coarse = coarsen_weights(current, prolongation)
            levels.append(
                CoarseLevel(
                    prolongation=prolongation,
                    weights=coarse,
                    laplacian=_graph_laplacian(coarse),
                )
            )
            current = coarse
        if span.recording:
            span.set_attribute("n_levels", len(levels))
            span.set_attribute(
                "n_coarsest", int(levels[-1].n_coarse) if levels else n
            )
        obs.get_registry().counter("coarsen.hierarchies").inc()
    return CoarseningHierarchy(n_vertices=n, levels=tuple(levels))


def _matvec(matrix, vector: np.ndarray) -> np.ndarray:
    product = matrix @ vector
    if sparse.issparse(product):  # pragma: no cover - defensive
        product = product.toarray().ravel()
    return np.asarray(product).ravel()


class MultigridPreconditioner:
    """Symmetric V-cycle over a stack of SPD level systems.

    Parameters
    ----------
    systems:
        Per-level system matrices, finest first; ``systems[-1]`` is
        factorized exactly.  For the soft criterion these are
        ``diag(v_l) + λ L_l`` with ``v_l, L_l`` from a
        :class:`CoarseningHierarchy`.
    prolongations:
        ``len(systems) - 1`` aggregation operators linking consecutive
        levels.
    omega:
        Damped-Jacobi smoothing weight in ``(0, 1]``.
    n_smooth:
        Pre- and post-smoothing sweeps per level (symmetric, so the
        V-cycle stays a valid CG preconditioner).

    Calling the instance applies one V-cycle to a residual: damped-Jacobi
    pre-smoothing, restriction of the remaining residual, recursion,
    prolongated coarse-grid correction, damped-Jacobi post-smoothing.
    The operator is symmetric positive definite whenever every level
    system is, so it can be passed directly as the ``preconditioner`` of
    :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.
    """

    def __init__(
        self,
        systems,
        prolongations,
        *,
        omega: float = DEFAULT_OMEGA,
        n_smooth: int = 1,
    ):
        systems = list(systems)
        prolongations = list(prolongations)
        if not systems:
            raise ConfigurationError("need at least one level system")
        if len(prolongations) != len(systems) - 1:
            raise ConfigurationError(
                f"{len(systems)} level systems need {len(systems) - 1} "
                f"prolongations, got {len(prolongations)}"
            )
        if not 0.0 < omega <= 1.0:
            raise ConfigurationError(f"omega must be in (0, 1], got {omega}")
        if n_smooth < 1:
            raise ConfigurationError(f"n_smooth must be >= 1, got {n_smooth}")
        self.omega = float(omega)
        self.n_smooth = int(n_smooth)
        self._systems = systems
        self._prolongations = prolongations
        self._inv_diagonals: list[np.ndarray] = []
        for level, system in enumerate(systems[:-1]):
            diagonal = (
                system.diagonal()
                if sparse.issparse(system)
                else np.diagonal(np.asarray(system)).copy()
            )
            diagonal = np.asarray(diagonal, dtype=np.float64)
            if diagonal.size and diagonal.min() <= 0:
                raise DataValidationError(
                    f"level-{level} system has a non-positive diagonal; "
                    "the damped-Jacobi smoother requires SPD level systems"
                )
            self._inv_diagonals.append(1.0 / diagonal)
        self._coarse_factor: SPDFactorization = factorize_spd(systems[-1])

    @classmethod
    def from_matrix(
        cls,
        matrix,
        *,
        hierarchy: CoarseningHierarchy | None = None,
        omega: float = DEFAULT_OMEGA,
        n_smooth: int = 1,
        min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
        max_levels: int = DEFAULT_MAX_LEVELS,
    ) -> "MultigridPreconditioner":
        """Build the level systems for one SPD matrix by pure Galerkin.

        ``hierarchy`` defaults to coarsening the graph recovered from the
        matrix's off-diagonal (:func:`graph_from_system`); level systems
        are the triple products ``PᵀAP``.  Callers sweeping λ over one
        graph should prefer assembling levels from a shared hierarchy
        (as :class:`~repro.linalg.workspace.SolveWorkspace` does) — this
        constructor recoarsens per call.
        """
        if hierarchy is None:
            hierarchy = build_hierarchy(
                graph_from_system(matrix),
                min_coarse_size=min_coarse_size,
                max_levels=max_levels,
            )
        systems = [matrix]
        prolongations = []
        current = matrix
        for level in hierarchy.levels:
            p = level.prolongation
            current = p.T @ current @ p
            if sparse.issparse(current):
                current = current.tocsr()
            systems.append(current)
            prolongations.append(p)
        return cls(systems, prolongations, omega=omega, n_smooth=n_smooth)

    @property
    def n_levels(self) -> int:
        return len(self._systems)

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        return self._cycle(0, np.asarray(residual, dtype=np.float64))

    def _smooth(self, level: int, rhs: np.ndarray, x: np.ndarray | None):
        """Damped-Jacobi sweeps ``x += ω D⁻¹ (rhs - A x)``."""
        system = self._systems[level]
        inv_diag = self._inv_diagonals[level]
        sweeps = self.n_smooth
        if x is None:
            x = self.omega * (inv_diag * rhs)
            sweeps -= 1
        for _ in range(sweeps):
            x = x + self.omega * (inv_diag * (rhs - _matvec(system, x)))
        return x

    def _cycle(self, level: int, rhs: np.ndarray) -> np.ndarray:
        if level == len(self._systems) - 1:
            return np.asarray(self._coarse_factor.solve(rhs)).ravel()
        x = self._smooth(level, rhs, None)
        prolongation = self._prolongations[level]
        coarse_residual = np.asarray(
            prolongation.T @ (rhs - _matvec(self._systems[level], x))
        ).ravel()
        x = x + np.asarray(prolongation @ self._cycle(level + 1, coarse_residual)).ravel()
        return self._smooth(level, rhs, x)


def solve_multigrid(
    matrix,
    rhs,
    *,
    x0=None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    preconditioner: MultigridPreconditioner | None = None,
    omega: float = DEFAULT_OMEGA,
    n_smooth: int = 1,
    min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
):
    """PCG with a coarsening V-cycle preconditioner.

    Builds a :class:`MultigridPreconditioner` from the matrix (unless one
    is supplied) and runs
    :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.
    Returns the same :class:`~repro.linalg.iterative.IterativeResult`;
    raises :class:`~repro.exceptions.ConvergenceError` past ``max_iter``.
    """
    if preconditioner is None:
        preconditioner = MultigridPreconditioner.from_matrix(
            matrix,
            omega=omega,
            n_smooth=n_smooth,
            min_coarse_size=min_coarse_size,
        )
    return preconditioned_conjugate_gradient(
        matrix,
        rhs,
        preconditioner=preconditioner,
        x0=x0,
        tol=tol,
        max_iter=max_iter,
    )
