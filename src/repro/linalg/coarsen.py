"""Graph-coarsening multigrid preconditioner for large-N solves.

The soft/hard criteria solve ``(V + λL) f = (y; 0)`` where ``L`` is the
Laplacian of a similarity graph.  Exact sparse factorization tops out
around N ≈ 10⁴ in dimension ≥ 3 (splu fill-in grows super-linearly), and
plain Jacobi-preconditioned CG degrades as λ grows.  This module builds
the standard algebraic-multigrid remedy from the *graph itself*:

1. **Heavy-edge matching** (:func:`heavy_edge_matching`) greedily pairs
   each vertex with its heaviest still-unmatched neighbour, producing
   aggregates of size ≤ 2 — the classic coarsening of Karypis & Kumar's
   METIS and of aggregation AMG.
2. The matching defines a piecewise-constant **aggregation operator**
   ``P`` (one nonzero per row); the coarse graph is the Galerkin product
   ``W_c = PᵀWP`` (:func:`coarsen_weights`), which is again a similarity
   graph, and — the identity everything below relies on —
   ``PᵀL(W)P = L(W_c)``: *the Galerkin coarse operator of a graph
   Laplacian is the Laplacian of the coarsened graph*.
3. Repeating until the graph is small yields a
   :class:`CoarseningHierarchy` (:func:`build_hierarchy`).  The hierarchy
   depends only on the graph — **not** on λ or the labeled mask — so one
   hierarchy serves a whole λ-sweep: at each level,
   ``Pᵀ(V + λL)P = diag(PᵀvV) + λ L(W_c)`` re-assembles in O(nnz) from
   cached parts.
4. A **V-cycle** with damped-Jacobi pre/post smoothing and an exact
   factorization at the coarsest level
   (:class:`MultigridPreconditioner`) is a symmetric positive operator,
   hence a valid CG preconditioner; :func:`solve_multigrid` wraps it
   around :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.

The continuum-limit literature (Dunlop et al., *Large Data and Zero
Noise Limits of Graph-Based Semi-Supervised Learning*; Calder,
*Consistency of Lipschitz Learning*) is precisely the theory that coarse
graphs approximate fine ones — the coarse-grid correction is solving the
same SSL problem on a subsampled point cloud.

:class:`~repro.linalg.workspace.SolveWorkspace` exposes this as the
``"multigrid"`` sweep backend; :func:`~repro.linalg.solvers.solve_spd`
as ``method="multigrid"`` (extracting the graph from the system's
off-diagonal).  Measured at N=10⁵, d=3, k=10 (20-point λ-sweep): the
hierarchy builds once in ~1 s and each grid point solves in a handful of
V-cycles, where a single exact splu factorization costs ~80 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro import obs
from repro.exceptions import ConfigurationError, DataValidationError
from repro.linalg.advanced import preconditioned_conjugate_gradient
from repro.linalg.solvers import SPDFactorization, factorize_spd

__all__ = [
    "heavy_edge_matching",
    "aggregation_operator",
    "coarsen_weights",
    "graph_from_system",
    "CoarseLevel",
    "CoarseningHierarchy",
    "build_hierarchy",
    "MatrixFreeHierarchy",
    "build_matrix_free_hierarchy",
    "MultigridPreconditioner",
    "MatrixFreeMultigridPreconditioner",
    "solve_multigrid",
    "DEFAULT_MIN_COARSE_SIZE",
    "DEFAULT_OMEGA",
    "DTYPE_POLICIES",
]

#: Smoothing precision policies.  ``"float64"`` is the historical exact
#: path; ``"float32"`` runs the damped-Jacobi sweeps (and residual
#: transfers between levels) in single precision while the coarsest
#: solve and the outer CG stay float64 — halving smoothing bandwidth at
#: the cost of a slightly weaker preconditioner.  Final solutions are
#: still converged by the float64 outer CG to its tolerance; the parity
#: suite pins the documented RMS tier (see docs/SCALING.md).
DTYPE_POLICIES = ("float64", "float32")

#: Coarsening stops once a level has at most this many vertices; the
#: coarsest level is then solved exactly (one small factorization).
DEFAULT_MIN_COARSE_SIZE = 1024

#: Damped-Jacobi smoothing weight.  ω = 0.7 damps the oscillatory half
#: of the spectrum on graph Laplacians without over-relaxing hubs.
DEFAULT_OMEGA = 0.7

#: Coarsening stalls (stop adding levels) when a matching pass removes
#: fewer than ``1 - STALL_RATIO`` of the vertices — star-like graphs can
#: defeat matching, and a level that barely shrinks only adds cost.
STALL_RATIO = 0.9

#: Default cap on hierarchy depth (a pair-matching hierarchy halves per
#: level, so 32 levels covers any representable graph; the cap guards
#: against stalls that slip past :data:`STALL_RATIO`).
DEFAULT_MAX_LEVELS = 32


def _as_csr(weights) -> sparse.csr_matrix:
    if sparse.issparse(weights):
        return weights.tocsr()
    return sparse.csr_matrix(np.asarray(weights, dtype=np.float64))


def heavy_edge_matching(weights) -> np.ndarray:
    """Aggregate labels from greedy heavy-edge matching.

    Visits vertices in index order; each unmatched vertex is paired with
    its heaviest unmatched neighbour (ties broken toward the smallest
    index, since CSR columns are sorted) or becomes a singleton
    aggregate.  Deterministic by construction.

    Returns an ``(n,)`` integer array mapping each vertex to its
    aggregate id in ``[0, n_coarse)``.
    """
    csr = _as_csr(weights)
    n = csr.shape[0]
    if csr.shape[0] != csr.shape[1]:
        raise DataValidationError(f"weights must be square, got {csr.shape}")
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    labels = np.full(n, -1, dtype=np.intp)
    n_coarse = 0
    for i in range(n):
        if labels[i] >= 0:
            continue
        start, stop = indptr[i], indptr[i + 1]
        row = indices[start:stop]
        candidates = (labels[row] < 0) & (row != i) & (data[start:stop] > 0)
        labels[i] = n_coarse
        if candidates.any():
            weights_i = np.where(candidates, data[start:stop], -np.inf)
            labels[row[int(np.argmax(weights_i))]] = n_coarse
        n_coarse += 1
    return labels


def aggregation_operator(labels: np.ndarray) -> sparse.csr_matrix:
    """The piecewise-constant prolongation ``P`` of an aggregate map.

    ``P`` has shape ``(n, n_coarse)`` with exactly one unit entry per
    row: ``P[i, labels[i]] = 1``.  Its transpose is the restriction
    (summation over aggregates).
    """
    labels = np.asarray(labels, dtype=np.intp)
    n = labels.shape[0]
    if n == 0:
        raise DataValidationError("labels must be non-empty")
    n_coarse = int(labels.max()) + 1
    if labels.min() < 0:
        raise DataValidationError("labels must be non-negative aggregate ids")
    return sparse.csr_matrix(
        (np.ones(n), (np.arange(n), labels)), shape=(n, n_coarse)
    )


def coarsen_weights(weights, prolongation: sparse.csr_matrix) -> sparse.csr_matrix:
    """Galerkin coarse graph ``W_c = PᵀWP`` (symmetric, non-negative).

    Intra-aggregate weights land on the diagonal of ``W_c`` as
    self-loops; like the fine graph's self-weights they cancel in the
    Laplacian quadratic form while keeping the degree bookkeeping
    consistent, so ``L(W_c) = PᵀL(W)P`` holds exactly.
    """
    csr = _as_csr(weights)
    return (prolongation.T @ csr @ prolongation).tocsr()


def _graph_laplacian(weights: sparse.csr_matrix) -> sparse.csr_matrix:
    degrees = np.asarray(weights.sum(axis=1)).ravel()
    return (sparse.diags(degrees, format="csr") - weights).tocsr()


def graph_from_system(matrix) -> sparse.csr_matrix:
    """Recover a similarity graph from an SPD system's off-diagonal.

    For ``A = V + λL(W)`` the off-diagonal is exactly ``-λ w_ij``, so
    ``W ∝ -offdiag(A)`` clipped at zero (positive off-diagonal entries —
    a non-Laplacian system — contribute nothing to the coarsening but do
    not break it).  The result is symmetrized so matching is well
    defined even for slightly asymmetric inputs.
    """
    csr = _as_csr(matrix)
    graph = csr - sparse.diags(csr.diagonal(), format="csr")
    graph = -graph
    graph.data = np.maximum(graph.data, 0.0)
    graph = graph.maximum(graph.T).tocsr()
    graph.eliminate_zeros()
    return graph


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a coarsening hierarchy.

    Attributes
    ----------
    prolongation:
        ``(n_fine, n_coarse)`` aggregation operator ``P`` mapping coarse
        vectors up to the fine level.
    weights:
        Coarse similarity graph ``W_c = PᵀWP``.
    laplacian:
        Its Laplacian ``L(W_c)`` — equal to ``PᵀL(W)P`` by the Galerkin
        identity, precomputed once because it is λ-independent.
    """

    prolongation: sparse.csr_matrix
    weights: sparse.csr_matrix
    laplacian: sparse.csr_matrix

    @property
    def n_fine(self) -> int:
        return int(self.prolongation.shape[0])

    @property
    def n_coarse(self) -> int:
        return int(self.prolongation.shape[1])


@dataclass(frozen=True)
class CoarseningHierarchy:
    """A λ-independent stack of coarse graphs for one similarity graph.

    ``levels[0].prolongation`` maps level-1 (first coarse) vectors to
    the fine graph; deeper levels continue the chain.  For a diagonal
    fine-level term ``diag(v)`` (the labeled-mask ``V`` of the soft
    criterion), :meth:`coarsen_diagonal` returns the per-level Galerkin
    diagonals ``Pᵀ…Pᵀ v`` — diagonal again because ``P`` has orthogonal
    columns of 0/1 entries.
    """

    n_vertices: int
    levels: tuple[CoarseLevel, ...] = field(default_factory=tuple)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Vertex counts per level, finest first."""
        return (self.n_vertices,) + tuple(lvl.n_coarse for lvl in self.levels)

    def coarsen_diagonal(self, values: np.ndarray) -> list[np.ndarray]:
        """Aggregate a fine-level diagonal through every level.

        ``Pᵀ diag(v) P`` is diagonal with entries ``Σ_{i∈agg} v_i``;
        returns one vector per coarse level (finest coarse first).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.n_vertices:
            raise DataValidationError(
                f"diagonal has length {values.shape[0]} but the hierarchy "
                f"was built over {self.n_vertices} vertices"
            )
        out = []
        current = values
        for level in self.levels:
            current = np.asarray(level.prolongation.T @ current).ravel()
            out.append(current)
        return out


def build_hierarchy(
    weights,
    *,
    min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
    max_levels: int = DEFAULT_MAX_LEVELS,
) -> CoarseningHierarchy:
    """Coarsen a similarity graph by repeated heavy-edge matching.

    Stops when the coarsest level has at most ``min_coarse_size``
    vertices, after ``max_levels`` levels, or when a matching pass
    stalls (shrinks the graph by less than ``1 -`` :data:`STALL_RATIO`).
    A graph already at or below ``min_coarse_size`` yields an empty
    hierarchy — the V-cycle then degenerates to one exact solve.
    """
    if min_coarse_size < 1:
        raise ConfigurationError(
            f"min_coarse_size must be >= 1, got {min_coarse_size}"
        )
    if max_levels < 0:
        raise ConfigurationError(f"max_levels must be >= 0, got {max_levels}")
    current = _as_csr(weights)
    n = int(current.shape[0])
    levels: list[CoarseLevel] = []
    with obs.span(
        "repro.coarsen.hierarchy",
        n_vertices=n,
        min_coarse_size=int(min_coarse_size),
    ) as span:
        while current.shape[0] > min_coarse_size and len(levels) < max_levels:
            labels = heavy_edge_matching(current)
            n_coarse = int(labels.max()) + 1
            if n_coarse >= STALL_RATIO * current.shape[0]:
                break
            prolongation = aggregation_operator(labels)
            coarse = coarsen_weights(current, prolongation)
            levels.append(
                CoarseLevel(
                    prolongation=prolongation,
                    weights=coarse,
                    laplacian=_graph_laplacian(coarse),
                )
            )
            current = coarse
        if span.recording:
            span.set_attribute("n_levels", len(levels))
            span.set_attribute(
                "n_coarsest", int(levels[-1].n_coarse) if levels else n
            )
        obs.get_registry().counter("coarsen.hierarchies").inc()
    return CoarseningHierarchy(n_vertices=n, levels=tuple(levels))


def _csr_bytes(matrix) -> int:
    """Retained bytes of a CSR matrix (data + indices + indptr)."""
    return int(
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    )


def _check_dtype_policy(dtype_policy: str) -> np.dtype:
    if dtype_policy not in DTYPE_POLICIES:
        raise ConfigurationError(
            f"dtype_policy must be one of {DTYPE_POLICIES}, "
            f"got {dtype_policy!r}"
        )
    return np.dtype(np.float32 if dtype_policy == "float32" else np.float64)


def _smoothing_cast(matrix, dtype: np.dtype):
    """A smoothing copy of a level system at the work dtype.

    For float64 this is the matrix itself (no copy); for float32 a CSR
    sharing the index structure with single-precision data, so the extra
    footprint is ``4 * nnz`` bytes, not a full second matrix.
    """
    if dtype == np.float64:
        return matrix
    csr = matrix.tocsr() if sparse.issparse(matrix) else sparse.csr_matrix(matrix)
    return sparse.csr_matrix(
        (csr.data.astype(np.float32), csr.indices, csr.indptr),
        shape=csr.shape,
    )


@dataclass(frozen=True)
class MatrixFreeHierarchy:
    """Aggregate maps of a coarsening hierarchy, without level matrices.

    :class:`CoarseningHierarchy` retains every level's prolongation,
    coarse graph and coarse Laplacian — ``O(Σ nnz_level)`` memory, which
    at N = 10⁶ rivals the fine graph itself several times over.  This
    variant keeps only what the V-cycle *applies*:

    * ``labels[l]`` — the matching at level ``l`` (length ``n_l``),
      driving restriction/prolongation between consecutive levels as a
      ``bincount`` / fancy-index instead of a CSR product;
    * ``composed[l]`` — the fine-to-level-``l+1`` aggregate map (length
      ``N``), so a smoothing-level operator applies as
      ``A_{l+1} v = diag(mask) v + λ · Pᵀ(L₀ (P v))`` against the *fine*
      Laplacian on the fly (the Galerkin identity
      ``PᵀL(W)P = L(PᵀWP)`` makes this exact);
    * ``lap_diagonals[l]`` — ``diag(L_{l+1})``, all the damped-Jacobi
      smoother needs of a level matrix;
    * the **coarsest** level's assembled graph/Laplacian, which stays
      exact (one small factorization per λ).

    Retained memory is ``O(N)`` per level map versus ``O(nnz_level)``
    per assembled level; the trade is that each smoothing sweep on a
    coarse level costs one fine-level SpMV (``O(nnz₀)``) instead of a
    coarse one.  ``level_nnz`` records what each assembled coarse graph
    *would* have stored, so memory-budget gates can compute the naive
    baseline without ever building it.

    The aggregates come from the same :func:`heavy_edge_matching` passes
    as :func:`build_hierarchy` on the same transiently-assembled coarse
    graphs, so the two hierarchies are *identical* as coarsenings — only
    the stored representation differs (pinned by the parity suite).
    """

    n_vertices: int
    fine_laplacian: sparse.csr_matrix
    labels: tuple[np.ndarray, ...] = field(default_factory=tuple)
    composed: tuple[np.ndarray, ...] = field(default_factory=tuple)
    lap_diagonals: tuple[np.ndarray, ...] = field(default_factory=tuple)
    level_nnz: tuple[int, ...] = field(default_factory=tuple)
    coarsest_weights: sparse.csr_matrix | None = None
    coarsest_laplacian: sparse.csr_matrix | None = None

    @property
    def sizes(self) -> tuple[int, ...]:
        """Vertex counts per level, finest first."""
        return (self.n_vertices,) + tuple(
            int(d.shape[0]) for d in self.lap_diagonals
        )

    @property
    def n_levels(self) -> int:
        """Total level count including the fine level."""
        return 1 + len(self.labels)

    def coarsen_diagonal(self, values: np.ndarray) -> list[np.ndarray]:
        """Aggregate a fine-level diagonal through every level.

        Same contract as
        :meth:`CoarseningHierarchy.coarsen_diagonal`: one vector per
        coarse level, finest coarse first — here a ``bincount`` over the
        composed maps instead of CSR products.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.n_vertices:
            raise DataValidationError(
                f"diagonal has length {values.shape[0]} but the hierarchy "
                f"was built over {self.n_vertices} vertices"
            )
        sizes = self.sizes
        return [
            np.bincount(comp, weights=values, minlength=sizes[l + 1])
            for l, comp in enumerate(self.composed)
        ]

    def retained_bytes(self) -> int:
        """Bytes actually held by this hierarchy (maps + coarsest CSRs)."""
        total = sum(arr.nbytes for arr in self.labels)
        total += sum(arr.nbytes for arr in self.composed)
        total += sum(arr.nbytes for arr in self.lap_diagonals)
        if self.coarsest_weights is not None:
            total += _csr_bytes(self.coarsest_weights)
        if self.coarsest_laplacian is not None:
            total += _csr_bytes(self.coarsest_laplacian)
        return int(total)

    def assembled_bytes_estimate(self) -> int:
        """What the assembled float64 hierarchy would retain, in bytes.

        The naive baseline the memory-budget gate compares against: per
        coarse level, the weights CSR plus the Laplacian CSR (same
        sparsity, 12 bytes per stored element at float64 data + int32
        indices) plus the one-entry-per-row prolongation — exactly the
        :class:`CoarseLevel` contents :func:`build_hierarchy` keeps.
        This deliberately *excludes* the per-λ assembled level systems,
        so the estimate understates the true assembled peak and the 40%
        budget derived from it is conservative.
        """
        sizes = self.sizes
        total = 0
        for level, nnz in enumerate(self.level_nnz):
            n_fine, n_coarse = sizes[level], sizes[level + 1]
            total += 2 * (12 * nnz + 4 * (n_coarse + 1))
            total += 12 * n_fine + 4 * (n_fine + 1)
        return int(total)


def build_matrix_free_hierarchy(
    weights,
    *,
    min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
    max_levels: int = DEFAULT_MAX_LEVELS,
    fine_laplacian=None,
) -> MatrixFreeHierarchy:
    """Coarsen like :func:`build_hierarchy`, retaining only aggregate maps.

    Runs the identical heavy-edge-matching loop over the identical
    transiently-assembled Galerkin coarse graphs — so the aggregates (and
    therefore the preconditioner's algebra) match
    :func:`build_hierarchy` exactly — but each level's assembled matrix
    is dropped as soon as the next matching pass has consumed it.  Only
    the coarsest graph and its Laplacian are kept for the exact bottom
    solve.  Peak *transient* memory is two adjacent levels; *retained*
    memory is ``O(N)`` maps (see :class:`MatrixFreeHierarchy`).

    Callers that already hold ``L(weights)`` (e.g. a
    :class:`~repro.linalg.workspace.SolveWorkspace`, which assembles it
    for the fine systems anyway) should pass it as ``fine_laplacian`` so
    the hierarchy shares it instead of retaining a second 12-bytes-per-nnz
    copy of the largest matrix in the pipeline.
    """
    if min_coarse_size < 1:
        raise ConfigurationError(
            f"min_coarse_size must be >= 1, got {min_coarse_size}"
        )
    if max_levels < 0:
        raise ConfigurationError(f"max_levels must be >= 0, got {max_levels}")
    fine = _as_csr(weights)
    n = int(fine.shape[0])
    if fine_laplacian is None:
        fine_laplacian = _graph_laplacian(fine)
    else:
        fine_laplacian = _as_csr(fine_laplacian)
        if fine_laplacian.shape != fine.shape:
            raise DataValidationError(
                f"fine_laplacian has shape {fine_laplacian.shape} but the "
                f"graph is {fine.shape}"
            )
    labels_per_level: list[np.ndarray] = []
    composed_maps: list[np.ndarray] = []
    lap_diagonals: list[np.ndarray] = []
    level_nnz: list[int] = []
    current = fine
    composed: np.ndarray | None = None
    with obs.span(
        "repro.coarsen.hierarchy",
        n_vertices=n,
        min_coarse_size=int(min_coarse_size),
        hierarchy_mode="matrix_free",
    ) as span:
        while current.shape[0] > min_coarse_size and len(labels_per_level) < max_levels:
            labels = heavy_edge_matching(current)
            n_coarse = int(labels.max()) + 1
            if n_coarse >= STALL_RATIO * current.shape[0]:
                break
            prolongation = aggregation_operator(labels)
            coarse = coarsen_weights(current, prolongation)
            labels_per_level.append(labels)
            composed = labels if composed is None else labels[composed]
            composed_maps.append(composed)
            degrees = np.asarray(coarse.sum(axis=1)).ravel()
            lap_diagonals.append(degrees - coarse.diagonal())
            level_nnz.append(int(coarse.nnz))
            current = coarse  # the previous level's matrix is now garbage
        if span.recording:
            span.set_attribute("n_levels", len(labels_per_level))
            span.set_attribute(
                "n_coarsest",
                int(current.shape[0]) if labels_per_level else n,
            )
        obs.get_registry().counter("coarsen.hierarchies").inc()
    return MatrixFreeHierarchy(
        n_vertices=n,
        fine_laplacian=fine_laplacian,
        labels=tuple(labels_per_level),
        composed=tuple(composed_maps),
        lap_diagonals=tuple(lap_diagonals),
        level_nnz=tuple(level_nnz),
        coarsest_weights=current,
        coarsest_laplacian=(
            _graph_laplacian(current) if labels_per_level else fine_laplacian
        ),
    )


def _matvec(matrix, vector: np.ndarray) -> np.ndarray:
    product = matrix @ vector
    if sparse.issparse(product):  # pragma: no cover - defensive
        product = product.toarray().ravel()
    return np.asarray(product).ravel()


class MultigridPreconditioner:
    """Symmetric V-cycle over a stack of SPD level systems.

    Parameters
    ----------
    systems:
        Per-level system matrices, finest first; ``systems[-1]`` is
        factorized exactly.  For the soft criterion these are
        ``diag(v_l) + λ L_l`` with ``v_l, L_l`` from a
        :class:`CoarseningHierarchy`.
    prolongations:
        ``len(systems) - 1`` aggregation operators linking consecutive
        levels.
    omega:
        Damped-Jacobi smoothing weight in ``(0, 1]``.
    n_smooth:
        Pre- and post-smoothing sweeps per level (symmetric, so the
        V-cycle stays a valid CG preconditioner).
    dtype_policy:
        ``"float64"`` (default, the historical exact path) or
        ``"float32"``: smoothing sweeps and level transfers run in
        single precision against float32-data copies of the level
        systems, while the coarsest solve stays float64.  See
        :data:`DTYPE_POLICIES`.

    Calling the instance applies one V-cycle to a residual: damped-Jacobi
    pre-smoothing, restriction of the remaining residual, recursion,
    prolongated coarse-grid correction, damped-Jacobi post-smoothing.
    The operator is symmetric positive definite whenever every level
    system is, so it can be passed directly as the ``preconditioner`` of
    :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.
    """

    def __init__(
        self,
        systems,
        prolongations,
        *,
        omega: float = DEFAULT_OMEGA,
        n_smooth: int = 1,
        dtype_policy: str = "float64",
    ):
        systems = list(systems)
        prolongations = list(prolongations)
        if not systems:
            raise ConfigurationError("need at least one level system")
        if len(prolongations) != len(systems) - 1:
            raise ConfigurationError(
                f"{len(systems)} level systems need {len(systems) - 1} "
                f"prolongations, got {len(prolongations)}"
            )
        if not 0.0 < omega <= 1.0:
            raise ConfigurationError(f"omega must be in (0, 1], got {omega}")
        if n_smooth < 1:
            raise ConfigurationError(f"n_smooth must be >= 1, got {n_smooth}")
        self.omega = float(omega)
        self.n_smooth = int(n_smooth)
        self.dtype_policy = str(dtype_policy)
        self._work_dtype = _check_dtype_policy(self.dtype_policy)
        self._systems = systems
        self._prolongations = prolongations
        self._inv_diagonals: list[np.ndarray] = []
        for level, system in enumerate(systems[:-1]):
            diagonal = (
                system.diagonal()
                if sparse.issparse(system)
                else np.diagonal(np.asarray(system)).copy()
            )
            diagonal = np.asarray(diagonal, dtype=np.float64)
            if diagonal.size and diagonal.min() <= 0:
                raise DataValidationError(
                    f"level-{level} system has a non-positive diagonal; "
                    "the damped-Jacobi smoother requires SPD level systems"
                )
            self._inv_diagonals.append(
                (1.0 / diagonal).astype(self._work_dtype, copy=False)
            )
        self._smooth_systems = [
            _smoothing_cast(system, self._work_dtype) for system in systems[:-1]
        ]
        self._coarse_factor: SPDFactorization = factorize_spd(systems[-1])

    @classmethod
    def from_matrix(
        cls,
        matrix,
        *,
        hierarchy: CoarseningHierarchy | None = None,
        omega: float = DEFAULT_OMEGA,
        n_smooth: int = 1,
        min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
        max_levels: int = DEFAULT_MAX_LEVELS,
        dtype_policy: str = "float64",
    ) -> "MultigridPreconditioner":
        """Build the level systems for one SPD matrix by pure Galerkin.

        ``hierarchy`` defaults to coarsening the graph recovered from the
        matrix's off-diagonal (:func:`graph_from_system`); level systems
        are the triple products ``PᵀAP``.  Callers sweeping λ over one
        graph should prefer assembling levels from a shared hierarchy
        (as :class:`~repro.linalg.workspace.SolveWorkspace` does) — this
        constructor recoarsens per call.
        """
        if hierarchy is None:
            hierarchy = build_hierarchy(
                graph_from_system(matrix),
                min_coarse_size=min_coarse_size,
                max_levels=max_levels,
            )
        systems = [matrix]
        prolongations = []
        current = matrix
        for level in hierarchy.levels:
            p = level.prolongation
            current = p.T @ current @ p
            if sparse.issparse(current):
                current = current.tocsr()
            systems.append(current)
            prolongations.append(p)
        return cls(
            systems, prolongations, omega=omega, n_smooth=n_smooth,
            dtype_policy=dtype_policy,
        )

    @property
    def n_levels(self) -> int:
        return len(self._systems)

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        rhs = np.asarray(residual, dtype=np.float64)
        x = self._cycle(0, np.asarray(rhs, dtype=self._work_dtype))
        return np.asarray(x, dtype=np.float64)

    def _smooth(self, level: int, rhs: np.ndarray, x: np.ndarray | None):
        """Damped-Jacobi sweeps ``x += ω D⁻¹ (rhs - A x)``."""
        system = self._smooth_systems[level]
        inv_diag = self._inv_diagonals[level]
        sweeps = self.n_smooth
        if x is None:
            x = self.omega * (inv_diag * rhs)
            sweeps -= 1
        for _ in range(sweeps):
            x = x + self.omega * (inv_diag * (rhs - _matvec(system, x)))
        return x

    def _cycle(self, level: int, rhs: np.ndarray) -> np.ndarray:
        if level == len(self._systems) - 1:
            coarse = self._coarse_factor.solve(np.asarray(rhs, dtype=np.float64))
            return np.asarray(coarse, dtype=self._work_dtype).ravel()
        x = self._smooth(level, rhs, None)
        prolongation = self._prolongations[level]
        coarse_residual = np.asarray(
            prolongation.T @ (rhs - _matvec(self._smooth_systems[level], x)),
            dtype=self._work_dtype,
        ).ravel()
        x = x + np.asarray(
            prolongation @ self._cycle(level + 1, coarse_residual),
            dtype=self._work_dtype,
        ).ravel()
        return self._smooth(level, rhs, x)


class MatrixFreeMultigridPreconditioner:
    """Symmetric V-cycle applying coarse operators through aggregate maps.

    Functionally a :class:`MultigridPreconditioner` for the level-system
    family ``A_l = diag(mask_l) + λ L_l``, but no coarse matrix is ever
    stored: a smoothing level applies its operator on the fly as

    .. math:: A_l v \\;=\\; \\mathrm{diag}(mask_l)\\,v
              \\; + \\; λ\\, P_l^T\\,(L_0\\,(P_l v))

    where ``P_l`` is the composed fine-to-level aggregation (a
    fancy-index up, a ``bincount`` down) and ``L_0`` the fine Laplacian
    the workspace already holds — exact by the Galerkin identity
    ``PᵀL(W)P = L(PᵀWP)``.  Level transfers use the per-level matchings
    the same way.  Only the coarsest level is assembled and factorized
    (float64, per λ), so retained memory is the hierarchy's ``O(N)``
    maps instead of ``O(Σ nnz_level)`` CSR stacks; the trade is that
    each coarse smoothing sweep costs a fine-level SpMV.

    Parameters
    ----------
    fine_system:
        Assembled fine system ``V + λL`` — required by the outer CG
        anyway, so it is shared rather than duplicated.
    hierarchy:
        A :class:`MatrixFreeHierarchy` over the same graph.
    lam:
        The λ of this preconditioner's system family.
    mask_diagonals:
        Per-coarse-level aggregated labeled-mask diagonals, finest
        coarse first (``hierarchy.coarsen_diagonal(indicator)``).
    omega / n_smooth / dtype_policy:
        As :class:`MultigridPreconditioner`; under ``"float32"`` the
        smoothing SpMVs run against float32-data copies of the fine
        system and fine Laplacian (``4 nnz₀`` extra bytes total) while
        the coarsest solve and the outer CG stay float64.
    """

    def __init__(
        self,
        fine_system,
        hierarchy: MatrixFreeHierarchy,
        lam: float,
        mask_diagonals,
        *,
        omega: float = DEFAULT_OMEGA,
        n_smooth: int = 1,
        dtype_policy: str = "float64",
    ):
        if not 0.0 < omega <= 1.0:
            raise ConfigurationError(f"omega must be in (0, 1], got {omega}")
        if n_smooth < 1:
            raise ConfigurationError(f"n_smooth must be >= 1, got {n_smooth}")
        mask_diagonals = [
            np.asarray(mask, dtype=np.float64).ravel() for mask in mask_diagonals
        ]
        if len(mask_diagonals) != len(hierarchy.labels):
            raise ConfigurationError(
                f"hierarchy has {len(hierarchy.labels)} coarse levels but "
                f"{len(mask_diagonals)} mask diagonals were given"
            )
        self.omega = float(omega)
        self.n_smooth = int(n_smooth)
        self.dtype_policy = str(dtype_policy)
        self._work_dtype = _check_dtype_policy(self.dtype_policy)
        self._hierarchy = hierarchy
        self._lam = float(lam)
        self._sizes = hierarchy.sizes

        # Inverse diagonals for the damped-Jacobi sweeps on every
        # smoothing level (0 .. n_levels - 2); the coarse ones come from
        # the O(n_l) cached pieces, never from an assembled matrix.
        diagonals = [
            np.asarray(
                fine_system.diagonal()
                if sparse.issparse(fine_system)
                else np.diagonal(np.asarray(fine_system)).copy(),
                dtype=np.float64,
            )
        ]
        for mask, lap_diag in zip(
            mask_diagonals[:-1], hierarchy.lap_diagonals[:-1]
        ):
            diagonals.append(mask + self._lam * lap_diag)
        self._inv_diagonals: list[np.ndarray] = []
        for level, diagonal in enumerate(diagonals):
            if diagonal.size and diagonal.min() <= 0:
                raise DataValidationError(
                    f"level-{level} system has a non-positive diagonal; "
                    "the damped-Jacobi smoother requires SPD level systems"
                )
            self._inv_diagonals.append(
                (1.0 / diagonal).astype(self._work_dtype, copy=False)
            )
        self._masks = [
            mask.astype(self._work_dtype, copy=False) for mask in mask_diagonals
        ]
        self._fine_smooth = _smoothing_cast(fine_system, self._work_dtype)
        self._lap_smooth = _smoothing_cast(
            hierarchy.fine_laplacian, self._work_dtype
        )
        if hierarchy.labels:
            coarsest_system = (
                self._lam * hierarchy.coarsest_laplacian
                + sparse.diags(mask_diagonals[-1], format="csr")
            ).tocsr()
        else:
            coarsest_system = fine_system
        self._coarse_factor: SPDFactorization = factorize_spd(coarsest_system)

    @property
    def n_levels(self) -> int:
        return self._hierarchy.n_levels

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        rhs = np.asarray(residual, dtype=np.float64)
        x = self._cycle(0, np.asarray(rhs, dtype=self._work_dtype))
        return np.asarray(x, dtype=np.float64)

    def _apply(self, level: int, v: np.ndarray) -> np.ndarray:
        """``A_level @ v`` without an assembled level matrix."""
        if level == 0:
            return _matvec(self._fine_smooth, v)
        composed = self._hierarchy.composed[level - 1]
        # P v (fancy-index up), L0 ·, Pᵀ (bincount down): the Galerkin
        # coarse Laplacian applied through the fine one.
        lap_product = self._lap_smooth @ v[composed]
        restricted = np.bincount(
            composed, weights=lap_product, minlength=v.shape[0]
        )
        return self._masks[level - 1] * v + self._lam * np.asarray(
            restricted, dtype=self._work_dtype
        )

    def _smooth(self, level: int, rhs: np.ndarray, x: np.ndarray | None):
        """Damped-Jacobi sweeps ``x += ω D⁻¹ (rhs - A x)``."""
        inv_diag = self._inv_diagonals[level]
        sweeps = self.n_smooth
        if x is None:
            x = self.omega * (inv_diag * rhs)
            sweeps -= 1
        for _ in range(sweeps):
            x = x + self.omega * (inv_diag * (rhs - self._apply(level, x)))
        return x

    def _cycle(self, level: int, rhs: np.ndarray) -> np.ndarray:
        if level == self.n_levels - 1:
            coarse = self._coarse_factor.solve(np.asarray(rhs, dtype=np.float64))
            return np.asarray(coarse, dtype=self._work_dtype).ravel()
        x = self._smooth(level, rhs, None)
        labels = self._hierarchy.labels[level]
        residual = rhs - self._apply(level, x)
        coarse_residual = np.asarray(
            np.bincount(
                labels, weights=residual, minlength=self._sizes[level + 1]
            ),
            dtype=self._work_dtype,
        )
        x = x + self._cycle(level + 1, coarse_residual)[labels]
        return self._smooth(level, rhs, x)


def solve_multigrid(
    matrix,
    rhs,
    *,
    x0=None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    preconditioner: MultigridPreconditioner | None = None,
    omega: float = DEFAULT_OMEGA,
    n_smooth: int = 1,
    min_coarse_size: int = DEFAULT_MIN_COARSE_SIZE,
):
    """PCG with a coarsening V-cycle preconditioner.

    Builds a :class:`MultigridPreconditioner` from the matrix (unless one
    is supplied) and runs
    :func:`~repro.linalg.advanced.preconditioned_conjugate_gradient`.
    Returns the same :class:`~repro.linalg.iterative.IterativeResult`;
    raises :class:`~repro.exceptions.ConvergenceError` past ``max_iter``.
    """
    if preconditioner is None:
        preconditioner = MultigridPreconditioner.from_matrix(
            matrix,
            omega=omega,
            n_smooth=n_smooth,
            min_coarse_size=min_coarse_size,
        )
    return preconditioned_conjugate_gradient(
        matrix,
        rhs,
        preconditioner=preconditioner,
        x0=x0,
        tol=tol,
        max_iter=max_iter,
    )
