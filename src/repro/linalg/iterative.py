"""Iterative linear-system solvers written from scratch.

Three classical methods for ``A x = b``:

* :func:`jacobi` — simultaneous-displacement splitting; its iteration on
  the hard criterion's system *is* Zhu et al.'s label-propagation update
  ``f_u <- D22^{-1}(W22 f_u + W21 y)``.
* :func:`gauss_seidel` — successive displacement; converges faster on the
  same diagonally-dominant systems.
* :func:`conjugate_gradient` — Krylov method for SPD systems; the
  default iterative backend for large graphs.

Each returns an :class:`IterativeResult` carrying the solution, iteration
count, and residual history, and raises
:class:`~repro.exceptions.ConvergenceError` when tolerance is not met.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ConvergenceError, DataValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.validation import check_vector

__all__ = ["IterativeResult", "jacobi", "gauss_seidel", "conjugate_gradient"]


@dataclass(frozen=True)
class IterativeResult:
    """Solution of an iterative solve plus convergence evidence.

    Attributes
    ----------
    x:
        Approximate solution vector.
    iterations:
        Iterations actually performed.
    residual_norms:
        2-norm of the residual ``b - A x`` after each iteration.
    converged:
        True when the final relative residual is below tolerance.
    """

    x: np.ndarray
    iterations: int
    residual_norms: tuple[float, ...]
    converged: bool

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _as_operator(matrix):
    """Return (matvec, diagonal, n) for a dense or sparse square matrix."""
    if sparse.issparse(matrix):
        mat = matrix.tocsr()
        if mat.shape[0] != mat.shape[1]:
            raise DataValidationError(f"matrix must be square, got {mat.shape}")
        return (lambda v: mat @ v), mat.diagonal(), mat.shape[0]
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise DataValidationError(f"matrix must be square 2-d, got shape {mat.shape}")
    return (lambda v: mat @ v), np.diagonal(mat).copy(), mat.shape[0]


def _prepare(matrix, rhs, x0):
    matvec, diag, n = _as_operator(matrix)
    rhs = check_vector(rhs, "rhs", min_length=0)
    if rhs.shape[0] != n:
        raise DataValidationError(f"rhs length {rhs.shape[0]} does not match matrix size {n}")
    if x0 is None:
        x = np.zeros(n)
    else:
        x = check_vector(x0, "x0", min_length=0).copy()
        if x.shape[0] != n:
            raise DataValidationError(f"x0 length {x.shape[0]} does not match matrix size {n}")
    return matvec, diag, n, rhs, x


def _tolerance_scale(rhs: np.ndarray) -> float:
    norm = float(np.linalg.norm(rhs))
    return norm if norm > 0 else 1.0


def _observe_iterative(solver: str, span, result: IterativeResult) -> IterativeResult:
    """Record one iterative solve into the active span and metrics."""
    if span.recording:
        span.set_attribute("size", int(result.x.shape[0]))
        span.set_attribute("iterations", int(result.iterations))
        span.set_attribute("final_residual", result.final_residual)
        span.set_attribute("converged", result.converged)
    registry = obs_metrics.get_registry()
    registry.counter(f"linalg.{solver}.solves").inc()
    registry.histogram(f"linalg.{solver}.iterations").observe(result.iterations)
    return result


def jacobi(matrix, rhs, *, x0=None, tol: float = 1e-10, max_iter: int = 10_000) -> IterativeResult:
    """Jacobi iteration ``x <- D^{-1} (b - (A - D) x)``.

    Converges when the spectral radius of ``D^{-1}(A - D)`` is below one —
    guaranteed for strictly diagonally dominant systems such as the hard
    criterion's ``D22 - W22`` on graphs where every unlabeled vertex has
    positive weight to the labeled set.
    """
    with obs_trace.span("repro.linalg.jacobi") as span:
        return _observe_iterative(
            "jacobi", span, _jacobi_impl(matrix, rhs, x0=x0, tol=tol, max_iter=max_iter)
        )


def _jacobi_impl(matrix, rhs, *, x0, tol: float, max_iter: int) -> IterativeResult:
    matvec, diag, n, rhs, x = _prepare(matrix, rhs, x0)
    if n and np.any(diag == 0):
        raise DataValidationError("jacobi requires a zero-free diagonal")
    scale = _tolerance_scale(rhs)
    residuals: list[float] = []
    for iteration in range(1, max_iter + 1):
        residual = rhs - matvec(x)
        res_norm = float(np.linalg.norm(residual))
        residuals.append(res_norm)
        if res_norm <= tol * scale:
            return IterativeResult(x, iteration - 1, tuple(residuals), True)
        x = x + residual / diag
    residual = rhs - matvec(x)
    res_norm = float(np.linalg.norm(residual))
    residuals.append(res_norm)
    if res_norm <= tol * scale:
        return IterativeResult(x, max_iter, tuple(residuals), True)
    raise ConvergenceError(
        f"jacobi did not converge in {max_iter} iterations "
        f"(relative residual {res_norm / scale:.3e} > tol {tol:.1e})",
        iterations=max_iter,
        residual=res_norm,
    )


def gauss_seidel(matrix, rhs, *, x0=None, tol: float = 1e-10, max_iter: int = 10_000) -> IterativeResult:
    """Gauss-Seidel iteration (forward sweeps).

    Uses the latest components within each sweep; converges for symmetric
    positive-definite and for strictly diagonally dominant systems.
    """
    with obs_trace.span("repro.linalg.gauss_seidel") as span:
        return _observe_iterative(
            "gauss_seidel",
            span,
            _gauss_seidel_impl(matrix, rhs, x0=x0, tol=tol, max_iter=max_iter),
        )


def _gauss_seidel_impl(matrix, rhs, *, x0, tol: float, max_iter: int) -> IterativeResult:
    if sparse.issparse(matrix):
        dense = np.asarray(matrix.todense())
    else:
        dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise DataValidationError(f"matrix must be square 2-d, got shape {dense.shape}")
    n = dense.shape[0]
    diag = np.diagonal(dense).copy()
    if n and np.any(diag == 0):
        raise DataValidationError("gauss_seidel requires a zero-free diagonal")
    rhs = check_vector(rhs, "rhs", min_length=0)
    if rhs.shape[0] != n:
        raise DataValidationError(f"rhs length {rhs.shape[0]} does not match matrix size {n}")
    x = np.zeros(n) if x0 is None else check_vector(x0, "x0", min_length=0).copy()
    if x.shape[0] != n:
        raise DataValidationError(f"x0 length {x.shape[0]} does not match matrix size {n}")

    strict_lower = np.tril(dense, k=-1)
    upper = np.triu(dense, k=1)
    lower_with_diag = strict_lower + np.diag(diag)
    scale = _tolerance_scale(rhs)
    residuals: list[float] = []
    from scipy.linalg import solve_triangular

    for iteration in range(1, max_iter + 1):
        residual = rhs - dense @ x
        res_norm = float(np.linalg.norm(residual))
        residuals.append(res_norm)
        if res_norm <= tol * scale:
            return IterativeResult(x, iteration - 1, tuple(residuals), True)
        x = solve_triangular(lower_with_diag, rhs - upper @ x, lower=True)
    residual = rhs - dense @ x
    res_norm = float(np.linalg.norm(residual))
    residuals.append(res_norm)
    if res_norm <= tol * scale:
        return IterativeResult(x, max_iter, tuple(residuals), True)
    raise ConvergenceError(
        f"gauss_seidel did not converge in {max_iter} iterations "
        f"(relative residual {res_norm / scale:.3e} > tol {tol:.1e})",
        iterations=max_iter,
        residual=res_norm,
    )


def conjugate_gradient(matrix, rhs, *, x0=None, tol: float = 1e-10, max_iter: int | None = None) -> IterativeResult:
    """Conjugate gradients for symmetric positive-definite systems.

    Classic Hestenes-Stiefel recurrence with residual-norm tracking.
    ``max_iter`` defaults to ``10 n`` (CG terminates in at most ``n``
    exact-arithmetic steps; the slack absorbs floating-point drift).
    """
    with obs_trace.span("repro.linalg.cg") as span:
        return _observe_iterative(
            "cg", span, _cg_impl(matrix, rhs, x0=x0, tol=tol, max_iter=max_iter)
        )


def _cg_impl(matrix, rhs, *, x0, tol: float, max_iter: int | None) -> IterativeResult:
    matvec, _, n, rhs, x = _prepare(matrix, rhs, x0)
    if max_iter is None:
        max_iter = max(10 * n, 50)
    scale = _tolerance_scale(rhs)
    residual = rhs - matvec(x)
    direction = residual.copy()
    res_sq = float(residual @ residual)
    residuals = [float(np.sqrt(res_sq))]
    if residuals[-1] <= tol * scale:
        return IterativeResult(x, 0, tuple(residuals), True)
    for iteration in range(1, max_iter + 1):
        a_direction = matvec(direction)
        curvature = float(direction @ a_direction)
        if curvature <= 0:
            raise ConvergenceError(
                "conjugate_gradient encountered non-positive curvature; "
                "the matrix is not positive definite",
                iterations=iteration,
                residual=residuals[-1],
            )
        step = res_sq / curvature
        x = x + step * direction
        residual = residual - step * a_direction
        new_res_sq = float(residual @ residual)
        residuals.append(float(np.sqrt(new_res_sq)))
        if residuals[-1] <= tol * scale:
            return IterativeResult(x, iteration, tuple(residuals), True)
        direction = residual + (new_res_sq / res_sq) * direction
        res_sq = new_res_sq
    raise ConvergenceError(
        f"conjugate_gradient did not converge in {max_iter} iterations "
        f"(relative residual {residuals[-1] / scale:.3e} > tol {tol:.1e})",
        iterations=max_iter,
        residual=residuals[-1],
    )
