"""Linear-algebra substrate: block inversion, Neumann series, iterative solvers."""

from repro.linalg.advanced import (
    jacobi_preconditioner,
    preconditioned_conjugate_gradient,
    sor,
)
from repro.linalg.block import BlockMatrix, block_inverse, schur_complement
from repro.linalg.coarsen import (
    CoarseningHierarchy,
    MultigridPreconditioner,
    build_hierarchy,
    coarsen_weights,
    heavy_edge_matching,
    solve_multigrid,
)
from repro.linalg.iterative import (
    IterativeResult,
    conjugate_gradient,
    gauss_seidel,
    jacobi,
)
from repro.linalg.neumann import NeumannDiagnostics, neumann_inverse, neumann_partial_sums
from repro.linalg.solvers import (
    SolveInfo,
    SPDFactorization,
    factorize_spd,
    solve_spd,
    solve_square,
)

# Imported after solvers: workspace builds on the factorization layer.
from repro.linalg.workspace import (  # noqa: E402
    SWEEP_BACKENDS,
    SolveWorkspace,
    WorkspaceStats,
)

__all__ = [
    "BlockMatrix",
    "block_inverse",
    "schur_complement",
    "neumann_partial_sums",
    "neumann_inverse",
    "NeumannDiagnostics",
    "jacobi",
    "gauss_seidel",
    "conjugate_gradient",
    "IterativeResult",
    "solve_spd",
    "solve_square",
    "SolveInfo",
    "SPDFactorization",
    "factorize_spd",
    "sor",
    "preconditioned_conjugate_gradient",
    "jacobi_preconditioner",
    "SolveWorkspace",
    "WorkspaceStats",
    "SWEEP_BACKENDS",
    "CoarseningHierarchy",
    "MultigridPreconditioner",
    "build_hierarchy",
    "coarsen_weights",
    "heavy_edge_matching",
    "solve_multigrid",
]
