"""Unified linear-solver dispatch.

The core criteria reduce to solving symmetric (positive-definite after
reachability holds) systems.  :func:`solve_spd` picks a backend by name:

* ``"direct"`` — dense Cholesky (``scipy.linalg.cho_factor``) with an LU
  fallback for marginally indefinite inputs;
* ``"cg"`` — this library's conjugate gradients;
* ``"jacobi"`` / ``"gauss_seidel"`` — classical splittings (Jacobi on the
  hard system is exactly label propagation);
* ``"sparse"`` — scipy's sparse factorization (``splu``).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as dense_linalg
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.exceptions import ConfigurationError, SingularSystemError
from repro.linalg.iterative import conjugate_gradient, gauss_seidel, jacobi
from repro.utils.validation import check_vector

__all__ = ["solve_spd", "solve_square"]

_ITERATIVE = {
    "cg": conjugate_gradient,
    "jacobi": jacobi,
    "gauss_seidel": gauss_seidel,
}


def solve_square(matrix, rhs) -> np.ndarray:
    """Direct solve of a general square system, dense or sparse.

    Raises :class:`~repro.exceptions.SingularSystemError` on singular
    input instead of numpy's ``LinAlgError``.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    try:
        if sparse.issparse(matrix):
            factor = splu(matrix.tocsc())
            return factor.solve(rhs)
        return np.linalg.solve(np.asarray(matrix, dtype=np.float64), rhs)
    except (np.linalg.LinAlgError, RuntimeError) as exc:
        raise SingularSystemError(f"linear system is singular: {exc}") from exc


def solve_spd(matrix, rhs, *, method: str = "direct", tol: float = 1e-10, max_iter: int | None = None) -> np.ndarray:
    """Solve a symmetric positive-definite system with a chosen backend.

    Parameters
    ----------
    matrix:
        SPD matrix, dense or scipy sparse.
    rhs:
        Right-hand-side vector.
    method:
        ``"direct"``, ``"sparse"``, ``"cg"``, ``"jacobi"`` or
        ``"gauss_seidel"``.
    tol, max_iter:
        Forwarded to the iterative backends.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    if method == "direct":
        dense = np.asarray(matrix.todense()) if sparse.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        try:
            factor = dense_linalg.cho_factor(dense, check_finite=False)
            return dense_linalg.cho_solve(factor, rhs, check_finite=False)
        except dense_linalg.LinAlgError:
            # Marginally semidefinite systems (e.g. lambda = 0 soft systems)
            # fall back to LU, raising a library error if truly singular.
            return solve_square(dense, rhs)
    if method == "sparse":
        mat = matrix if sparse.issparse(matrix) else sparse.csc_matrix(matrix)
        return solve_square(mat, rhs)
    if method in _ITERATIVE:
        kwargs = {"tol": tol}
        if max_iter is not None:
            kwargs["max_iter"] = max_iter
        return _ITERATIVE[method](matrix, rhs, **kwargs).x
    known = "direct, sparse, " + ", ".join(sorted(_ITERATIVE))
    raise ConfigurationError(f"unknown solver method {method!r}; known: {known}")
