"""Unified linear-solver dispatch.

The core criteria reduce to solving symmetric (positive-definite after
reachability holds) systems.  :func:`solve_spd` picks a backend by name:

* ``"direct"`` — dense Cholesky (``scipy.linalg.cho_factor``) with an LU
  fallback for marginally indefinite inputs; sparse inputs stay sparse
  and are routed to the sparse factorization instead of being densified;
* ``"cg"`` — this library's conjugate gradients;
* ``"jacobi"`` / ``"gauss_seidel"`` — classical splittings (Jacobi on the
  hard system is exactly label propagation);
* ``"sparse"`` — symmetric-mode sparse LU (``splu`` with the
  ``MMD_AT_PLUS_A`` fill-reducing ordering, the standard sparse-Cholesky
  stand-in when no supernodal Cholesky is available);
* ``"multigrid"`` — CG preconditioned by a graph-coarsening V-cycle
  (:mod:`repro.linalg.coarsen`): no large factorization, so it scales
  past the splu fill-in wall to N = 10⁵⁺ graph systems.

:func:`factorize_spd` exposes the factorization itself, so callers with
many right-hand sides on one system (multiclass one-vs-rest columns, the
Gaussian-field posterior covariance) factor once and solve repeatedly.

With ``return_info=True`` every backend also reports a :class:`SolveInfo`
(iterations, final residual, convergence flag, and — for sparse
factorizations — input nnz and factor fill-in) so callers and the
telemetry layer in :mod:`repro.obs` can observe solver health instead
of discarding it.  Direct backends only compute the (matvec-costing)
residual when tracing is enabled, keeping the default path at seed speed.
"""

from __future__ import annotations

import math
import warnings
from typing import NamedTuple

import numpy as np
from scipy import linalg as dense_linalg
from scipy import sparse
from scipy.sparse.linalg import splu

from repro import obs
from repro.exceptions import ConfigurationError, SingularSystemError
from repro.linalg.iterative import conjugate_gradient, gauss_seidel, jacobi
from repro.utils.validation import check_vector

__all__ = ["SolveInfo", "SPDFactorization", "factorize_spd", "solve_spd", "solve_square"]

_ITERATIVE = {
    "cg": conjugate_gradient,
    "jacobi": jacobi,
    "gauss_seidel": gauss_seidel,
}


class SolveInfo(NamedTuple):
    """Health report for one linear solve.

    A NamedTuple rather than a dataclass: it is constructed on every
    solve, including the telemetry-disabled path, and tuple construction
    keeps that near-free.

    Attributes
    ----------
    method:
        Backend that actually ran (``"cholesky"``, ``"lu"``,
        ``"sparse_lu"``, ``"cg"``, ``"jacobi"``, ``"gauss_seidel"``) —
        may differ from the requested method when a fallback fires.
    size:
        System dimension.
    iterations:
        Iterations performed (0 for direct factorizations).
    final_residual:
        2-norm of ``b - A x`` after the solve.  ``nan`` for direct
        backends unless tracing is enabled (computing it costs a matvec).
    converged:
        False only when an iterative backend stopped above tolerance
        (currently unreachable through :func:`solve_spd`, which raises;
        kept for callers constructing SolveInfo from raw iterative runs).
    nnz:
        Stored nonzeros of the system matrix, for sparse factorizations
        (``None`` on dense and iterative backends).
    fill_nnz:
        Nonzeros of the computed factors ``L + U``; ``fill_nnz / nnz`` is
        the fill-in ratio the obs probes report (``None`` when not a
        sparse factorization).
    warm_started:
        True when an iterative backend started from a caller-supplied
        ``x0`` rather than the zero vector.
    iterations_saved:
        Iterations avoided relative to a known cold-start baseline
        (``None`` when no baseline is available; populated by
        :class:`~repro.linalg.workspace.SolveWorkspace` sweeps).
    """

    method: str
    size: int
    iterations: int = 0
    final_residual: float = math.nan
    converged: bool = True
    nnz: int | None = None
    fill_nnz: int | None = None
    warm_started: bool = False
    iterations_saved: int | None = None


class SPDFactorization:
    """A reusable factorization of one SPD system.

    Dense inputs get a Cholesky factorization (LU fallback for marginally
    semidefinite systems); sparse inputs get a symmetric-mode ``splu``
    with a fill-reducing ordering and are never densified.  ``solve``
    accepts 1-d right-hand sides or 2-d blocks of them, so callers with
    many right-hand sides (multiclass columns, posterior covariances)
    factor once and back-substitute per column.
    """

    def __init__(self, matrix):
        if sparse.issparse(matrix):
            csc = matrix.tocsc()
            self.size = int(csc.shape[0])
            self.nnz: int | None = int(csc.nnz)
            try:
                try:
                    factor = splu(
                        csc,
                        permc_spec="MMD_AT_PLUS_A",
                        options={"SymmetricMode": True},
                    )
                except RuntimeError:
                    # Symmetric mode restricts pivoting; retry with the
                    # default (partial-pivoting) factorization before
                    # declaring the system singular.
                    factor = splu(csc)
            except RuntimeError as exc:
                raise SingularSystemError(
                    f"sparse system is singular: {exc}"
                ) from exc
            self.method = "sparse_lu"
            self.fill_nnz: int | None = int(factor.L.nnz + factor.U.nnz)
            self._solve = factor.solve
            return

        dense = np.asarray(matrix, dtype=np.float64)
        self.size = int(dense.shape[0])
        self.nnz = None
        self.fill_nnz = None
        try:
            cho = dense_linalg.cho_factor(dense, check_finite=False)
            self.method = "cholesky"
            self._solve = lambda rhs: dense_linalg.cho_solve(
                cho, rhs, check_finite=False
            )
        except dense_linalg.LinAlgError:
            # Marginally semidefinite systems (e.g. lambda = 0 soft
            # systems) fall back to LU, raising a library error if truly
            # singular.
            try:
                with warnings.catch_warnings():
                    # lu_factor warns (rather than raises) on an exactly
                    # zero pivot; the check below turns that case into
                    # the library's SingularSystemError.
                    warnings.simplefilter("ignore", dense_linalg.LinAlgWarning)
                    lu, piv = dense_linalg.lu_factor(dense, check_finite=False)
            except (dense_linalg.LinAlgError, ValueError) as exc:
                raise SingularSystemError(
                    f"linear system is singular: {exc}"
                ) from exc
            if np.any(np.abs(np.diagonal(lu)) < np.finfo(np.float64).tiny):
                raise SingularSystemError(
                    "linear system is singular: zero pivot in LU factorization"
                )
            self.method = "lu"
            self._solve = lambda rhs: dense_linalg.lu_solve(
                (lu, piv), rhs, check_finite=False
            )

    def solve(self, rhs) -> np.ndarray:
        """Back-substitute one right-hand side (1-d) or a block (2-d)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        return self._solve(rhs)

    def info(self, *, final_residual: float = math.nan) -> SolveInfo:
        """A :class:`SolveInfo` describing this factorization."""
        return SolveInfo(
            method=self.method,
            size=self.size,
            final_residual=final_residual,
            nnz=self.nnz,
            fill_nnz=self.fill_nnz,
        )


def factorize_spd(matrix) -> SPDFactorization:
    """Factor an SPD matrix once for repeated solves.

    Dense matrices are Cholesky-factored; sparse matrices are factored
    with symmetric-mode sparse LU *without densification*.  Raises
    :class:`~repro.exceptions.SingularSystemError` on singular input.
    """
    return SPDFactorization(matrix)


def _residual_norm(matrix, x, rhs) -> float:
    product = matrix @ x
    if sparse.issparse(matrix):
        product = np.asarray(product).ravel()
    return float(np.linalg.norm(rhs - product))


def solve_square(matrix, rhs) -> np.ndarray:
    """Direct solve of a general square system, dense or sparse.

    Raises :class:`~repro.exceptions.SingularSystemError` on singular
    input instead of numpy's ``LinAlgError``.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    try:
        if sparse.issparse(matrix):
            factor = splu(matrix.tocsc())
            return factor.solve(rhs)
        return np.linalg.solve(np.asarray(matrix, dtype=np.float64), rhs)
    except (np.linalg.LinAlgError, RuntimeError) as exc:
        raise SingularSystemError(f"linear system is singular: {exc}") from exc


def solve_spd(
    matrix,
    rhs,
    *,
    method: str = "direct",
    tol: float = 1e-10,
    max_iter: int | None = None,
    x0=None,
    return_info: bool = False,
):
    """Solve a symmetric positive-definite system with a chosen backend.

    Parameters
    ----------
    matrix:
        SPD matrix, dense or scipy sparse.  Sparse matrices are *never*
        densified: ``method="direct"`` routes them to the sparse
        factorization.
    rhs:
        Right-hand-side vector.
    method:
        ``"direct"``, ``"sparse"``, ``"multigrid"`` (coarsening V-cycle
        preconditioned CG, :mod:`repro.linalg.coarsen` — the large-N
        choice when factorization fill-in is prohibitive), ``"cg"``,
        ``"jacobi"`` or ``"gauss_seidel"``.
    tol, max_iter:
        Forwarded to the iterative backends.
    x0:
        Warm-start vector for the iterative backends (they already
        accepted one; this threads it through).  Ignored by the direct
        backends, whose answer does not depend on a starting point.
    return_info:
        When true, return ``(x, SolveInfo)`` instead of just ``x``;
        warm-started iterative solves set ``info.warm_started``.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    size = rhs.shape[0]
    if method in ("direct", "sparse"):
        if method == "sparse" and not sparse.issparse(matrix):
            matrix = sparse.csc_matrix(matrix)
        factor = factorize_spd(matrix)
        x = factor.solve(rhs)
        if not return_info:
            return x
        residual = _residual_norm(matrix, x, rhs) if obs.tracing_enabled() else math.nan
        return x, factor.info(final_residual=residual)
    if method == "multigrid":
        # Imported lazily: coarsen builds on this module's factorizations.
        from repro.linalg.coarsen import solve_multigrid

        result = solve_multigrid(matrix, rhs, x0=x0, tol=tol, max_iter=max_iter)
        if not return_info:
            return result.x
        info = SolveInfo(
            method=method,
            size=size,
            iterations=result.iterations,
            final_residual=result.final_residual,
            converged=result.converged,
            warm_started=x0 is not None,
        )
        return result.x, info
    if method in _ITERATIVE:
        kwargs = {"tol": tol}
        if max_iter is not None:
            kwargs["max_iter"] = max_iter
        if x0 is not None:
            kwargs["x0"] = x0
        result = _ITERATIVE[method](matrix, rhs, **kwargs)
        if not return_info:
            return result.x
        info = SolveInfo(
            method=method,
            size=size,
            iterations=result.iterations,
            final_residual=result.final_residual,
            converged=result.converged,
            warm_started=x0 is not None,
        )
        return result.x, info
    known = "direct, sparse, multigrid, " + ", ".join(sorted(_ITERATIVE))
    raise ConfigurationError(f"unknown solver method {method!r}; known: {known}")
