"""Unified linear-solver dispatch.

The core criteria reduce to solving symmetric (positive-definite after
reachability holds) systems.  :func:`solve_spd` picks a backend by name:

* ``"direct"`` — dense Cholesky (``scipy.linalg.cho_factor``) with an LU
  fallback for marginally indefinite inputs;
* ``"cg"`` — this library's conjugate gradients;
* ``"jacobi"`` / ``"gauss_seidel"`` — classical splittings (Jacobi on the
  hard system is exactly label propagation);
* ``"sparse"`` — scipy's sparse factorization (``splu``).

With ``return_info=True`` every backend also reports a :class:`SolveInfo`
(iterations, final residual, convergence flag) so callers — and the
telemetry layer in :mod:`repro.obs` — can observe solver health instead
of discarding it.  Direct backends only compute the (matvec-costing)
residual when tracing is enabled, keeping the default path at seed speed.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np
from scipy import linalg as dense_linalg
from scipy import sparse
from scipy.sparse.linalg import splu

from repro import obs
from repro.exceptions import ConfigurationError, SingularSystemError
from repro.linalg.iterative import conjugate_gradient, gauss_seidel, jacobi
from repro.utils.validation import check_vector

__all__ = ["SolveInfo", "solve_spd", "solve_square"]

_ITERATIVE = {
    "cg": conjugate_gradient,
    "jacobi": jacobi,
    "gauss_seidel": gauss_seidel,
}


class SolveInfo(NamedTuple):
    """Health report for one linear solve.

    A NamedTuple rather than a dataclass: it is constructed on every
    solve, including the telemetry-disabled path, and tuple construction
    keeps that near-free.

    Attributes
    ----------
    method:
        Backend that actually ran (``"cholesky"``, ``"lu"``,
        ``"sparse_lu"``, ``"cg"``, ``"jacobi"``, ``"gauss_seidel"``) —
        may differ from the requested method when a fallback fires.
    size:
        System dimension.
    iterations:
        Iterations performed (0 for direct factorizations).
    final_residual:
        2-norm of ``b - A x`` after the solve.  ``nan`` for direct
        backends unless tracing is enabled (computing it costs a matvec).
    converged:
        False only when an iterative backend stopped above tolerance
        (currently unreachable through :func:`solve_spd`, which raises;
        kept for callers constructing SolveInfo from raw iterative runs).
    """

    method: str
    size: int
    iterations: int = 0
    final_residual: float = math.nan
    converged: bool = True


def _residual_norm(matrix, x, rhs) -> float:
    product = matrix @ x
    if sparse.issparse(matrix):
        product = np.asarray(product).ravel()
    return float(np.linalg.norm(rhs - product))


def solve_square(matrix, rhs) -> np.ndarray:
    """Direct solve of a general square system, dense or sparse.

    Raises :class:`~repro.exceptions.SingularSystemError` on singular
    input instead of numpy's ``LinAlgError``.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    try:
        if sparse.issparse(matrix):
            factor = splu(matrix.tocsc())
            return factor.solve(rhs)
        return np.linalg.solve(np.asarray(matrix, dtype=np.float64), rhs)
    except (np.linalg.LinAlgError, RuntimeError) as exc:
        raise SingularSystemError(f"linear system is singular: {exc}") from exc


def solve_spd(
    matrix,
    rhs,
    *,
    method: str = "direct",
    tol: float = 1e-10,
    max_iter: int | None = None,
    return_info: bool = False,
):
    """Solve a symmetric positive-definite system with a chosen backend.

    Parameters
    ----------
    matrix:
        SPD matrix, dense or scipy sparse.
    rhs:
        Right-hand-side vector.
    method:
        ``"direct"``, ``"sparse"``, ``"cg"``, ``"jacobi"`` or
        ``"gauss_seidel"``.
    tol, max_iter:
        Forwarded to the iterative backends.
    return_info:
        When true, return ``(x, SolveInfo)`` instead of just ``x``.
    """
    rhs = check_vector(rhs, "rhs", min_length=0)
    size = rhs.shape[0]
    if method == "direct":
        dense = np.asarray(matrix.todense()) if sparse.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        try:
            factor = dense_linalg.cho_factor(dense, check_finite=False)
            x = dense_linalg.cho_solve(factor, rhs, check_finite=False)
            backend = "cholesky"
        except dense_linalg.LinAlgError:
            # Marginally semidefinite systems (e.g. lambda = 0 soft systems)
            # fall back to LU, raising a library error if truly singular.
            x = solve_square(dense, rhs)
            backend = "lu"
        if not return_info:
            return x
        residual = _residual_norm(dense, x, rhs) if obs.tracing_enabled() else math.nan
        return x, SolveInfo(method=backend, size=size, final_residual=residual)
    if method == "sparse":
        mat = matrix if sparse.issparse(matrix) else sparse.csc_matrix(matrix)
        x = solve_square(mat, rhs)
        if not return_info:
            return x
        residual = _residual_norm(mat, x, rhs) if obs.tracing_enabled() else math.nan
        return x, SolveInfo(method="sparse_lu", size=size, final_residual=residual)
    if method in _ITERATIVE:
        kwargs = {"tol": tol}
        if max_iter is not None:
            kwargs["max_iter"] = max_iter
        result = _ITERATIVE[method](matrix, rhs, **kwargs)
        if not return_info:
            return result.x
        info = SolveInfo(
            method=method,
            size=size,
            iterations=result.iterations,
            final_residual=result.final_residual,
            converged=result.converged,
        )
        return result.x, info
    known = "direct, sparse, " + ", ".join(sorted(_ITERATIVE))
    raise ConfigurationError(f"unknown solver method {method!r}; known: {known}")
