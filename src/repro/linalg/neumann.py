"""Neumann-series inversion and diagnostics.

The consistency proof (Section IV) expands

    (I - D22^{-1} W22)^{-1} = I + S,   S = lim_l  sum_{k=1..l} (D22^{-1} W22)^k,

and shows every partial sum ``S_l`` has "tiny elements": its max-norm is
bounded by ``M/(n h^d) * (1 + r + ... + r^{l-1})`` with ``r = mM/(n h^d)``.
:func:`neumann_partial_sums` computes the partial sums together with their
max-norms so :mod:`repro.validation.proof_constructs` can verify the bound
numerically, and :func:`neumann_inverse` uses the series as an actual
solver (valid whenever the spectral radius of ``D22^{-1} W22`` is < 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, DataValidationError
from repro.utils.validation import check_square_matrix

__all__ = ["NeumannDiagnostics", "neumann_partial_sums", "neumann_inverse"]


@dataclass(frozen=True)
class NeumannDiagnostics:
    """Convergence record of a Neumann-series run.

    Attributes
    ----------
    terms:
        Number of series terms accumulated (the final ``l``).
    max_norms:
        ``max_norms[k]`` is ``||S_{k+1}||_max`` — the proof's tracked
        quantity — for each partial sum computed.
    spectral_radius:
        Spectral radius of the iterated matrix (series converges iff < 1).
    converged:
        Whether successive partial sums reached the requested tolerance.
    """

    terms: int
    max_norms: tuple[float, ...]
    spectral_radius: float
    converged: bool


def neumann_partial_sums(matrix: np.ndarray, n_terms: int) -> tuple[np.ndarray, NeumannDiagnostics]:
    """Partial sum ``S_l = sum_{k=1..l} matrix^k`` with per-term max-norms.

    Returns the final partial sum and diagnostics; does not require
    convergence (callers studying the proof may want divergent regimes).
    """
    matrix = check_square_matrix(matrix, "matrix")
    if n_terms < 1:
        raise DataValidationError(f"n_terms must be >= 1, got {n_terms}")
    power = matrix.copy()
    total = matrix.copy()
    max_norms = [float(np.max(np.abs(total)))] if total.size else [0.0]
    for _ in range(1, n_terms):
        power = power @ matrix
        total = total + power
        max_norms.append(float(np.max(np.abs(total))) if total.size else 0.0)
    radius = float(np.max(np.abs(np.linalg.eigvals(matrix)))) if matrix.size else 0.0
    diagnostics = NeumannDiagnostics(
        terms=n_terms,
        max_norms=tuple(max_norms),
        spectral_radius=radius,
        converged=radius < 1.0,
    )
    return total, diagnostics


def neumann_inverse(
    matrix: np.ndarray,
    *,
    tol: float = 1e-12,
    max_terms: int = 10_000,
) -> tuple[np.ndarray, NeumannDiagnostics]:
    """Approximate ``(I - matrix)^{-1} = I + S`` by the Neumann series.

    Raises :class:`~repro.exceptions.ConvergenceError` when the series has
    not stabilized to ``tol`` (in max-norm increments) within
    ``max_terms`` terms, which happens exactly when the spectral radius of
    ``matrix`` is >= 1.
    """
    matrix = check_square_matrix(matrix, "matrix")
    n = matrix.shape[0]
    if n == 0:
        diagnostics = NeumannDiagnostics(0, (), 0.0, True)
        return np.zeros((0, 0)), diagnostics
    power = matrix.copy()
    total = np.eye(n) + matrix
    max_norms = [float(np.max(np.abs(total - np.eye(n))))]
    terms = 1
    while terms < max_terms:
        power = power @ matrix
        increment = float(np.max(np.abs(power)))
        total = total + power
        terms += 1
        max_norms.append(float(np.max(np.abs(total - np.eye(n)))))
        if increment < tol:
            radius = float(np.max(np.abs(np.linalg.eigvals(matrix))))
            return total, NeumannDiagnostics(terms, tuple(max_norms), radius, True)
    radius = float(np.max(np.abs(np.linalg.eigvals(matrix))))
    raise ConvergenceError(
        f"Neumann series did not converge in {max_terms} terms "
        f"(spectral radius = {radius:.4f}); the series converges only for "
        f"spectral radius < 1",
        iterations=terms,
        residual=max_norms[-1],
    )
