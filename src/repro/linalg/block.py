"""2x2 block-matrix utilities.

Section II of the paper derives the unlabeled-block solution (Eq. 4) from
the block-inverse formula

    A = [[A11, A12], [A21, A22]],
    A^{-1} = [[ S22^{-1},            -S22^{-1} A12 A22^{-1}],
              [-S11^{-1} A21 A11^{-1},  S11^{-1}           ]],

where ``S22 = A11 - A12 A22^{-1} A21`` and ``S11 = A22 - A21 A11^{-1} A12``
are the two Schur complements.  :func:`block_inverse` implements exactly
this formula (it is tested against ``np.linalg.inv``), and
:class:`BlockMatrix` provides the labeled/unlabeled partition used
throughout :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError, SingularSystemError
from repro.utils.validation import check_square_matrix

__all__ = ["BlockMatrix", "schur_complement", "block_inverse"]


@dataclass(frozen=True)
class BlockMatrix:
    """A square matrix partitioned after its first ``n_first`` rows/columns.

    The paper partitions every ``(n+m) x (n+m)`` matrix into labeled
    (first ``n``) and unlabeled (last ``m``) blocks; this class names them
    ``a11`` (labeled-labeled), ``a12``, ``a21``, ``a22``
    (unlabeled-unlabeled).
    """

    a11: np.ndarray
    a12: np.ndarray
    a21: np.ndarray
    a22: np.ndarray

    @classmethod
    def partition(cls, matrix: np.ndarray, n_first: int) -> "BlockMatrix":
        """Partition ``matrix`` after row/column ``n_first``."""
        matrix = check_square_matrix(matrix, "matrix")
        total = matrix.shape[0]
        if not 0 <= n_first <= total:
            raise DataValidationError(
                f"n_first must be in [0, {total}], got {n_first}"
            )
        return cls(
            a11=matrix[:n_first, :n_first],
            a12=matrix[:n_first, n_first:],
            a21=matrix[n_first:, :n_first],
            a22=matrix[n_first:, n_first:],
        )

    def assemble(self) -> np.ndarray:
        """Reassemble the full matrix from its blocks."""
        top = np.hstack([self.a11, self.a12])
        bottom = np.hstack([self.a21, self.a22])
        return np.vstack([top, bottom])

    @property
    def shape(self) -> tuple[int, int]:
        n = self.a11.shape[0] + self.a21.shape[0]
        return (n, n)


def _solve_or_raise(matrix: np.ndarray, rhs: np.ndarray, what: str) -> np.ndarray:
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularSystemError(f"{what} is singular: {exc}") from exc


def schur_complement(blocks: BlockMatrix, eliminate: str = "a22") -> np.ndarray:
    """Schur complement after eliminating one diagonal block.

    ``eliminate="a22"`` returns ``A11 - A12 A22^{-1} A21``;
    ``eliminate="a11"`` returns ``A22 - A21 A11^{-1} A12``.
    """
    if eliminate == "a22":
        if blocks.a22.size == 0:
            return blocks.a11.copy()
        return blocks.a11 - blocks.a12 @ _solve_or_raise(blocks.a22, blocks.a21, "A22")
    if eliminate == "a11":
        if blocks.a11.size == 0:
            return blocks.a22.copy()
        return blocks.a22 - blocks.a21 @ _solve_or_raise(blocks.a11, blocks.a12, "A11")
    raise DataValidationError(f"eliminate must be 'a11' or 'a22', got {eliminate!r}")


def block_inverse(blocks: BlockMatrix) -> BlockMatrix:
    """Invert a 2x2 block matrix via the paper's Schur-complement formula.

    Requires both diagonal blocks and both Schur complements to be
    non-singular (sufficient, not necessary, for invertibility of the full
    matrix — matching the formula quoted in the paper).
    """
    s22 = schur_complement(blocks, "a22")  # A11 - A12 A22^{-1} A21
    s11 = schur_complement(blocks, "a11")  # A22 - A21 A11^{-1} A12
    n1 = blocks.a11.shape[0]
    n2 = blocks.a22.shape[0]

    inv_s22 = _solve_or_raise(s22, np.eye(n1), "Schur complement A11 - A12 A22^-1 A21")
    inv_s11 = _solve_or_raise(s11, np.eye(n2), "Schur complement A22 - A21 A11^-1 A12")

    if n2:
        upper_right = -inv_s22 @ blocks.a12 @ _solve_or_raise(blocks.a22, np.eye(n2), "A22")
    else:
        upper_right = np.zeros((n1, 0))
    if n1:
        lower_left = -inv_s11 @ blocks.a21 @ _solve_or_raise(blocks.a11, np.eye(n1), "A11")
    else:
        lower_left = np.zeros((n2, 0))

    return BlockMatrix(a11=inv_s22, a12=upper_right, a21=lower_left, a22=inv_s11)
