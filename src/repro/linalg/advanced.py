"""Additional iterative solvers: SOR and preconditioned conjugate gradients.

Successive over-relaxation (:func:`sor`) generalizes Gauss-Seidel with a
relaxation factor ``omega``; for SPD systems it converges for any
``omega`` in (0, 2) and an informed choice accelerates convergence
substantially on the near-singular grounded Laplacians that arise when
the graph bandwidth is small.

:func:`preconditioned_conjugate_gradient` is CG with a symmetric
positive-definite preconditioner; the Jacobi (diagonal) preconditioner
is built in and is particularly effective for the hard criterion's
system ``D22 - W22``, whose diagonal carries each vertex's degree and
hence most of the conditioning spread.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigurationError, ConvergenceError, DataValidationError
from repro.linalg.iterative import IterativeResult
from repro.utils.validation import check_vector

__all__ = ["sor", "preconditioned_conjugate_gradient", "jacobi_preconditioner"]


def sor(
    matrix,
    rhs,
    *,
    omega: float = 1.5,
    x0=None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> IterativeResult:
    """Successive over-relaxation.

    Performs forward sweeps ``x_i <- (1 - omega) x_i + omega * gs_i``
    where ``gs_i`` is the Gauss-Seidel update.  ``omega = 1`` recovers
    Gauss-Seidel exactly; ``omega`` must lie in (0, 2) for convergence on
    SPD systems.
    """
    if not 0.0 < omega < 2.0:
        raise ConfigurationError(f"omega must be in (0, 2), got {omega}")
    dense = np.asarray(matrix.todense()) if sparse.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise DataValidationError(f"matrix must be square 2-d, got shape {dense.shape}")
    n = dense.shape[0]
    diag = np.diagonal(dense).copy()
    if n and np.any(diag == 0):
        raise DataValidationError("sor requires a zero-free diagonal")
    rhs = check_vector(rhs, "rhs", min_length=0)
    if rhs.shape[0] != n:
        raise DataValidationError(f"rhs length {rhs.shape[0]} does not match matrix size {n}")
    x = np.zeros(n) if x0 is None else check_vector(x0, "x0", min_length=0).copy()
    if x.shape[0] != n:
        raise DataValidationError(f"x0 length {x.shape[0]} does not match matrix size {n}")

    # x_new = (D + omega L)^{-1} (omega b - (omega U + (omega - 1) D) x)
    # implemented via a triangular solve per sweep.
    from scipy.linalg import solve_triangular

    strict_lower = np.tril(dense, k=-1)
    strict_upper = np.triu(dense, k=1)
    sweep_matrix = np.diag(diag) + omega * strict_lower
    norm = float(np.linalg.norm(rhs))
    scale = norm if norm > 0 else 1.0
    residuals: list[float] = []
    for iteration in range(1, max_iter + 1):
        residual = rhs - dense @ x
        res_norm = float(np.linalg.norm(residual))
        residuals.append(res_norm)
        if res_norm <= tol * scale:
            return IterativeResult(x, iteration - 1, tuple(residuals), True)
        target = omega * rhs - (omega * strict_upper + (omega - 1.0) * np.diag(diag)) @ x
        x = solve_triangular(sweep_matrix, target, lower=True)
    residual = rhs - dense @ x
    res_norm = float(np.linalg.norm(residual))
    residuals.append(res_norm)
    if res_norm <= tol * scale:
        return IterativeResult(x, max_iter, tuple(residuals), True)
    raise ConvergenceError(
        f"sor(omega={omega}) did not converge in {max_iter} iterations "
        f"(relative residual {res_norm / scale:.3e} > tol {tol:.1e})",
        iterations=max_iter,
        residual=res_norm,
    )


def jacobi_preconditioner(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """The diagonal (Jacobi) preconditioner ``M^{-1} v = v / diag(A)``."""
    if sparse.issparse(matrix):
        diag = matrix.diagonal().astype(np.float64)
    else:
        diag = np.diagonal(np.asarray(matrix, dtype=np.float64)).copy()
    if diag.size and np.any(diag <= 0):
        raise DataValidationError(
            "jacobi preconditioner requires a strictly positive diagonal"
        )
    return lambda v: v / diag


def preconditioned_conjugate_gradient(
    matrix,
    rhs,
    *,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    x0=None,
    tol: float = 1e-10,
    max_iter: int | None = None,
) -> IterativeResult:
    """Conjugate gradients with an SPD preconditioner.

    ``preconditioner`` maps a residual ``r`` to ``M^{-1} r``; defaults to
    the Jacobi preconditioner built from the matrix diagonal.
    """
    if sparse.issparse(matrix):
        mat = matrix.tocsr()
        matvec = lambda v: mat @ v
        n = mat.shape[0]
        if mat.shape[0] != mat.shape[1]:
            raise DataValidationError(f"matrix must be square, got {mat.shape}")
    else:
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise DataValidationError(f"matrix must be square 2-d, got shape {mat.shape}")
        matvec = lambda v: mat @ v
        n = mat.shape[0]
    rhs = check_vector(rhs, "rhs", min_length=0)
    if rhs.shape[0] != n:
        raise DataValidationError(f"rhs length {rhs.shape[0]} does not match matrix size {n}")
    if preconditioner is None:
        preconditioner = jacobi_preconditioner(matrix)
    if max_iter is None:
        max_iter = max(10 * n, 50)

    x = np.zeros(n) if x0 is None else check_vector(x0, "x0", min_length=0).copy()
    if x.shape[0] != n:
        raise DataValidationError(f"x0 length {x.shape[0]} does not match matrix size {n}")

    norm = float(np.linalg.norm(rhs))
    scale = norm if norm > 0 else 1.0
    residual = rhs - matvec(x)
    z = preconditioner(residual)
    direction = z.copy()
    rz = float(residual @ z)
    residuals = [float(np.linalg.norm(residual))]
    if residuals[-1] <= tol * scale:
        return IterativeResult(x, 0, tuple(residuals), True)
    for iteration in range(1, max_iter + 1):
        a_direction = matvec(direction)
        curvature = float(direction @ a_direction)
        if curvature <= 0:
            raise ConvergenceError(
                "preconditioned CG encountered non-positive curvature; "
                "the matrix is not positive definite",
                iterations=iteration,
                residual=residuals[-1],
            )
        step = rz / curvature
        x = x + step * direction
        residual = residual - step * a_direction
        residuals.append(float(np.linalg.norm(residual)))
        if residuals[-1] <= tol * scale:
            return IterativeResult(x, iteration, tuple(residuals), True)
        z = preconditioner(residual)
        new_rz = float(residual @ z)
        direction = z + (new_rz / rz) * direction
        rz = new_rz
    raise ConvergenceError(
        f"preconditioned CG did not converge in {max_iter} iterations "
        f"(relative residual {residuals[-1] / scale:.3e} > tol {tol:.1e})",
        iterations=max_iter,
        residual=residuals[-1],
    )
