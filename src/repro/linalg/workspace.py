"""Cross-solve amortization: shared workspaces for λ- and bandwidth-sweeps.

Every λ-curve, CV grid and consistency sweep in this library solves the
same family of systems ``(V + λL) f = (y; 0)`` over one *fixed*
similarity graph, yet the historical hot path reassembled and
refactorized from scratch at every grid point.  :class:`SolveWorkspace`
owns a graph's Laplacian blocks once and amortizes everything that is
shared across the sweep:

* **exact** — an LRU cache of true SPD factorizations keyed by
  ``(kind, λ, n_labeled)``; a cache hit returns bit-identical solutions
  to refactorizing, so strict/golden paths can reuse safely.
* **factored** (default) — one *anchor* factorization serves the whole
  λ grid.  When the labeled block is small (``n_labeled ≤ min(512,
  N/4)``) this is *direct*: ``A(λ) = (λ/λ₀)A(λ₀) + (1-λ/λ₀)EEᵀ`` is a
  rank-``n_labeled`` update of the anchor, so Sherman–Morrison–Woodbury
  turns every further grid point into one back-substitution plus an
  ``n_labeled``-sized capacitance solve — no iterations, refined
  against the assembled operator to the CG tolerance.  Otherwise each
  new λ is solved by preconditioned CG with the anchor as
  preconditioner, warm-started from the previous grid point's solution
  (continuation).  The generalized Rayleigh quotient of ``(V + λL)``
  against ``(V + λ₀L)`` lies in ``[min(1, λ/λ₀), max(1, λ/λ₀)]``, so
  nearby grid points converge in a handful of back-substitutions; when
  the iteration budget is exceeded the workspace refactorizes at the
  current λ and re-anchors.  Either way solutions match direct solves
  to the CG tolerance (default ``1e-10`` relative, validated at
  ``atol=1e-8`` in the parity suite).
* **spectral** — a (truncated or full) eigendecomposition of ``L`` turns
  each additional λ into a ``k×k`` Galerkin solve plus one ``O(N·k)``
  basis multiply: with ``U_k`` the smoothest eigenvectors, ``B = U_k[:n]``
  and ``G = BᵀB``, the coefficients solve ``(G + λ Λ_k) a = Bᵀy`` and
  ``f = U_k a``.  With the *full* basis this is exact up to roundoff
  (cf. Hoffmann et al.'s probit/one-hot computations in the Laplacian
  eigenbasis); truncation trades accuracy for speed.
* **multigrid** — no large factorization at any point: a λ-independent
  graph-coarsening hierarchy (:mod:`repro.linalg.coarsen`, heavy-edge
  matching) is built once per workspace, and each λ is solved by
  warm-started PCG preconditioned with a damped-Jacobi V-cycle whose
  level systems ``diag(v_l) + λ L_l`` re-assemble in O(nnz) per grid
  point (the Galerkin coarse operator of a graph Laplacian is the
  Laplacian of the coarsened graph, and aggregation keeps ``V``
  diagonal).  This is the backend that scales past the splu fill-in
  wall (N ≈ 10⁴ in d ≥ 3) to N = 10⁵⁺; solutions match direct solves
  to the CG tolerance, with an exact-factorization fallback if the
  V-cycle ever stalls.

Iterative backends (``"cg"``, ``"jacobi"``, ``"gauss_seidel"``) are also
supported and warm-started from the previous solution in the sweep, with
the iterations saved relative to the sweep's cold first solve reported in
:class:`~repro.linalg.solvers.SolveInfo`.

A workspace fingerprints its weight matrix at construction and re-checks
the fingerprint before serving any cached artifact: mutating the graph
after caching raises :class:`~repro.exceptions.WorkspaceInvalidatedError`
(or, with ``on_mutation="recompute"``, drops every cache and rebuilds).
A stale factorization is never served.

Everything is observable: ``workspace.*`` spans and cache hit / miss /
eviction counters flow through :mod:`repro.obs`, and
:meth:`SolveWorkspace.stats` returns a :class:`WorkspaceStats` snapshot.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import NamedTuple

import numpy as np
from scipy import sparse

from repro import obs
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
    WorkspaceInvalidatedError,
)
from repro.linalg.advanced import preconditioned_conjugate_gradient
from repro.linalg.coarsen import (
    DTYPE_POLICIES,
    CoarseningHierarchy,
    MatrixFreeHierarchy,
    MatrixFreeMultigridPreconditioner,
    MultigridPreconditioner,
    build_hierarchy,
    build_matrix_free_hierarchy,
)
from repro.linalg.solvers import SolveInfo, SPDFactorization, factorize_spd, solve_spd
from repro.utils.validation import (
    check_labels,
    check_positive_scalar,
    check_weight_matrix,
)

__all__ = [
    "SolveWorkspace",
    "WorkspaceStats",
    "SWEEP_BACKENDS",
    "HIERARCHY_MODES",
    "MATRIX_FREE_MIN_VERTICES",
    "STATS_STR_FIELDS",
]

#: Sweep backends a workspace can solve through (``"direct"`` means "no
#: workspace" and is handled by the callers that expose ``--sweep-backend``).
SWEEP_BACKENDS = ("exact", "factored", "spectral", "multigrid")

_ITERATIVE_BACKENDS = ("cg", "jacobi", "gauss_seidel")

#: Dense matrices up to this many elements get a full-content fingerprint;
#: larger ones fall back to a strided sample plus the matrix sum (still
#: deterministic, but detection of a single-entry mutation becomes
#: probabilistic — documented in docs/SCALING.md).
FULL_FINGERPRINT_MAX_ELEMENTS = 1_000_000

#: Default eigenbasis size for sparse graphs in spectral mode (dense
#: graphs default to the full basis, which is exact up to roundoff).
DEFAULT_SPARSE_COMPONENTS = 256

#: The factored backend switches from anchored PCG to the rank-n_labeled
#: Woodbury continuation when the labeled block is small enough that the
#: capacitance solve (O(n_labeled^3) per λ) and the ``N x n_labeled``
#: basis stay cheap: n_labeled at most this cap AND at most N/4.
WOODBURY_MAX_LABELED = 512

#: V-cycle-preconditioned PCG budget per grid point.  A healthy V-cycle
#: converges in tens of iterations even at λ = 10²; exceeding this
#: budget falls back to an exact factorization (counted as a reanchor).
MULTIGRID_MAX_ITER = 300

#: The multigrid hierarchy coarsens until a level is at most this large
#: (but never below 512 vertices) — small enough that the coarsest
#: factorization is trivial, large enough that the coarse grid still
#: resolves the graph's cluster structure.
MULTIGRID_COARSE_DIVISOR = 64

#: Multigrid hierarchy representations: ``"assembled"`` keeps per-level
#: Galerkin CSR matrices (fastest sweeps, O(Σ nnz_level) memory);
#: ``"matrix_free"`` keeps aggregate maps only and applies coarse
#: operators through the fine Laplacian on the fly (O(N) memory, each
#: coarse smoothing sweep costs a fine SpMV); ``"auto"`` picks
#: matrix-free for sparse graphs at or above
#: :data:`MATRIX_FREE_MIN_VERTICES` vertices and assembled below.
HIERARCHY_MODES = ("auto", "assembled", "matrix_free")

#: ``hierarchy_mode="auto"`` switches to the matrix-free hierarchy at
#: this many vertices: below it the assembled hierarchy fits comfortably
#: and its cheaper coarse sweeps win; above it hierarchy storage rivals
#: the graph itself and the O(N) representation is the only way to reach
#: N = 10⁶ within a sane memory budget (see docs/SCALING.md).
MATRIX_FREE_MIN_VERTICES = 200_000


class WorkspaceStats(NamedTuple):
    """Cache and solver health counters for one :class:`SolveWorkspace`.

    Attributes
    ----------
    factor_hits / factor_misses / factor_evictions:
        Factorization-cache traffic: hits serve a previously computed
        factorization, misses factorize, evictions drop the least
        recently used entry when the cache is full.
    spectral_builds:
        Eigendecompositions computed (at most one per basis size).
    pcg_solves / pcg_iterations:
        Anchored-PCG solves on the factored path and their total
        iteration count.
    reanchors:
        Times the factored path refactorized because the iteration
        budget was exceeded (each also counts as a factor miss).
    warm_starts:
        Solves that started from a previous solution.
    iterations_saved:
        Total iterations saved by warm-started iterative backends
        relative to each sweep's cold first solve.
    woodbury_solves:
        Direct low-rank continuation solves on the factored path (each
        λ after the anchor costs one capacitance solve, no iterations).
    coarsen_builds:
        Coarsening hierarchies built (at most one per workspace until
        invalidation).
    multigrid_solves:
        V-cycle-preconditioned PCG solves on the multigrid path (their
        iteration counts accumulate into ``pcg_iterations``).
    dtype_policy:
        The workspace's smoothing precision policy (``"float64"`` or
        ``"float32"``) — recorded so traces and dashboards show which
        path a run took.
    hierarchy_mode:
        The *resolved* multigrid hierarchy representation
        (``"assembled"`` or ``"matrix_free"``; an ``"auto"`` request
        reports what it resolved to).
    """

    factor_hits: int = 0
    factor_misses: int = 0
    factor_evictions: int = 0
    spectral_builds: int = 0
    pcg_solves: int = 0
    pcg_iterations: int = 0
    reanchors: int = 0
    warm_starts: int = 0
    iterations_saved: int = 0
    woodbury_solves: int = 0
    coarsen_builds: int = 0
    multigrid_solves: int = 0
    dtype_policy: str = "float64"
    hierarchy_mode: str = "assembled"


#: The non-counter (string-valued) fields of :class:`WorkspaceStats`.
STATS_STR_FIELDS = ("dtype_policy", "hierarchy_mode")


def _fingerprint(weights):
    """A cheap, deterministic content fingerprint of a weight matrix.

    Sparse matrices hash their full data/indices arrays (O(nnz)); dense
    matrices hash full content up to
    :data:`FULL_FINGERPRINT_MAX_ELEMENTS` elements and a strided sample
    plus the matrix sum beyond it.
    """
    if sparse.issparse(weights):
        mat = weights
        return (
            "sparse",
            mat.shape,
            int(mat.nnz),
            zlib.crc32(np.ascontiguousarray(mat.data).tobytes()),
            zlib.crc32(np.ascontiguousarray(mat.indices).tobytes()),
        )
    arr = np.ascontiguousarray(weights)
    if arr.size <= FULL_FINGERPRINT_MAX_ELEMENTS:
        return ("dense", arr.shape, zlib.crc32(arr.tobytes()))
    flat = arr.reshape(-1)
    idx = np.linspace(0, flat.size - 1, 4096).astype(np.intp)
    return (
        "dense-sampled",
        arr.shape,
        zlib.crc32(np.ascontiguousarray(flat[idx]).tobytes()),
        float(flat.sum()),
    )


def _fit_result(**kwargs):
    """Construct a FitResult lazily (avoids a linalg <-> core import cycle)."""
    from repro.core.result import FitResult

    return FitResult(**kwargs)


class _Continuation:
    """Warm-start / anchor state for one labeled-mask (one sweep)."""

    __slots__ = ("anchor", "anchor_lam", "last_solution", "cold_iterations")

    def __init__(self):
        self.anchor: SPDFactorization | None = None
        self.anchor_lam: float | None = None
        self.last_solution: np.ndarray | None = None
        self.cold_iterations: int | None = None


class _WoodburyState:
    """Low-rank continuation state for one labeled-mask.

    ``basis`` is ``Z = A(λ₀)⁻¹ E`` (``E`` the labeled-column selector)
    and ``gram`` its labeled block ``S = Eᵀ Z``; both are built once per
    sweep from the anchor factorization (held here so LRU eviction
    cannot orphan the continuation).
    """

    __slots__ = ("anchor_lam", "factor", "basis", "gram")

    def __init__(self, anchor_lam, factor, basis, gram):
        self.anchor_lam: float = anchor_lam
        self.factor: SPDFactorization = factor
        self.basis: np.ndarray = basis
        self.gram: np.ndarray = gram


class SolveWorkspace:
    """Amortized solves of the hard/soft criteria over one fixed graph.

    Parameters
    ----------
    weights:
        ``(N, N)`` symmetric non-negative weight matrix (dense, scipy
        sparse, or a :class:`~repro.graph.similarity.SimilarityGraph`),
        labeled vertices first.  Validated once, here, instead of per
        grid point.
    backend:
        Default solve backend: ``"factored"`` (anchored PCG
        continuation), ``"exact"`` (cached true factorizations,
        bit-compatible with direct solves), ``"spectral"``
        (eigenbasis Galerkin), or ``"multigrid"`` (coarsening V-cycle
        preconditioned PCG — no large factorization, the large-N
        backend).
    exact:
        Strict mode: force the ``"exact"`` backend for every solve
        regardless of the requested backend, so sweeps stay
        bit-compatible with per-point direct solves while still reusing
        cached factorizations.
    max_factorizations:
        LRU capacity of the factorization cache.
    pcg_tol / reanchor_budget:
        Factored path: relative CG tolerance, and the iteration budget
        after which the workspace refactorizes at the current λ and
        re-anchors.
    n_components:
        Spectral basis size; ``None`` means the full basis for dense
        graphs (exact up to roundoff) and
        :data:`DEFAULT_SPARSE_COMPONENTS` for sparse graphs.
    on_mutation:
        ``"raise"`` (default): serving from a workspace whose weights
        changed raises :class:`WorkspaceInvalidatedError`.
        ``"recompute"``: drop all caches and re-fingerprint instead.
    dtype_policy:
        Multigrid smoothing precision: ``"float64"`` (default, exact
        historical path) or ``"float32"`` (single-precision
        damped-Jacobi sweeps inside the V-cycle; the outer CG and the
        coarsest solve stay float64, so solutions still converge to
        ``pcg_tol`` — the parity suite pins the documented RMS tier).
    hierarchy_mode:
        Multigrid hierarchy representation: ``"assembled"``,
        ``"matrix_free"``, or ``"auto"`` (default — matrix-free for
        sparse graphs at ≥ :data:`MATRIX_FREE_MIN_VERTICES` vertices).
        See :data:`HIERARCHY_MODES`.
    """

    def __init__(
        self,
        weights,
        *,
        backend: str = "factored",
        exact: bool = False,
        max_factorizations: int = 8,
        pcg_tol: float = 1e-10,
        reanchor_budget: int = 15,
        n_components: int | None = None,
        on_mutation: str = "raise",
        dtype_policy: str = "float64",
        hierarchy_mode: str = "auto",
    ):
        from repro.graph.similarity import SimilarityGraph

        if isinstance(weights, SimilarityGraph):
            weights = weights.weights
        if backend not in SWEEP_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
            )
        if on_mutation not in ("raise", "recompute"):
            raise ConfigurationError(
                f"on_mutation must be 'raise' or 'recompute', got {on_mutation!r}"
            )
        if max_factorizations < 1:
            raise ConfigurationError(
                f"max_factorizations must be >= 1, got {max_factorizations}"
            )
        if reanchor_budget < 1:
            raise ConfigurationError(
                f"reanchor_budget must be >= 1, got {reanchor_budget}"
            )
        if dtype_policy not in DTYPE_POLICIES:
            raise ConfigurationError(
                f"dtype_policy must be one of {DTYPE_POLICIES}, "
                f"got {dtype_policy!r}"
            )
        if hierarchy_mode not in HIERARCHY_MODES:
            raise ConfigurationError(
                f"hierarchy_mode must be one of {HIERARCHY_MODES}, "
                f"got {hierarchy_mode!r}"
            )
        self.weights = check_weight_matrix(weights)
        self.n_total = int(self.weights.shape[0])
        self.backend = backend
        self.exact = bool(exact)
        self.max_factorizations = int(max_factorizations)
        self.pcg_tol = float(check_positive_scalar(pcg_tol, "pcg_tol"))
        self.reanchor_budget = int(reanchor_budget)
        self.n_components = n_components
        self.on_mutation = on_mutation
        self.dtype_policy = dtype_policy
        self.hierarchy_mode = hierarchy_mode

        self._is_sparse = sparse.issparse(self.weights)
        self._fingerprint = _fingerprint(self.weights)
        self._degrees: np.ndarray | None = None
        self._laplacian = None
        self._factors: OrderedDict[tuple, SPDFactorization] = OrderedDict()
        self._eigencache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._galerkin: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._continuations: dict[tuple, _Continuation] = {}
        self._woodbury: dict[int, _WoodburyState] = {}
        self._hierarchy: CoarseningHierarchy | MatrixFreeHierarchy | None = None
        self._coarse_masks: dict[int, list[np.ndarray]] = {}
        self._counters = {
            field: 0
            for field in WorkspaceStats._fields
            if field not in STATS_STR_FIELDS
        }
        # "auto" resolves once, here: the decision depends only on the
        # (immutable) graph size and sparsity, and stats()/telemetry
        # report the resolved representation.
        if hierarchy_mode == "auto":
            self._hierarchy_mode = (
                "matrix_free"
                if self._is_sparse and self.n_total >= MATRIX_FREE_MIN_VERTICES
                else "assembled"
            )
        else:
            self._hierarchy_mode = hierarchy_mode

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def check_current(self) -> None:
        """Verify the weights still match the construction-time fingerprint.

        Called before any cached artifact is served.  On mismatch,
        either raises :class:`WorkspaceInvalidatedError` or (with
        ``on_mutation="recompute"``) drops every cache and adopts the
        mutated weights as the new ground truth.
        """
        if _fingerprint(self.weights) == self._fingerprint:
            return
        if self.on_mutation == "recompute":
            self.invalidate()
            return
        raise WorkspaceInvalidatedError(
            "the workspace's weight matrix was mutated after caching; "
            "rebuild the workspace (or construct it with "
            "on_mutation='recompute') instead of reusing stale factorizations"
        )

    def invalidate(self) -> None:
        """Drop every cached artifact and re-fingerprint the weights."""
        self._fingerprint = _fingerprint(self.weights)
        self._degrees = None
        self._laplacian = None
        self._factors.clear()
        self._eigencache.clear()
        self._galerkin.clear()
        self._continuations.clear()
        self._woodbury.clear()
        self._hierarchy = None
        self._coarse_masks.clear()

    # ------------------------------------------------------------------
    # Shared assembly
    # ------------------------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            if self._is_sparse:
                self._degrees = np.asarray(self.weights.sum(axis=1)).ravel()
            else:
                self._degrees = self.weights.sum(axis=1)
        return self._degrees

    @property
    def laplacian(self):
        """The unnormalized Laplacian ``L = D - W``, assembled once."""
        if self._laplacian is None:
            if self._is_sparse:
                self._laplacian = (
                    sparse.diags(self.degrees, format="csr") - self.weights.tocsr()
                )
            else:
                self._laplacian = np.diag(self.degrees) - self.weights
        return self._laplacian

    def soft_system(self, lam: float, n: int):
        """Assemble ``V + λL`` exactly as the direct path does (bit-compatible)."""
        if self._is_sparse:
            indicator = np.zeros(self.n_total)
            indicator[:n] = 1.0
            return (
                lam * self.laplacian + sparse.diags(indicator, format="csr")
            ).tocsr()
        system = lam * self.laplacian
        system[np.arange(n), np.arange(n)] += 1.0
        return system

    def hard_system(self, n: int):
        """The grounded system ``D22 - W22`` (assembled as the direct path does)."""
        if self._is_sparse:
            w22 = self.weights[n:, n:]
            return sparse.diags(self.degrees[n:], format="csr") - w22
        w22 = self.weights[n:, n:]
        return np.diag(self.degrees[n:]) - w22

    def _rhs_soft(self, y: np.ndarray) -> np.ndarray:
        rhs = np.zeros(self.n_total)
        rhs[: y.shape[0]] = y
        return rhs

    # ------------------------------------------------------------------
    # Factorization cache
    # ------------------------------------------------------------------

    def factorization(self, kind: str, lam: float, n: int) -> SPDFactorization:
        """A cached SPD factorization of the requested system (LRU)."""
        self.check_current()
        key = (kind, float(lam), int(n))
        cached = self._factors.get(key)
        registry = obs.get_registry()
        if cached is not None:
            self._factors.move_to_end(key)
            self._counters["factor_hits"] += 1
            registry.counter("workspace.factor.hits").inc()
            return cached
        self._counters["factor_misses"] += 1
        registry.counter("workspace.factor.misses").inc()
        system = (
            self.hard_system(n) if kind == "hard" else self.soft_system(lam, n)
        )
        with obs.span(
            "repro.workspace.factorize", kind=kind, lam=float(lam), n=n
        ) as span:
            factor = factorize_spd(system)
            if span.recording:
                span.set_attribute("method", factor.method)
                if factor.nnz is not None:
                    span.set_attribute("nnz", factor.nnz)
                    span.set_attribute("fill_nnz", factor.fill_nnz)
        self._factors[key] = factor
        while len(self._factors) > self.max_factorizations:
            self._factors.popitem(last=False)
            self._counters["factor_evictions"] += 1
            registry.counter("workspace.factor.evictions").inc()
        return factor

    # ------------------------------------------------------------------
    # Spectral basis
    # ------------------------------------------------------------------

    def _resolve_components(self, n_components: int | None) -> int:
        k = n_components if n_components is not None else self.n_components
        if k is None:
            k = (
                min(DEFAULT_SPARSE_COMPONENTS, self.n_total - 1)
                if self._is_sparse
                else self.n_total
            )
        k = int(k)
        if not 1 <= k <= self.n_total:
            raise ConfigurationError(
                f"n_components must be in [1, {self.n_total}], got {k}"
            )
        if self._is_sparse and k >= self.n_total:
            raise ConfigurationError(
                "a full eigenbasis of a sparse graph requires densification; "
                f"request n_components < {self.n_total} or pass a dense graph"
            )
        return k

    def eigenbasis(self, n_components: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """``(eigenvalues, eigenvectors)`` of ``L``, smoothest first (cached).

        Dense graphs use a full ``eigh`` truncated to the requested size;
        sparse graphs use shift-inverted Lanczos (``eigsh``) for the
        ``k`` smallest eigenpairs without densifying.
        """
        self.check_current()
        k = self._resolve_components(n_components)
        cached = self._eigencache.get(k)
        if cached is not None:
            return cached
        with obs.span(
            "repro.workspace.eigenbasis", n_components=k, n_total=self.n_total
        ):
            if self._is_sparse:
                from scipy.sparse.linalg import eigsh

                values, vectors = eigsh(
                    self.laplacian.tocsc(), k=k, sigma=-1e-5, which="LM"
                )
                order = np.argsort(values)
                values, vectors = values[order], vectors[:, order]
            else:
                values, vectors = np.linalg.eigh(self.laplacian)
                values, vectors = values[:k], vectors[:, :k]
        self._counters["spectral_builds"] += 1
        obs.get_registry().counter("workspace.spectral.builds").inc()
        self._eigencache[k] = (values, vectors)
        return values, vectors

    def _galerkin_blocks(self, k: int, n: int):
        """``(B, G)`` with ``B = U_k[:n]`` and ``G = BᵀB``, cached per mask."""
        key = (k, n)
        cached = self._galerkin.get(key)
        if cached is not None:
            return cached
        _, vectors = self.eigenbasis(k)
        design = vectors[:n]
        gram = design.T @ design
        self._galerkin[key] = (design, gram)
        return design, gram

    def _solve_spectral(self, y: np.ndarray, lam: float, n: int):
        k = self._resolve_components(None)
        values, vectors = self.eigenbasis(k)
        design, gram = self._galerkin_blocks(k, n)
        projected = design.T @ y
        reduced = gram + lam * np.diag(values)
        try:
            coefficients = np.linalg.solve(reduced, projected)
        except np.linalg.LinAlgError:
            coefficients, *_ = np.linalg.lstsq(reduced, projected, rcond=None)
        scores = vectors @ coefficients
        # Refine against the ORIGINAL operator.  Forming G = BᵀB rounds
        # at O(eps), and for tiny lambda the reduced system amplifies
        # that by ~1/(lam·mu) along null(G) (rank(G) = n_labeled < k).
        # The Galerkin identity Uᵀ(V + λL)U = G + λΛ lets the already
        # assembled reduced matrix drive corrections whose residuals are
        # measured with the true system, restoring the lost digits.
        system = self.soft_system(lam, n)
        rhs = self._rhs_soft(y)
        best = scores
        best_norm = float(np.linalg.norm(rhs - system @ scores))
        for _ in range(2):
            full_residual = rhs - system @ best
            try:
                delta = np.linalg.solve(reduced, vectors.T @ full_residual)
            except np.linalg.LinAlgError:
                break
            candidate = best + vectors @ delta
            candidate_norm = float(np.linalg.norm(rhs - system @ candidate))
            if candidate_norm >= best_norm:
                break
            best, best_norm = candidate, candidate_norm
        scores = best
        info = SolveInfo(
            method=f"spectral(k={k})",
            size=self.n_total,
            final_residual=best_norm,
        )
        return scores, info, {"n_components": k}

    # ------------------------------------------------------------------
    # Factored (anchored PCG continuation)
    # ------------------------------------------------------------------

    def _continuation(self, kind: str, n: int) -> _Continuation:
        return self._continuations.setdefault((kind, n), _Continuation())

    def _woodbury_applicable(self, n: int) -> bool:
        return 0 < n <= WOODBURY_MAX_LABELED and 4 * n <= self.n_total

    def _woodbury_state(self, lam: float, n: int) -> _WoodburyState:
        state = self._woodbury.get(n)
        if state is None:
            factor = self.factorization("soft", lam, n)
            selector = np.zeros((self.n_total, n))
            selector[:n, :n] = np.eye(n)
            with obs.span(
                "repro.workspace.woodbury_basis", lam=float(lam), n=n
            ):
                basis = factor.solve(selector)
            state = _WoodburyState(
                float(lam), factor, basis, np.ascontiguousarray(basis[:n])
            )
            self._woodbury[n] = state
        return state

    def _woodbury_apply(self, state: _WoodburyState, lam: float, rhs):
        """Apply ``A(λ)⁻¹`` via the anchor's rank-n update.

        ``A(λ) = t·A(λ₀) + (1-t)·EEᵀ`` with ``t = λ/λ₀``, so by
        Sherman–Morrison–Woodbury with ``c = (1-t)/t``::

            A(λ)⁻¹ r = (1/t) [z - c·Z (I + cS)⁻¹ z_labeled],  z = A(λ₀)⁻¹ r

        ``I + cS`` is nonsingular for every λ > 0: the eigenvalues of
        ``S = Eᵀ A(λ₀)⁻¹ E`` lie in (0, 1) and ``c > -1``.
        """
        t = lam / state.anchor_lam
        c = (1.0 - t) / t
        z = state.factor.solve(rhs)
        capacitance = np.eye(state.gram.shape[0]) + c * state.gram
        u = np.linalg.solve(capacitance, z[: state.gram.shape[0]])
        return (z - c * (state.basis @ u)) / t

    def _solve_woodbury(self, y: np.ndarray, lam: float, n: int):
        state = self._woodbury_state(lam, n)
        rhs = self._rhs_soft(y)
        if lam == state.anchor_lam:
            scores = state.factor.solve(rhs)
            return scores, state.factor.info(), {"anchored": True}

        scores = self._woodbury_apply(state, lam, rhs)
        # Refine against the assembled operator: the capacitance solve
        # loses digits when c approaches -1 (λ >> λ₀) and 1 - s_max is
        # tiny; residuals measured with the true system restore them.
        system = self.soft_system(lam, n)
        best_norm = float(np.linalg.norm(rhs - system @ scores))
        rhs_norm = float(np.linalg.norm(rhs))
        tol = self.pcg_tol * max(rhs_norm, 1.0)
        for _ in range(2):
            if best_norm <= tol:
                break
            delta = self._woodbury_apply(state, lam, rhs - system @ scores)
            candidate = scores + delta
            candidate_norm = float(np.linalg.norm(rhs - system @ candidate))
            if candidate_norm >= best_norm:
                break
            scores, best_norm = candidate, candidate_norm
        if best_norm > tol:
            # Continuation too far gone — refactorize at this λ exactly
            # like a PCG re-anchor would.
            self._counters["reanchors"] += 1
            obs.get_registry().counter("workspace.reanchors").inc()
            factor = self.factorization("soft", lam, n)
            return factor.solve(rhs), factor.info(), {"anchored": True}
        self._counters["woodbury_solves"] += 1
        obs.get_registry().counter("workspace.woodbury_solves").inc()
        info = SolveInfo(
            method="woodbury",
            size=self.n_total,
            final_residual=best_norm,
        )
        return scores, info, {"anchor_lam": state.anchor_lam, "rank": n}

    def _solve_factored(self, y: np.ndarray, lam: float, n: int):
        if self._woodbury_applicable(n):
            return self._solve_woodbury(y, lam, n)
        state = self._continuation("soft", n)
        rhs = self._rhs_soft(y)
        registry = obs.get_registry()

        def anchor_here():
            factor = self.factorization("soft", lam, n)
            state.anchor = factor
            state.anchor_lam = float(lam)
            scores = factor.solve(rhs)
            return scores, factor.info(), {"anchored": True}

        if state.anchor is None:
            return anchor_here()

        system = self.soft_system(lam, n)
        x0 = state.last_solution
        warm = x0 is not None
        try:
            result = preconditioned_conjugate_gradient(
                system,
                rhs,
                preconditioner=state.anchor.solve,
                x0=x0,
                tol=self.pcg_tol,
                max_iter=self.reanchor_budget,
            )
        except ConvergenceError:
            self._counters["reanchors"] += 1
            registry.counter("workspace.reanchors").inc()
            return anchor_here()
        self._counters["pcg_solves"] += 1
        self._counters["pcg_iterations"] += result.iterations
        if warm:
            self._counters["warm_starts"] += 1
            registry.counter("workspace.warm_starts").inc()
        registry.histogram("workspace.pcg.iterations").observe(result.iterations)
        info = SolveInfo(
            method="pcg",
            size=self.n_total,
            iterations=result.iterations,
            final_residual=result.final_residual,
            converged=result.converged,
            warm_started=warm,
        )
        return result.x, info, {"anchor_lam": state.anchor_lam}

    # ------------------------------------------------------------------
    # Multigrid (coarsening V-cycle preconditioned PCG)
    # ------------------------------------------------------------------

    def hierarchy(self) -> CoarseningHierarchy | MatrixFreeHierarchy:
        """The graph's coarsening hierarchy, built once per workspace.

        λ- and mask-independent: the Galerkin coarse operator of a graph
        Laplacian is the Laplacian of the coarsened graph, so the
        hierarchy caches what one λ-sweep shares across its grid.  The
        representation follows the resolved ``hierarchy_mode``:
        ``"assembled"`` keeps per-level CSR matrices, ``"matrix_free"``
        keeps O(N) aggregate maps and applies coarse operators through
        the fine Laplacian (identical aggregates either way — the same
        matching passes run over the same coarse graphs).
        """
        self.check_current()
        if self._hierarchy is None:
            min_coarse = max(512, self.n_total // MULTIGRID_COARSE_DIVISOR)
            if self._hierarchy_mode == "matrix_free":
                # Share the workspace's Laplacian: the hierarchy smooths
                # through L₀, and retaining a second copy of the largest
                # matrix in the pipeline would defeat the O(N) budget.
                self._hierarchy = build_matrix_free_hierarchy(
                    self.weights,
                    min_coarse_size=min_coarse,
                    fine_laplacian=self.laplacian if self._is_sparse else None,
                )
            else:
                self._hierarchy = build_hierarchy(
                    self.weights, min_coarse_size=min_coarse
                )
            self._counters["coarsen_builds"] += 1
            registry = obs.get_registry()
            registry.counter("workspace.coarsen.builds").inc()
            # Which preconditioning path this run committed to — the
            # metric name carries the resolved mode + smoothing dtype so
            # `repro obs top` and the OpenMetrics export show it without
            # needing label support.
            registry.counter(
                f"workspace.path.{self._hierarchy_mode}.{self.dtype_policy}"
            ).inc()
        return self._hierarchy

    def _coarse_mask_diagonals(self, n: int) -> list[np.ndarray]:
        """Per-level Galerkin diagonals of the labeled-mask ``V`` (cached)."""
        cached = self._coarse_masks.get(n)
        if cached is None:
            indicator = np.zeros(self.n_total)
            indicator[:n] = 1.0
            cached = self.hierarchy().coarsen_diagonal(indicator)
            self._coarse_masks[n] = cached
        return cached

    def _multigrid_preconditioner(self, lam: float, n: int):
        hierarchy = self.hierarchy()
        if self._hierarchy_mode == "matrix_free":
            return MatrixFreeMultigridPreconditioner(
                self.soft_system(lam, n),
                hierarchy,
                lam,
                self._coarse_mask_diagonals(n),
                dtype_policy=self.dtype_policy,
            )
        systems = [self.soft_system(lam, n)]
        for level, mask in zip(hierarchy.levels, self._coarse_mask_diagonals(n)):
            systems.append(
                (lam * level.laplacian + sparse.diags(mask, format="csr")).tocsr()
            )
        prolongations = [level.prolongation for level in hierarchy.levels]
        return MultigridPreconditioner(
            systems, prolongations, dtype_policy=self.dtype_policy
        )

    def _solve_multigrid(self, y: np.ndarray, lam: float, n: int):
        state = self._continuation("soft", n)
        system = self.soft_system(lam, n)
        rhs = self._rhs_soft(y)
        registry = obs.get_registry()
        preconditioner = self._multigrid_preconditioner(lam, n)
        x0 = state.last_solution
        warm = x0 is not None
        try:
            result = preconditioned_conjugate_gradient(
                system,
                rhs,
                preconditioner=preconditioner,
                x0=x0,
                tol=self.pcg_tol,
                max_iter=MULTIGRID_MAX_ITER,
            )
        except ConvergenceError:
            # A stalled V-cycle (pathological graph) falls back to an
            # exact factorization at this λ, like a factored re-anchor.
            self._counters["reanchors"] += 1
            registry.counter("workspace.reanchors").inc()
            factor = self.factorization("soft", lam, n)
            return factor.solve(rhs), factor.info(), {"fallback": "exact"}
        self._counters["multigrid_solves"] += 1
        self._counters["pcg_iterations"] += result.iterations
        registry.counter("workspace.multigrid_solves").inc()
        if warm:
            self._counters["warm_starts"] += 1
            registry.counter("workspace.warm_starts").inc()
        registry.histogram("workspace.pcg.iterations").observe(result.iterations)
        info = SolveInfo(
            method="multigrid_pcg",
            size=self.n_total,
            iterations=result.iterations,
            final_residual=result.final_residual,
            converged=result.converged,
            warm_started=warm,
        )
        return result.x, info, {"n_levels": preconditioner.n_levels}

    # ------------------------------------------------------------------
    # Warm-started classic iterative backends
    # ------------------------------------------------------------------

    def _solve_iterative(self, y: np.ndarray, lam: float, n: int, method: str):
        state = self._continuation("soft", n)
        system = self.soft_system(lam, n)
        rhs = self._rhs_soft(y)
        x0 = state.last_solution
        scores, info = solve_spd(
            system, rhs, method=method, x0=x0, return_info=True
        )
        if x0 is not None:
            self._counters["warm_starts"] += 1
            obs.get_registry().counter("workspace.warm_starts").inc()
            if state.cold_iterations is not None:
                saved = max(0, state.cold_iterations - info.iterations)
                self._counters["iterations_saved"] += saved
                info = info._replace(iterations_saved=saved)
        else:
            state.cold_iterations = info.iterations
        return scores, info, {}

    # ------------------------------------------------------------------
    # Public solves
    # ------------------------------------------------------------------

    def _check_labels(self, y) -> np.ndarray:
        y = check_labels(y, name="y_labeled")
        if y.shape[0] > self.n_total:
            raise DataValidationError(
                f"y_labeled has length {y.shape[0]} but the graph has only "
                f"{self.n_total} vertices"
            )
        return y

    def _resolve_backend(self, backend: str | None) -> str:
        if self.exact:
            return "exact"
        resolved = backend or self.backend
        if resolved not in SWEEP_BACKENDS + _ITERATIVE_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {SWEEP_BACKENDS + _ITERATIVE_BACKENDS}, "
                f"got {resolved!r}"
            )
        return resolved

    def solve_soft(self, y_labeled, lam: float, *, backend: str | None = None):
        """Solve the soft criterion at one λ through the workspace.

        ``lam = 0`` delegates to :meth:`solve_hard` (Proposition II.1),
        exactly as the direct path does.  Returns a
        :class:`~repro.core.result.FitResult`.
        """
        y = self._check_labels(y_labeled)
        lam = check_positive_scalar(lam, "lam", allow_zero=True)
        resolved = self._resolve_backend(backend)
        n = y.shape[0]
        m = self.n_total - n
        if lam == 0.0:
            hard = self.solve_hard(y)
            return _fit_result(
                scores=hard.scores,
                n_labeled=n,
                lam=0.0,
                method=f"workspace[{resolved}]->hard",
                criterion="soft",
                details=dict(hard.details),
                solve_info=hard.solve_info,
            )
        self.check_current()
        with obs.span(
            "repro.workspace.solve",
            kind="soft",
            backend=resolved,
            lam=float(lam),
            n=n,
            m=m,
        ) as span:
            if resolved == "exact":
                factor = self.factorization("soft", lam, n)
                scores = factor.solve(self._rhs_soft(y))
                info, details = factor.info(), {}
            elif resolved == "spectral":
                scores, info, details = self._solve_spectral(y, lam, n)
            elif resolved == "factored":
                scores, info, details = self._solve_factored(y, lam, n)
            elif resolved == "multigrid":
                scores, info, details = self._solve_multigrid(y, lam, n)
            else:
                scores, info, details = self._solve_iterative(y, lam, n, resolved)
            self._continuation("soft", n).last_solution = scores
            if span.recording:
                span.set_attribute("solve_method", info.method)
                span.set_attribute("iterations", info.iterations)
            registry = obs.get_registry()
            registry.counter("workspace.solves").inc()
            details = {
                "system_size": self.n_total,
                "backend": resolved,
                **details,
            }
            return _fit_result(
                scores=scores,
                n_labeled=n,
                lam=float(lam),
                method=f"workspace[{resolved}]",
                criterion="soft",
                details=details,
                solve_info=info,
            )

    def solve_hard(self, y_labeled, *, backend: str | None = None):
        """Solve the hard criterion through the cached grounded factorization.

        The grounded system is λ-independent, so the first solve
        factorizes and every later one is a back-substitution.  The
        spectral/factored backends route here too: the factorization is
        already amortized across the sweep.
        """
        y = self._check_labels(y_labeled)
        n = y.shape[0]
        m = self.n_total - n
        if m == 0:
            return _fit_result(
                scores=y.copy(), n_labeled=n, lam=0.0,
                method="workspace[exact]", criterion="hard", details={"m": 0},
            )
        self.check_current()
        with obs.span(
            "repro.workspace.solve", kind="hard", backend="exact", n=n, m=m
        ):
            factor = self.factorization("hard", 0.0, n)
            if self._is_sparse:
                rhs = np.asarray(self.weights[n:, :n] @ y).ravel()
            else:
                rhs = self.weights[n:, :n] @ y
            f_unlabeled = factor.solve(rhs)
            obs.get_registry().counter("workspace.solves").inc()
            return _fit_result(
                scores=np.concatenate([y, f_unlabeled]),
                n_labeled=n,
                lam=0.0,
                method="workspace[exact]",
                criterion="hard",
                details={"m": m, "system_size": m},
                solve_info=factor.info(),
            )

    def sweep_soft(
        self, y_labeled, lambdas, *, backend: str | None = None
    ) -> list:
        """Solve the soft criterion along a λ grid with continuation.

        Grid points are solved in the given order so warm starts and the
        anchored preconditioner track the continuation path; pass an
        increasing grid for the best amortization.
        """
        grid = tuple(lambdas)
        with obs.span(
            "repro.workspace.sweep",
            backend=self._resolve_backend(backend),
            n_points=len(grid),
        ) as span:
            fits = [
                self.solve_soft(y_labeled, lam, backend=backend)
                for lam in grid
            ]
            if span.recording:
                from repro.obs.probes import record_workspace_stats

                record_workspace_stats(span, self.stats())
            return fits

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def stats(self) -> WorkspaceStats:
        """A snapshot of the workspace's cache/solver counters."""
        return WorkspaceStats(
            **self._counters,
            dtype_policy=self.dtype_policy,
            hierarchy_mode=self._hierarchy_mode,
        )

    def __repr__(self) -> str:
        kind = "sparse" if self._is_sparse else "dense"
        return (
            f"SolveWorkspace(n_total={self.n_total}, {kind}, "
            f"backend={self.backend!r}, exact={self.exact}, "
            f"cached_factors={len(self._factors)})"
        )
