"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated
``ValueError``/``RuntimeError`` instances::

    try:
        fit = solve_hard_criterion(weights, labels)
    except ReproError as exc:
        log.warning("graph SSL failed: %s", exc)
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataValidationError",
    "GraphStructureError",
    "DisconnectedGraphError",
    "SingularSystemError",
    "ConvergenceError",
    "AssumptionViolationError",
    "NotFittedError",
    "ConfigurationError",
    "NonFiniteMetricError",
    "WorkspaceInvalidatedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataValidationError(ReproError, ValueError):
    """Raised when user-supplied arrays fail shape/dtype/finite checks."""


class GraphStructureError(ReproError, ValueError):
    """Raised when a similarity graph is structurally unusable.

    Examples: a non-square or asymmetric weight matrix, negative weights,
    or an isolated unlabeled vertex with zero degree.
    """


class DisconnectedGraphError(GraphStructureError):
    """Raised when unlabeled vertices cannot reach any labeled vertex.

    The hard criterion's linear system ``(D22 - W22) f_u = W21 y`` is
    singular exactly when some connected component of the graph contains
    unlabeled vertices only; there is then no information with which to
    label that component.
    """

    def __init__(self, message: str, component_indices: tuple[int, ...] = ()):
        super().__init__(message)
        #: Indices (into the full vertex set) of one offending component.
        self.component_indices = component_indices


class SingularSystemError(ReproError, ValueError):
    """Raised when a linear system required by a criterion is singular."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative solver fails to reach tolerance.

    Carries the iteration count and final residual so callers can decide
    whether to retry with a looser tolerance or a direct solver.
    """

    def __init__(self, message: str, iterations: int = -1, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AssumptionViolationError(ReproError, ValueError):
    """Raised when inputs violate the assumptions of Theorem II.1.

    Only raised by the strict-mode theory checkers in
    :mod:`repro.core.theory`; the estimators themselves accept any valid
    graph and merely warn, because the paper's own experiments use a
    kernel (the Gaussian RBF) that violates the compact-support condition.
    """


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``predict``/``score`` is called before ``fit``."""


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid experiment or estimator configuration values."""


class WorkspaceInvalidatedError(ReproError, RuntimeError):
    """Raised when a solve workspace detects its graph was mutated.

    A :class:`~repro.linalg.workspace.SolveWorkspace` fingerprints its
    weight matrix at construction; serving a cached factorization or
    eigenbasis after the weights changed would silently return answers
    for a different graph, so the workspace raises this instead (unless
    built with ``on_mutation="recompute"``).
    """


class NonFiniteMetricError(ReproError, ValueError):
    """Raised when a replicate returns a NaN/inf metric under strict mode.

    A non-finite replicate value would silently poison every downstream
    mean/std/sem; :func:`repro.experiments.runner.run_replicates` raises
    this (naming the metric and replicate index) unless ``strict=False``,
    in which case it warns and counts the event instead.
    """
