"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro figure1 --replicates 50 --seed 0
    python -m repro figure5 --images-per-class 100 --repeats 2
    python -m repro toy
    python -m repro complexity
    python -m repro prop21
    python -m repro prop22
    python -m repro proof-constructs
    python -m repro consistency
    python -m repro metric-study
    python -m repro m-growth --gamma 1.5
    python -m repro tuned-lambda
    python -m repro serve-eval --n-ref 2000 --queries 256

Each command prints the regenerated series as an aligned table and,
with ``--csv PATH``, also writes it as CSV.

Every experiment command also accepts ``--trace PATH.jsonl``, which
runs it under a recording tracer (see :mod:`repro.obs`) and writes the
span trace — per-replicate spans, graph statistics, solver health — as
JSONL, and ``--metrics PATH.json``, which dumps the metrics-registry
snapshot at exit (even when the command fails).  Render a written trace
with::

    python -m repro trace-report PATH.jsonl

Long runs can stream live progress — heartbeats plus one event per
completed replicate — to stderr with ``--progress`` and/or to a durable
JSONL file with ``--progress-jsonl PATH.jsonl`` (fsynced per event, so
an interrupted run leaves a readable, ingestable prefix).

Benchmark trajectories (``BENCH_<runid>.json`` files written by the
benchmark harness; see docs/BENCHMARKING.md) have two verbs::

    python -m repro bench-report BENCH_RUN.json
    python -m repro bench-compare OLD.json [MID.json ...] NEW.json

``bench-compare`` takes two or more runs (shell globs welcome), orders
them by creation time, judges each benchmark oldest-vs-newest, and exits
non-zero when one regressed beyond the threshold — the CI perf gate.

The run ledger (``repro obs``; see docs/OBSERVABILITY.md) turns loose
artifacts into a persistent, queryable history::

    python -m repro obs ingest benchmarks/results/*.json trace.jsonl
    python -m repro obs runs
    python -m repro obs show <run-id>
    python -m repro obs history <bench-name>
    python -m repro obs trend            # exit 1 on sustained regression
    python -m repro obs span-tree <run-id>
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.report import ascii_table, format_sweep_result, write_csv

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (clean CLI error instead of a traceback)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _seed_int(text: str) -> int:
    """argparse type: a non-negative integer (SeedSequence rejects < 0)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _jobs_int(text: str) -> int:
    """argparse type: a worker count >= 1, or -1 for one worker per CPU."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 1 and value != -1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 or -1 (one worker per CPU), got {value}"
        )
    return value


def _print_sweep(result, csv_path) -> None:
    print(format_sweep_result(result))
    if csv_path:
        path = write_csv(csv_path, result.headers(), result.to_rows())
        print(f"\nwrote {path}")


def _print_rows(title: str, headers, rows, csv_path) -> None:
    print(title)
    print(ascii_table(headers, rows))
    if csv_path:
        path = write_csv(csv_path, headers, rows)
        print(f"\nwrote {path}")


def _cmd_figure(args) -> int:
    from repro.experiments.figures import run_figure1, run_figure2, run_figure3, run_figure4

    drivers = {
        "figure1": run_figure1,
        "figure2": run_figure2,
        "figure3": run_figure3,
        "figure4": run_figure4,
    }
    result = drivers[args.command](
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs
    )
    _print_sweep(result, args.csv)
    return 0


def _cmd_figure5(args) -> int:
    from repro.experiments.figures import run_figure5

    result = run_figure5(
        images_per_class=args.images_per_class,
        repeats=args.repeats,
        seed=args.seed,
    )
    _print_sweep(result, args.csv)
    return 0


def _cmd_toy(args) -> int:
    from repro.experiments.figures import run_toy_example

    result = run_toy_example(seed=args.seed)
    _print_rows(
        "Section III toy example",
        ["check", "max deviation"],
        [
            ["scores vs labeled mean", result.max_score_deviation],
            ["(D22-W22)^-1 vs paper formula", result.max_inverse_deviation],
        ],
        args.csv,
    )
    return 0 if result.ok else 1


def _cmd_complexity(args) -> int:
    from repro.experiments.figures import run_complexity_experiment

    result = run_complexity_experiment(seed=args.seed or 0)
    _print_rows(
        "Section II complexity claim", result.headers(), result.to_rows(), args.csv
    )
    print(
        f"fitted exponents: hard={result.hard_exponent:.2f}, "
        f"soft_full={result.soft_exponent:.2f}"
    )
    return 0


def _cmd_prop21(args) -> int:
    from repro.experiments.figures import run_prop21_experiment

    result = run_prop21_experiment(
        seed=args.seed or 0, sweep_backend=args.sweep_backend,
        dtype_policy=args.dtype_policy,
    )
    _print_rows(
        "Proposition II.1 (lambda -> 0)",
        result.headers(),
        result.to_rows(),
        args.csv,
    )
    return 0 if result.converges else 1


def _cmd_prop22(args) -> int:
    from repro.experiments.figures import run_prop22_experiment

    result = run_prop22_experiment(
        seed=args.seed or 0, sweep_backend=args.sweep_backend,
        dtype_policy=args.dtype_policy,
    )
    _print_rows(
        "Proposition II.2 (lambda -> inf)",
        result.headers(),
        result.to_rows(),
        args.csv,
    )
    print(f"hard RMSE {result.hard_rmse:.4f}; gap {result.inconsistency_gap:.4f}")
    return 0 if result.collapses_to_mean else 1


def _cmd_proof_constructs(args) -> int:
    from repro.validation import run_proof_construct_sweep

    snaps = run_proof_construct_sweep(seed=args.seed)
    rows = [
        [s.n, s.tiny_elements_max, s.spectral_radius, s.g_max, s.hard_nw_gap]
        for s in snaps
    ]
    _print_rows(
        "Section IV proof constructs",
        ["n", "||D22^-1 W22||max", "spec radius", "max |g|", "max |f-NW|"],
        rows,
        args.csv,
    )
    return 0


def _cmd_consistency(args) -> int:
    from repro.validation import run_consistency_curve

    curve = run_consistency_curve(
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs
    )
    _print_rows(
        f"Theorem II.1 empirical consistency (eps={curve.epsilon})",
        curve.headers(),
        curve.to_rows(),
        args.csv,
    )
    return 0


def _cmd_metric_study(args) -> int:
    from repro.experiments.extensions import run_metric_study

    result = run_metric_study(
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs
    )
    _print_sweep(result, args.csv)
    return 0


def _cmd_m_growth(args) -> int:
    from repro.experiments.extensions import run_m_growth_study

    result = run_m_growth_study(
        gamma=args.gamma, n_replicates=args.replicates, seed=args.seed,
        n_jobs=args.jobs,
    )
    _print_rows(
        f"m-growth study (m ~ n^{args.gamma:g})",
        result.headers(),
        result.to_rows(),
        args.csv,
    )
    print(f"hard always ahead: {result.hard_always_ahead()}")
    return 0


def _cmd_lambda_curve(args) -> int:
    from repro.experiments.lambda_curve import run_lambda_curve

    curve = run_lambda_curve(
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs,
        sweep_backend=args.sweep_backend, dtype_policy=args.dtype_policy,
    )
    rows = [[f"{lam:g}", value] for lam, value in zip(curve.lambdas, curve.rmse)]
    _print_rows("lambda-degradation curve", curve.headers(), rows, args.csv)
    print(
        f"anchors: hard = {curve.hard_rmse:.4f}, "
        f"constant mean = {curve.mean_rmse:.4f}"
    )
    return 0 if curve.interpolates_anchors else 1


def _cmd_ablation(args) -> int:
    from repro.experiments.ablations import (
        run_bandwidth_ablation,
        run_graph_ablation,
        run_kernel_ablation,
        run_solver_ablation,
    )

    if args.axis == "solvers":
        result = run_solver_ablation(seed=args.seed or 0)
        _print_rows("solver ablation", result.headers(), result.to_rows(), args.csv)
        return 0
    drivers = {
        "kernels": run_kernel_ablation,
        "bandwidth": run_bandwidth_ablation,
        "graph": run_graph_ablation,
    }
    result = drivers[args.axis](
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs
    )
    _print_sweep(result, args.csv)
    return 0


def _cmd_diagnose(args) -> int:
    from repro.datasets.io import load_transductive_npz
    from repro.graph.diagnostics import diagnose_graph
    from repro.graph.similarity import build_similarity_graph
    from repro.kernels.bandwidth import median_heuristic

    problem = load_transductive_npz(args.path)
    bandwidth = args.bandwidth
    if bandwidth is None:
        bandwidth = median_heuristic(problem.x_all, subsample=500, seed=0)
        print(f"bandwidth: median heuristic -> {bandwidth:.4g}")
    params = {}
    if args.graph == "knn":
        params["k"] = args.k
        params["mode"] = args.mode
    elif args.graph == "epsilon":
        if args.radius is None:
            print("error: --radius is required with --graph epsilon", file=sys.stderr)
            return 2
        params["radius"] = args.radius
    if args.graph in ("knn", "epsilon"):
        params["construction_method"] = args.construction
    graph = build_similarity_graph(
        problem.x_all, construction=args.graph, bandwidth=bandwidth, **params
    )
    if graph.is_sparse:
        n = graph.n_vertices
        dense_bytes = n * n * 8
        sparse_bytes = graph.weights.nnz * 8
        print(
            f"sparse {graph.construction} graph "
            f"({graph.params.get('construction', 'auto')} route): "
            f"nnz={graph.weights.nnz} "
            f"(~{sparse_bytes / 1e6:.1f} MB vs {dense_bytes / 1e6:.1f} MB dense)"
        )
    report = diagnose_graph(graph.weights, problem.n_labeled)
    print(report.summary())
    return 0 if report.healthy else 1


def _cmd_trace_report(args) -> int:
    import json

    from repro.obs.export import load_jsonl, render_trace_report, render_tree

    try:
        records = load_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such trace file: {args.path}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read trace file {args.path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not a JSONL trace: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"empty trace: {args.path} contains no spans")
        return 0
    print(render_trace_report(records))
    if args.tree:
        print()
        print(render_tree(records, max_spans=args.max_spans))
    return 0


def _load_bench_file(path):
    """Load a bench run for the CLI; returns (run, error_message)."""
    import json

    from repro.obs.bench import load_bench_run

    try:
        return load_bench_run(path), None
    except FileNotFoundError:
        return None, f"error: no such bench file: {path}"
    except OSError as exc:
        return None, f"error: cannot read bench file {path}: {exc}"
    except (json.JSONDecodeError, ValueError) as exc:
        return None, f"error: {exc}"


def _cmd_bench_report(args) -> int:
    from repro.obs.bench import render_bench_report

    run, error = _load_bench_file(args.path)
    if error:
        print(error, file=sys.stderr)
        return 2
    print(render_bench_report(run))
    return 0


def _expand_globs(patterns) -> list[str]:
    """Expand any glob patterns among ``patterns`` (literal paths pass through).

    Covers shells that hand the pattern over unexpanded (quoted globs,
    CI YAML); a pattern matching nothing is kept literally so the error
    message names it.
    """
    import glob

    paths: list[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            paths.extend(sorted(glob.glob(pattern)) or [pattern])
        else:
            paths.append(pattern)
    return paths


def _cmd_bench_compare(args) -> int:
    from repro.obs.bench import compare_run_sequence, render_bench_compare

    paths = _expand_globs(args.runs)
    if len(paths) < 2:
        print(
            f"error: bench-compare needs at least two run files, got {len(paths)}",
            file=sys.stderr,
        )
        return 2
    runs = []
    for path in paths:
        run, error = _load_bench_file(path)
        if error:
            print(error, file=sys.stderr)
            return 2
        runs.append(run)
    comparison = compare_run_sequence(
        runs, threshold=args.threshold, min_repeats=args.min_repeats
    )
    if len(paths) > 2:
        print(f"comparing {len(paths)} runs, oldest -> newest per benchmark")
    print(render_bench_compare(comparison))
    return 0 if comparison.ok else 1


def _open_ledger(args):
    import sqlite3

    from repro.exceptions import ConfigurationError
    from repro.obs.ledger import RunLedger

    try:
        return RunLedger(args.ledger)
    except (sqlite3.Error, ValueError) as exc:
        # A corrupt or non-SQLite --ledger file is a configuration
        # problem, not a crash: surface it as the usual one-line
        # ``error:`` + exit 2, for every obs verb at once.
        raise ConfigurationError(
            f"cannot open ledger {args.ledger}: {exc}"
        ) from exc


def _load_metrics_source(args) -> tuple[dict, str]:
    """Resolve ``{name: snapshot}`` metrics for obs slo/export-metrics.

    Exactly one source must be given: ``--metrics-dump PATH.json`` (a
    ``repro.metrics/v1`` document) or ``--ledger PATH.sqlite`` with an
    optional ``--run ID`` (default: the most recently created metrics
    run).  Returns ``(metrics, source_label)``.
    """
    import json

    from repro.exceptions import ConfigurationError

    dump = getattr(args, "metrics_dump", None)
    ledger_path = getattr(args, "ledger", None)
    if (dump is None) == (ledger_path is None):
        raise ConfigurationError(
            "provide exactly one metrics source: a metrics dump "
            "(--metrics-dump PATH.json) or a ledger run "
            "(--ledger PATH.sqlite [--run ID])"
        )
    if dump is not None:
        try:
            with open(dump) as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read metrics dump {dump}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{dump} is not valid JSON: {exc}") from exc
        metrics = payload.get("metrics") if isinstance(payload, dict) else None
        if not isinstance(metrics, dict):
            raise ConfigurationError(
                f"{dump} is not a repro.metrics/v1 dump (no 'metrics' object)"
            )
        return metrics, str(dump)
    with _open_ledger(args) as ledger:
        run_id = getattr(args, "run", None)
        if run_id is None:
            runs = ledger.runs(kind="metrics")
            if not runs:
                raise ConfigurationError(
                    f"ledger {ledger_path} has no ingested metrics runs"
                )
            run_id = runs[-1]["run_id"]
        try:
            metrics = ledger.metric_values(run_id)
        except KeyError as exc:
            raise ConfigurationError(str(exc.args[0])) from exc
    return metrics, f"{ledger_path}:{run_id}"


def _cmd_obs_ingest(args) -> int:
    import json

    ledger = _open_ledger(args)
    paths = _expand_globs(args.paths)
    failures = 0
    with ledger:
        for path in paths:
            try:
                result = ledger.ingest(path)
            except FileNotFoundError:
                print(f"error: no such file: {path}", file=sys.stderr)
                failures += 1
                continue
            except (OSError, json.JSONDecodeError, ValueError) as exc:
                print(f"error: cannot ingest {path}: {exc}", file=sys.stderr)
                failures += 1
                continue
            verb = "replaced" if result.replaced else "ingested"
            print(
                f"{verb} {result.kind} run {result.run_id} "
                f"({result.n_records} record(s), {result.status}) from {path}"
            )
    print(f"ledger: {args.ledger} ({len(paths) - failures}/{len(paths)} artifact(s) ok)")
    return 0 if failures == 0 else 2


def _cmd_obs_runs(args) -> int:
    with _open_ledger(args) as ledger:
        rows = ledger.runs(kind=args.kind)
    if not rows:
        print("ledger is empty (use 'repro obs ingest' first)")
        return 0
    import time as _time

    table = [
        [
            row["run_id"],
            row["kind"],
            row["status"],
            "-"
            if not row["created_unix"]
            else _time.strftime("%Y-%m-%d %H:%M", _time.gmtime(row["created_unix"])),
            str(row["git_sha"] or "-")[:12],
            row["env_digest"] or "-",
            row["n_records"],
        ]
        for row in rows
    ]
    print(ascii_table(
        ["run", "kind", "status", "created (UTC)", "git", "env", "records"], table
    ))
    return 0


def _cmd_obs_show(args) -> int:
    with _open_ledger(args) as ledger:
        try:
            detail = ledger.show(args.run_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    print(f"run {detail['run_id']}: {len(detail['artifacts'])} artifact(s)")
    for entry in detail["artifacts"]:
        env = entry.get("environment") or {}
        print(
            f"\n[{entry['kind']}] status={entry['status']} "
            f"records={entry['n_records']} git={str(env.get('git_sha'))[:12]} "
            f"source={entry.get('source_path')}"
        )
        if entry["kind"] == "bench" and entry.get("benchmarks"):
            rows = [
                [
                    b["name"],
                    b["repeats"],
                    "-" if b["min_s"] is None else f"{b['min_s'] * 1e3:.4g}ms",
                    "-" if b["peak_bytes"] is None else f"{b['peak_bytes'] / 1e6:.2f}",
                    b["solves"] if b["solves"] is not None else "-",
                ]
                for b in entry["benchmarks"]
            ]
            print(ascii_table(["benchmark", "repeats", "min", "peak MB", "solves"], rows))
        elif entry["kind"] == "metrics" and entry.get("metrics"):
            print(f"{len(entry['metrics'])} metric(s): " + ", ".join(sorted(entry["metrics"])[:10]))
        elif entry["kind"] == "trace":
            print(f"{entry.get('span_count', 0)} span(s) (render: repro obs span-tree {detail['run_id']})")
        elif entry["kind"] == "progress" and entry.get("tasks"):
            rows = [
                [
                    t["task"],
                    f"{t['completed'] or 0}/{t['total'] or '?'}",
                    "-" if t["elapsed_s"] is None else f"{t['elapsed_s']:.1f}s",
                    t["heartbeats"] or 0,
                ]
                for t in entry["tasks"]
            ]
            print(ascii_table(["task", "completed", "elapsed", "heartbeats"], rows))
    return 0


def _cmd_obs_history(args) -> int:
    from repro.obs.trend import render_history

    with _open_ledger(args) as ledger:
        points = ledger.history(args.bench)
        known = ledger.bench_names()
    if not points:
        hint = f" (known: {', '.join(known)})" if known else ""
        print(f"error: no history for benchmark {args.bench!r}{hint}", file=sys.stderr)
        return 2
    print(render_history(args.bench, points))
    return 0


def _cmd_obs_trend(args) -> int:
    from repro.obs.trend import render_trend_report, trend_runs

    with _open_ledger(args) as ledger:
        runs = ledger.bench_runs()
    if not runs:
        print("no bench runs in the ledger; nothing to gate")
        return 0
    report = trend_runs(
        runs,
        threshold=args.threshold,
        min_repeats=args.min_repeats,
        sustain=args.sustain,
    )
    print(f"trend over {len(runs)} bench run(s)")
    print(render_trend_report(report))
    return 0 if report.ok else 1


def _cmd_obs_span_tree(args) -> int:
    from repro.obs.ledger import render_span_tree

    with _open_ledger(args) as ledger:
        try:
            records = ledger.span_records(args.run_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    print(render_span_tree(records, max_spans=args.max_spans))
    return 0


def _cmd_obs_slo(args) -> int:
    from repro.obs.slo import evaluate_slo, load_slo_spec

    spec = load_slo_spec(args.spec)
    metrics, source = _load_metrics_source(args)
    report = evaluate_slo(spec, metrics)
    print(f"SLO spec {args.spec} vs {source}")
    print(report.render())
    return 1 if report.breached else 0


def _cmd_obs_export_metrics(args) -> int:
    from repro.obs.export import atomic_write_text
    from repro.obs.openmetrics import parse_openmetrics, render_openmetrics

    metrics, source = _load_metrics_source(args)
    try:
        text = render_openmetrics(metrics)
    except ValueError as exc:
        print(f"error: cannot expose {source}: {exc}", file=sys.stderr)
        return 2
    # Self-lint before anything is written: the exporter must never
    # produce text our own parser (or a Prometheus scraper) rejects.
    parse_openmetrics(text)
    if args.output is not None:
        path = atomic_write_text(args.output, text)
        print(f"wrote OpenMetrics exposition: {path} ({len(metrics)} metric(s))")
    else:
        print(text, end="")
    return 0


def _cmd_obs_lint_metrics(args) -> int:
    from repro.obs.openmetrics import OpenMetricsError, parse_openmetrics

    try:
        text = open(args.path).read()
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        families = parse_openmetrics(text)
    except OpenMetricsError as exc:
        print(f"{args.path}: INVALID — {exc}", file=sys.stderr)
        return 1
    n_samples = sum(len(family.samples) for family in families.values())
    print(f"{args.path}: OK ({len(families)} family(ies), {n_samples} sample(s))")
    return 0


def _cmd_obs_top(args) -> int:
    from repro.obs.dashboard import run_top

    try:
        return run_top(
            args.progress,
            args.metrics_dump,
            interval=args.interval,
            max_refreshes=args.refreshes,
        )
    except KeyboardInterrupt:
        # Ctrl-C is how a live dashboard normally ends.
        print()
        return 0


def _cmd_tuned_lambda(args) -> int:
    from repro.experiments.extensions import run_tuned_lambda_study

    result = run_tuned_lambda_study(
        n_replicates=args.replicates, seed=args.seed, n_jobs=args.jobs,
        sweep_backend=args.sweep_backend, dtype_policy=args.dtype_policy,
    )
    _print_rows(
        "untuned hard vs CV-tuned soft",
        ["method", "mean RMSE"],
        [["hard (lambda=0)", result.hard_rmse], ["soft (CV lambda)", result.tuned_rmse]],
        args.csv,
    )
    print(
        f"CV selected lambda=0 in {100 * result.fraction_choosing_zero():.0f}% "
        f"of replicates"
    )
    return 0


def _cmd_serve_eval(args) -> int:
    from repro.serving.evaluate import run_serve_eval

    result = run_serve_eval(
        n_reference=args.n_ref,
        n_labeled=args.n_labeled,
        n_queries=args.queries,
        batch_size=args.batch_size,
        methods=args.method,
        graph=args.graph,
        k=args.k,
        lam=args.lam,
        parity_sample=args.parity_sample,
        seed=args.seed,
        n_jobs=args.jobs,
        telemetry=not args.no_telemetry,
    )
    _print_rows(
        f"serving evaluation (N={result.n_reference}, "
        f"{result.n_queries} queries, batch={result.batch_size}, "
        f"graph={result.graph})",
        result.headers(),
        result.to_rows(),
        args.csv,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artifacts from 'On Consistency of "
        "Graph-based Semi-supervised Learning' (ICDCS 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, replicates_default=25):
        p.add_argument("--seed", type=_seed_int, default=None, help="master RNG seed")
        p.add_argument("--csv", type=str, default=None, help="also write CSV here")
        p.add_argument(
            "--replicates", type=_positive_int, default=replicates_default,
            help="replicates per grid point",
        )
        p.add_argument(
            "--jobs", type=_jobs_int, default=1, metavar="N",
            help="worker processes for replicate fan-out (1 = serial, "
            "-1 = one per CPU); results are identical at every setting",
        )
        p.add_argument(
            "--trace", type=str, default=None, metavar="PATH.jsonl",
            help="record a span trace (solver health, graph stats) as JSONL",
        )
        p.add_argument(
            "--metrics", type=str, default=None, metavar="PATH.json",
            help="dump the metrics-registry snapshot as JSON at exit "
            "(written even when the command fails)",
        )
        p.add_argument(
            "--progress", action="store_true",
            help="stream live progress (heartbeats + one event per "
            "completed replicate) to stderr",
        )
        p.add_argument(
            "--progress-jsonl", type=str, default=None, metavar="PATH.jsonl",
            help="also append progress events to a durable JSONL file "
            "(fsynced per event; an interrupted run leaves a readable, "
            "ingestable prefix)",
        )

    def sweep_backend_flag(p):
        p.add_argument(
            "--sweep-backend",
            choices=("direct", "exact", "factored", "spectral", "multigrid"),
            default="direct",
            help="how lambda sweeps are solved: 'direct' refactorizes "
            "per grid point (bit-identical historical path); 'exact' "
            "caches factorizations; 'factored' reuses one anchored "
            "factorization with warm-started PCG; 'spectral' sweeps "
            "through the Laplacian eigenbasis; 'multigrid' uses "
            "coarsening-preconditioned CG, the N>=1e5 choice (see "
            "docs/SCALING.md)",
        )
        p.add_argument(
            "--dtype-policy",
            choices=("float64", "float32"),
            default="float64",
            help="multigrid smoothing precision: 'float64' (bit-stable "
            "historical path) or 'float32' (halves smoothing-matrix "
            "memory; the outer PCG stays float64, so converged scores "
            "agree to ~1e-9 RMS — see docs/SCALING.md)",
        )
        p.add_argument(
            "--memory-budget-mb",
            type=_positive_int,
            default=None,
            metavar="MB",
            help="hard cap on the command's traced allocation peak "
            "(tracemalloc, bytes above the pre-command baseline); "
            "exceeding it aborts with exit status 1 and a usage report",
        )

    for name in ("figure1", "figure2", "figure3", "figure4"):
        p = sub.add_parser(name, help=f"regenerate {name}'s series")
        common(p)
        p.set_defaults(handler=_cmd_figure)

    p = sub.add_parser("figure5", help="regenerate figure 5 (COIL-like AUC)")
    common(p)
    p.add_argument("--images-per-class", type=_positive_int, default=150)
    p.add_argument(
        "--repeats", type=_positive_int, default=2, help="fold-shuffle repeats"
    )
    p.set_defaults(handler=_cmd_figure5)

    p = sub.add_parser("toy", help="verify the Section III toy example")
    common(p)
    p.set_defaults(handler=_cmd_toy)

    p = sub.add_parser("complexity", help="Section II complexity claim")
    common(p)
    p.set_defaults(handler=_cmd_complexity)

    p = sub.add_parser("prop21", help="Proposition II.1 (lambda -> 0)")
    common(p)
    sweep_backend_flag(p)
    p.set_defaults(handler=_cmd_prop21)

    p = sub.add_parser("prop22", help="Proposition II.2 (lambda -> inf)")
    common(p)
    sweep_backend_flag(p)
    p.set_defaults(handler=_cmd_prop22)

    p = sub.add_parser("proof-constructs", help="Section IV proof constructs")
    common(p)
    p.set_defaults(handler=_cmd_proof_constructs)

    p = sub.add_parser("consistency", help="Theorem II.1 empirical consistency")
    common(p, replicates_default=40)
    p.set_defaults(handler=_cmd_consistency)

    p = sub.add_parser("metric-study", help="future work: AUC/MCC comparison")
    common(p, replicates_default=30)
    p.set_defaults(handler=_cmd_metric_study)

    p = sub.add_parser("m-growth", help="future work: m growing faster than n")
    common(p, replicates_default=20)
    p.add_argument("--gamma", type=float, default=1.0, help="m ~ n^gamma exponent")
    p.set_defaults(handler=_cmd_m_growth)

    p = sub.add_parser("tuned-lambda", help="untuned hard vs CV-tuned soft")
    common(p, replicates_default=10)
    sweep_backend_flag(p)
    p.set_defaults(handler=_cmd_tuned_lambda)

    p = sub.add_parser("lambda-curve", help="RMSE along a dense lambda grid")
    common(p, replicates_default=30)
    sweep_backend_flag(p)
    p.set_defaults(handler=_cmd_lambda_curve)

    p = sub.add_parser("ablation", help="run one design-choice ablation")
    common(p, replicates_default=20)
    p.add_argument(
        "axis", choices=("kernels", "bandwidth", "graph", "solvers"),
        help="which design axis to ablate",
    )
    p.set_defaults(handler=_cmd_ablation)

    p = sub.add_parser(
        "serve-eval",
        help="inductive serving: throughput + exact-parity per method",
    )
    # serve-eval has no replicate grid, so it takes the observability
    # flags directly instead of via common().
    p.add_argument("--seed", type=_seed_int, default=None, help="master RNG seed")
    p.add_argument("--csv", type=str, default=None, help="also write CSV here")
    p.add_argument(
        "--jobs", type=_jobs_int, default=1, metavar="N",
        help="worker processes for the batched path's query fan-out "
        "(1 = serial, -1 = one per CPU); predictions are identical at "
        "every setting",
    )
    p.add_argument(
        "--n-ref", type=_positive_int, default=2000, metavar="N",
        help="reference graph size, labeled + unlabeled (default 2000)",
    )
    p.add_argument(
        "--n-labeled", type=_positive_int, default=200, metavar="M",
        help="labeled vertices among the reference points (default 200)",
    )
    p.add_argument(
        "--queries", type=_positive_int, default=256, metavar="Q",
        help="fresh query points in the workload (default 256)",
    )
    p.add_argument(
        "--batch-size", type=_positive_int, default=64,
        help="ModelServer auto-flush threshold (default 64)",
    )
    p.add_argument(
        "--method", choices=("nw", "nystrom", "exact", "all"), default="all",
        help="serving method to evaluate (default: all three)",
    )
    p.add_argument(
        "--graph", choices=("full", "knn", "epsilon"), default="knn",
        help="reference graph family (default knn — the serving scale story)",
    )
    p.add_argument("--k", type=_positive_int, default=10, help="neighbours for knn")
    p.add_argument(
        "--lam", type=float, default=0.0,
        help="criterion: 0 = hard (default), > 0 = soft",
    )
    p.add_argument(
        "--parity-sample", type=int, default=16, metavar="P",
        help="queries re-answered by exact insertion for the deviation "
        "column (default 16; 0 disables)",
    )
    p.add_argument(
        "--trace", type=str, default=None, metavar="PATH.jsonl",
        help="record a span trace as JSONL",
    )
    p.add_argument(
        "--metrics", type=str, default=None, metavar="PATH.json",
        help="dump the metrics-registry snapshot as JSON at exit",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="stream live progress to stderr",
    )
    p.add_argument(
        "--progress-jsonl", type=str, default=None, metavar="PATH.jsonl",
        help="also append progress events to a durable JSONL file",
    )
    p.add_argument(
        "--no-telemetry", action="store_true",
        help="disable per-request serving telemetry (latency histograms, "
        "phase timings, drift watchdog) — the low-overhead mode the "
        "serving bench gates against",
    )
    p.set_defaults(handler=_cmd_serve_eval)

    p = sub.add_parser(
        "trace-report", help="render a JSONL span trace as aligned tables"
    )
    p.add_argument("path", help="trace file written by --trace PATH.jsonl")
    p.add_argument(
        "--tree", action="store_true",
        help="also print the span tree (one indented line per span)",
    )
    p.add_argument(
        "--max-spans", type=int, default=200,
        help="span-tree line cap (with --tree)",
    )
    p.set_defaults(handler=_cmd_trace_report)

    p = sub.add_parser(
        "bench-report", help="render a BENCH_*.json benchmark trajectory"
    )
    p.add_argument("path", help="bench run (BENCH_*.json) or single-record JSON")
    p.set_defaults(handler=_cmd_bench_report)

    p = sub.add_parser(
        "bench-compare",
        help="compare two or more bench trajectories (oldest vs newest "
        "per benchmark); exit 1 on timing regression",
    )
    p.add_argument(
        "runs", nargs="+", metavar="RUN.json",
        help="two or more bench runs (BENCH_*.json; globs welcome) — "
        "ordered by creation time, each benchmark is judged oldest "
        "appearance vs newest",
    )
    p.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative min-timing tolerance before a delta counts as a "
        "regression (default 0.15 = 15%%)",
    )
    p.add_argument(
        "--min-repeats", type=int, default=3,
        help="benchmarks with fewer timing repeats on either side are "
        "reported but never gate (default 3)",
    )
    p.set_defaults(handler=_cmd_bench_compare)

    obs_parser = sub.add_parser(
        "obs", help="run ledger: persistent, queryable history of runs"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    def ledger_flag(p):
        p.add_argument(
            "--ledger", type=str, default="repro_ledger.sqlite",
            metavar="PATH.sqlite", help="ledger database (default: %(default)s)",
        )

    p = obs_sub.add_parser(
        "ingest", help="ingest bench/trace/metrics/progress artifacts"
    )
    ledger_flag(p)
    p.add_argument(
        "paths", nargs="+", metavar="ARTIFACT",
        help="BENCH_*.json, trace/progress .jsonl, or metrics .json files "
        "(globs welcome); re-ingesting a run replaces it",
    )
    p.set_defaults(handler=_cmd_obs_ingest)

    p = obs_sub.add_parser("runs", help="list every run in the ledger")
    ledger_flag(p)
    p.add_argument(
        "--kind", choices=("bench", "trace", "metrics", "progress"),
        default=None, help="only runs of this artifact kind",
    )
    p.set_defaults(handler=_cmd_obs_runs)

    p = obs_sub.add_parser("show", help="all artifacts recorded for one run")
    ledger_flag(p)
    p.add_argument("run_id", help="run id (see 'repro obs runs')")
    p.set_defaults(handler=_cmd_obs_show)

    p = obs_sub.add_parser(
        "history", help="one benchmark's timing trajectory across runs"
    )
    ledger_flag(p)
    p.add_argument("bench", help="benchmark name (e.g. micro_solve_hard_n100)")
    p.set_defaults(handler=_cmd_obs_history)

    p = obs_sub.add_parser(
        "trend",
        help="multi-run regression gate; exit 1 on sustained regression",
    )
    ledger_flag(p)
    p.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative min-timing tolerance (default 0.15 = 15%%)",
    )
    p.add_argument(
        "--min-repeats", type=int, default=3,
        help="benchmarks with fewer repeats never gate (default 3)",
    )
    p.add_argument(
        "--sustain", type=int, default=2,
        help="consecutive regressed runs required before gating "
        "(default 2 — one noisy run never trips the gate)",
    )
    p.set_defaults(handler=_cmd_obs_trend)

    p = obs_sub.add_parser(
        "span-tree", help="span tree with memory attribution for one run"
    )
    ledger_flag(p)
    p.add_argument("run_id", help="run id of an ingested trace")
    p.add_argument(
        "--max-spans", type=int, default=200, help="line cap (default 200)"
    )
    p.set_defaults(handler=_cmd_obs_span_tree)

    def metrics_source_flags(p):
        # slo / export-metrics accept exactly one metrics source; --ledger
        # defaults to None here (unlike ledger_flag) so "was it given" is
        # detectable.
        p.add_argument(
            "--metrics-dump", type=str, default=None, metavar="PATH.json",
            help="metrics dump written by --metrics PATH.json",
        )
        p.add_argument(
            "--ledger", type=str, default=None, metavar="PATH.sqlite",
            help="read metric values from an ingested ledger run instead",
        )
        p.add_argument(
            "--run", type=str, default=None, metavar="ID",
            help="ledger run id (default: newest ingested metrics run)",
        )

    p = obs_sub.add_parser(
        "slo",
        help="evaluate a latency/error/throughput/drift SLO spec; "
        "exit 1 on breach",
    )
    p.add_argument("spec", help="SLO spec file (TOML or JSON)")
    metrics_source_flags(p)
    p.set_defaults(handler=_cmd_obs_slo)

    p = obs_sub.add_parser(
        "export-metrics",
        help="render a metrics dump or ledger run as OpenMetrics text",
    )
    p.add_argument(
        "metrics_dump", nargs="?", default=None, metavar="PATH.json",
        help="metrics dump to export (or use --ledger/--run)",
    )
    p.add_argument(
        "--ledger", type=str, default=None, metavar="PATH.sqlite",
        help="read metric values from an ingested ledger run instead",
    )
    p.add_argument(
        "--run", type=str, default=None, metavar="ID",
        help="ledger run id (default: newest ingested metrics run)",
    )
    p.add_argument(
        "-o", "--output", type=str, default=None, metavar="PATH.prom",
        help="write the exposition here instead of stdout",
    )
    p.set_defaults(handler=_cmd_obs_export_metrics)

    p = obs_sub.add_parser(
        "lint-metrics",
        help="validate an OpenMetrics exposition file; exit 1 if invalid",
    )
    p.add_argument("path", metavar="PATH.prom", help="exposition file to check")
    p.set_defaults(handler=_cmd_obs_lint_metrics)

    p = obs_sub.add_parser(
        "top", help="live dashboard over a run's progress/metrics files"
    )
    p.add_argument(
        "progress", metavar="PROGRESS.jsonl",
        help="progress stream written by --progress-jsonl (may not exist yet)",
    )
    p.add_argument(
        "--metrics-dump", type=str, default=None, metavar="PATH.json",
        help="also tail a metrics dump for the serving panel",
    )
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1.0)",
    )
    p.add_argument(
        "--refreshes", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until every task ends)",
    )
    p.set_defaults(handler=_cmd_obs_top)

    p = sub.add_parser(
        "diagnose", help="graph health report for a user NPZ problem"
    )
    common(p)
    p.add_argument("path", help="NPZ file with x_labeled/y_labeled/x_unlabeled")
    p.add_argument(
        "--bandwidth", type=float, default=None,
        help="kernel bandwidth (default: median heuristic)",
    )
    p.add_argument(
        "--graph", choices=("full", "knn", "epsilon"), default="full",
        help="graph family to diagnose (default: the paper's full graph)",
    )
    p.add_argument("--k", type=int, default=10, help="neighbours for --graph knn")
    p.add_argument(
        "--mode", choices=("union", "intersection"), default="union",
        help="knn symmetrization (see docs/SCALING.md)",
    )
    p.add_argument(
        "--radius", type=float, default=None, help="radius for --graph epsilon"
    )
    p.add_argument(
        "--construction",
        choices=("auto", "dense", "neighbors", "approx"), default="auto",
        help="sparsifier route: dense O(N^2), exact kd-tree neighbor "
        "queries, or approximate random-projection-tree queries "
        "('approx', knn only; see docs/SCALING.md)",
    )
    p.set_defaults(handler=_cmd_diagnose)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid configuration surfaces as a one-line ``error: ...`` message
    and exit status 2 — argparse-level validation (e.g. ``--replicates
    0``) is caught by the type functions, and any
    :class:`~repro.exceptions.ConfigurationError` a driver raises is
    caught here rather than dumped as a traceback.
    """
    from repro.exceptions import ConfigurationError

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped to e.g. `head`; the reader got everything it
        # wanted.  Detach stdout so interpreter shutdown doesn't retry.
        devnull = open(os.devnull, "w")
        os.dup2(devnull.fileno(), sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    """Run the selected handler, honoring the observability flags.

    When the command carries ``--trace PATH.jsonl``, the handler runs
    under a recording tracer and the collected spans are written to the
    given path afterwards; ``--metrics PATH.json`` likewise runs it under
    a fresh metrics registry and dumps the snapshot at exit.  Both
    artifacts are written even if the handler fails part-way, so a
    crashing experiment still leaves its evidence behind.

    ``--progress`` / ``--progress-jsonl PATH.jsonl`` install a live
    :class:`~repro.obs.progress.ProgressEmitter` as the ambient emitter;
    the JSONL sink is fsynced per event, so an interrupted run leaves a
    readable prefix the ledger ingests as a *partial* run.

    ``--memory-budget-mb MB`` runs the handler under a
    :class:`~repro.obs.bench.MemoryBudget` phase: if the traced
    allocation peak exceeds the cap the command aborts with exit status
    1 and a one-line usage report on stderr; within budget, the same
    report confirms the headroom.
    """
    budget_mb = getattr(args, "memory_budget_mb", None)
    if budget_mb:
        handler = args.handler

        def budgeted_handler(inner_args):
            from repro.obs.bench import MemoryBudget, MemoryBudgetExceeded

            gate = MemoryBudget()
            try:
                with gate.phase(
                    inner_args.command, budget_bytes=budget_mb * 2**20
                ):
                    code = handler(inner_args)
            except MemoryBudgetExceeded as exc:
                print(f"memory budget exceeded: {exc}", file=sys.stderr)
                return 1
            print(gate.phases[-1].summary(), file=sys.stderr)
            return code

        args.handler = budgeted_handler

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    progress_stderr = getattr(args, "progress", False)
    progress_jsonl = getattr(args, "progress_jsonl", None)
    if not any((trace_path, metrics_path, progress_stderr, progress_jsonl)):
        return args.handler(args)

    from contextlib import ExitStack

    from repro import obs
    from repro.obs.export import dump_metrics_json, write_jsonl

    tracer = obs.RecordingTracer() if trace_path else None
    registry = obs.MetricsRegistry() if metrics_path else None
    emitter = None
    if progress_stderr or progress_jsonl:
        emitter = obs.ProgressEmitter(
            stream=sys.stderr if progress_stderr else None,
            jsonl_path=progress_jsonl,
        )
    try:
        with ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(obs.use_tracer(tracer))
            if registry is not None:
                stack.enter_context(obs.use_registry(registry))
            if emitter is not None:
                stack.enter_context(obs.use_progress(emitter))
            code = args.handler(args)
    finally:
        # Write both artifacts before printing anything: a dead stdout
        # (closed pipe) must not cost the evidence on disk.
        written = []
        if emitter is not None:
            emitter.close()
            if progress_jsonl:
                written.append(f"\nwrote progress: {progress_jsonl}")
        if tracer is not None:
            path = write_jsonl(tracer, trace_path)
            written.append(f"\nwrote trace: {path} ({len(tracer)} spans)")
        if registry is not None:
            path = dump_metrics_json(registry, metrics_path, command=args.command)
            written.append(f"wrote metrics: {path} ({len(registry)} metrics)")
        for line in written:
            print(line)
    return code


if __name__ == "__main__":
    sys.exit(main())
