"""The ``repro serve-eval`` driver: serving throughput + parity in one table.

Builds a synthetic serving scenario — fit a reference graph, then answer
a stream of fresh query points drawn from the same input distribution —
and measures, per serving method:

* single-query throughput (a loop of ``predict`` on one point each:
  what an unbatched caller gets),
* batched throughput (the same workload streamed through a
  :class:`~repro.serving.server.ModelServer` micro-batcher),
* the maximum absolute deviation from the exact incremental-insertion
  prediction on a parity subsample (the accuracy cost of the fast
  methods; identically zero for ``method="exact"``).

Wall-clock numbers use ``time.perf_counter``; the deterministic parts
(dataset, fit, predictions) depend only on ``seed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.serving.model import SERVING_METHODS, GraphSSLModel
from repro.serving.server import ModelServer

__all__ = ["ServeEvalResult", "MethodReport", "run_serve_eval"]


@dataclass(frozen=True)
class MethodReport:
    """Throughput and parity numbers for one serving method."""

    method: str
    single_qps: float
    batched_qps: float
    speedup: float
    max_abs_dev_vs_exact: float
    parity_sample: int


@dataclass(frozen=True)
class ServeEvalResult:
    """Everything one ``serve-eval`` run measured."""

    n_reference: int
    n_labeled: int
    n_queries: int
    batch_size: int
    graph: str
    lam: float
    reports: list[MethodReport] = field(default_factory=list)

    def headers(self) -> list[str]:
        return [
            "method",
            "single q/s",
            "batched q/s",
            "speedup",
            "max |dev| vs exact",
        ]

    def to_rows(self) -> list[list]:
        return [
            [
                report.method,
                report.single_qps,
                report.batched_qps,
                report.speedup,
                report.max_abs_dev_vs_exact,
            ]
            for report in self.reports
        ]


def _resolve_methods(methods) -> tuple[str, ...]:
    if isinstance(methods, str):
        methods = ("all",) if methods == "all" else (methods,)
    resolved = []
    for method in methods:
        if method == "all":
            resolved.extend(SERVING_METHODS)
        elif method in SERVING_METHODS:
            resolved.append(method)
        else:
            raise ConfigurationError(
                f"unknown serving method {method!r}; known: "
                f"{SERVING_METHODS + ('all',)}"
            )
    deduped = tuple(dict.fromkeys(resolved))
    if not deduped:
        raise ConfigurationError("serve-eval needs at least one method")
    return deduped


def run_serve_eval(
    *,
    n_reference: int = 2000,
    n_labeled: int = 200,
    n_queries: int = 256,
    batch_size: int = 64,
    methods="all",
    graph: str = "knn",
    k: int = 10,
    lam: float = 0.0,
    parity_sample: int = 16,
    single_sample: int | None = None,
    seed=None,
    n_jobs: int | None = 1,
    telemetry: bool = True,
) -> ServeEvalResult:
    """Fit one reference graph and measure serving throughput + parity.

    Parameters
    ----------
    n_reference:
        Total reference vertices (labeled + unlabeled).
    n_labeled:
        Labeled vertices among them.
    n_queries:
        Fresh query points in the workload.
    batch_size:
        The :class:`ModelServer`'s auto-flush threshold.
    methods:
        A method name, an iterable of names, or ``"all"``.
    graph, k:
        Reference graph family (``knn`` default — the serving scale
        story) and its neighbour count.
    lam:
        Criterion (``0`` = hard).
    parity_sample:
        How many queries are re-answered by exact insertion for the
        deviation column (the slow path; keep it modest).
    single_sample:
        How many queries the single-query timing loop uses (default:
        min(64, n_queries) — enough to average Python dispatch overhead
        without dominating wall-clock).
    seed:
        Master seed for the dataset and query draw.
    n_jobs:
        Worker processes for the batched path's fan-out.
    telemetry:
        ``True`` (default) records per-request latency/queue-wait
        distributions, phase timings, and drift statistics under
        ``serving.request.*``/``serving.phase.*``/``serving.drift.*``
        (dump them with ``--metrics`` and gate them with
        ``repro obs slo``); ``False`` measures the uninstrumented path.
    """
    from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
    from repro.utils.rng import as_rng

    if n_labeled < 1 or n_labeled >= n_reference:
        raise ConfigurationError(
            f"need 1 <= n_labeled < n_reference, got {n_labeled} of {n_reference}"
        )
    if n_queries < 1:
        raise ConfigurationError(f"n_queries must be >= 1, got {n_queries}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if parity_sample < 0:
        raise ConfigurationError(f"parity_sample must be >= 0, got {parity_sample}")
    method_names = _resolve_methods(methods)
    if single_sample is None:
        single_sample = min(64, n_queries)
    single_sample = max(1, min(int(single_sample), n_queries))
    parity_sample = min(parity_sample, n_queries)

    rng = as_rng(seed)
    data = make_regression_dataset(
        n_labeled, n_reference - n_labeled, seed=rng
    )
    queries = truncated_mvn_inputs(n_queries, seed=rng)

    graph_params: dict = {}
    if graph == "knn":
        graph_params["k"] = k

    with obs.span(
        "repro.serving.serve_eval",
        n_reference=n_reference,
        n_queries=n_queries,
        batch_size=batch_size,
        graph=graph,
    ):
        model = GraphSSLModel(
            lam=lam, graph=graph, graph_params=graph_params, telemetry=telemetry
        )
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)

        exact_reference = None
        if parity_sample:
            exact_reference = model.predict_batch(
                queries[:parity_sample], method="exact"
            )

        reports = []
        progress = obs.get_progress()
        with progress.task("serve-eval", total=len(method_names)) as task:
            for position, method in enumerate(method_names):
                # Single-query path: one predict() call per point, the
                # cost an unbatched caller pays.
                t0 = time.perf_counter()
                single = np.asarray(
                    [
                        model.predict(queries[i : i + 1], method=method)[0]
                        for i in range(single_sample)
                    ]
                )
                single_elapsed = time.perf_counter() - t0

                # Batched path: the same workload through the
                # micro-batching server.
                jobs = 1 if method == "exact" else n_jobs
                server = ModelServer(
                    model,
                    method=method,
                    max_batch_size=batch_size,
                    n_jobs=jobs,
                    telemetry="full" if telemetry else "off",
                )
                t0 = time.perf_counter()
                batched = server.predict_many(queries)
                batched_elapsed = time.perf_counter() - t0

                if not np.array_equal(single, batched[:single_sample]):
                    raise AssertionError(
                        f"serving determinism violated: method {method!r} "
                        f"batched predictions differ from single-query ones"
                    )
                if exact_reference is not None:
                    deviation = float(
                        np.max(
                            np.abs(batched[:parity_sample] - exact_reference)
                        )
                    )
                else:
                    deviation = float("nan")

                single_qps = single_sample / max(single_elapsed, 1e-12)
                batched_qps = n_queries / max(batched_elapsed, 1e-12)
                reports.append(
                    MethodReport(
                        method=method,
                        single_qps=single_qps,
                        batched_qps=batched_qps,
                        speedup=batched_qps / max(single_qps, 1e-12),
                        max_abs_dev_vs_exact=deviation,
                        parity_sample=parity_sample,
                    )
                )
                task.replicate_done(position)

    return ServeEvalResult(
        n_reference=n_reference,
        n_labeled=n_labeled,
        n_queries=n_queries,
        batch_size=batch_size,
        graph=graph,
        lam=float(lam),
        reports=reports,
    )
