"""Exact incremental vertex insertion: the ground-truth slow serving path.

Inserting a query vertex ``q`` with edge row ``c`` into a fitted graph
and re-minimizing the hard criterion yields the bordered grounded system

    [[ A + diag(c_u),  -c_u ],   [ f_u ]     [ W21 y    ]
     [ -c_u^T,          s   ]] @ [ f_q ]  =  [ c_l^T y  ]

where ``A = D22 - W22`` is the reference grounded Laplacian (already
factorized in the model's :class:`~repro.linalg.workspace.SolveWorkspace`),
``c_l``/``c_u`` split the query's edges by labeled/unlabeled endpoint and
``s = sum(c)`` (the query's self-weight cancels between its degree and
diagonal).  The border alone would be a rank-1 update of the cached
system — the same Gaussian-conditioning algebra as
:mod:`repro.core.incremental` — but the insertion also adds ``diag(c_u)``
to every touched vertex's degree, so no finite low-rank shortcut is
exact.  This module therefore solves the bordered system with
preconditioned CG, using the *cached* factorization of ``A`` as the
preconditioner and the rank-1 border (Schur-complement) solution as the
initial guess: the preconditioned operator is ``I`` plus the
``diag(c_u)`` perturbation, so a handful of back-substitutions converge
to the re-solve answer at tolerance — typically 2-10 iterations.

The soft criterion (``lam > 0``) inserts through the analogous bordered
system on ``V + lam (L + diag(c))``.

Credible intervals come from the Gaussian-field view (the same model as
:mod:`repro.core.uncertainty`): the query's posterior variance is
``sigma^2`` over the extended system's Schur complement,

    Var(f_q) = sigma^2 / (s - c_u^T (A + diag(c_u))^{-1} c_u),

computed exactly with one more preconditioned solve, or approximated to
first order by ``sigma^2 / (s - c_u^T A^{-1} c_u)`` with a single cached
back-substitution (an over-estimate, since ``A + diag(c_u) >= A``; the
exact route kicks in automatically if the approximation degenerates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ConvergenceError, DataValidationError
from repro.serving.queries import QueryRow

__all__ = ["InsertionResult", "ExactInserter"]

#: Relative residual tolerance of the bordered solves.  Tight enough
#: that predictions match a from-scratch rebuild-and-resolve to well
#: under the parity suite's 1e-8 bar.
INSERTION_TOL = 1e-12

#: Iteration cap for the bordered solves; the preconditioned operator is
#: a small perturbation of the identity, so hitting this means the
#: system (not the budget) is the problem.
INSERTION_MAX_ITER = 500


@dataclass(frozen=True)
class InsertionResult:
    """One exact insertion: the prediction and the solve effort."""

    prediction: float
    iterations: int


def _pcg(matvec, rhs, precondition, x0, *, tol=INSERTION_TOL, max_iter=INSERTION_MAX_ITER):
    """Preconditioned CG on a callable operator (the bordered systems).

    Same algorithm as
    :func:`repro.linalg.advanced.preconditioned_conjugate_gradient`, but
    accepting callables: the bordered operators are cheap to apply and
    never worth materializing.
    """
    x = x0.copy()
    norm = float(np.linalg.norm(rhs))
    scale = norm if norm > 0 else 1.0
    residual = rhs - matvec(x)
    if float(np.linalg.norm(residual)) <= tol * scale:
        return x, 0
    z = precondition(residual)
    direction = z.copy()
    rz = float(residual @ z)
    for iteration in range(1, max_iter + 1):
        a_direction = matvec(direction)
        curvature = float(direction @ a_direction)
        if curvature <= 0:
            raise ConvergenceError(
                "bordered insertion system is not positive definite "
                "(is the extended graph connected to the labeled set?)",
                iterations=iteration,
                residual=float(np.linalg.norm(residual)),
            )
        step = rz / curvature
        x = x + step * direction
        residual = residual - step * a_direction
        if float(np.linalg.norm(residual)) <= tol * scale:
            return x, iteration
        z = precondition(residual)
        new_rz = float(residual @ z)
        direction = z + (new_rz / rz) * direction
        rz = new_rz
    raise ConvergenceError(
        f"exact insertion did not converge in {max_iter} iterations",
        iterations=max_iter,
        residual=float(np.linalg.norm(residual)),
    )


def _require_support(row: QueryRow) -> float:
    total = row.total
    if not total > 0.0:
        raise DataValidationError(
            "exact insertion: query has no reference point within kernel "
            "support; the extended graph would leave it disconnected"
        )
    return total


class ExactInserter:
    """Per-model machinery for exact insertions against cached factors.

    Parameters
    ----------
    weights:
        The fitted reference graph's ``(N, N)`` weight matrix.
    y_labeled:
        Observed labels (length ``n``; labeled vertices first).
    scores:
        The fitted scores over all ``N`` reference vertices.
    workspace:
        The model's :class:`~repro.linalg.workspace.SolveWorkspace`; its
        LRU factorization cache supplies the preconditioner.
    lam:
        ``0.0`` for the hard criterion, else the soft criterion's
        tuning parameter.
    """

    def __init__(self, weights, y_labeled, scores, workspace, *, lam: float = 0.0):
        self.lam = float(lam)
        self.y = np.asarray(y_labeled, dtype=np.float64)
        self.scores = np.asarray(scores, dtype=np.float64)
        self.n = int(self.y.shape[0])
        self.n_total = int(weights.shape[0])
        self.m = self.n_total - self.n
        self.workspace = workspace
        self._sparse = sparse.issparse(weights)
        if self.lam == 0.0:
            if self.m > 0:
                self.system = workspace.hard_system(self.n)
                self.factor = workspace.factorization("hard", 0.0, self.n)
            else:
                self.system = None
                self.factor = None
        else:
            self.system = workspace.soft_system(self.lam, self.n)
            self.factor = workspace.factorization("soft", self.lam, self.n)

    # ------------------------------------------------------------------
    # Row splitting
    # ------------------------------------------------------------------

    def _split(self, row: QueryRow):
        """Split a query row into labeled mass and a dense unlabeled vector."""
        labeled = row.indices < self.n
        rq = float(np.dot(row.weights[labeled], self.y[row.indices[labeled]]))
        cu = np.zeros(self.m)
        unlabeled = ~labeled
        cu[row.indices[unlabeled] - self.n] = row.weights[unlabeled]
        return rq, cu

    # ------------------------------------------------------------------
    # Hard criterion (lam = 0)
    # ------------------------------------------------------------------

    def _insert_hard(self, row: QueryRow) -> InsertionResult:
        s = _require_support(row)
        if self.m == 0:
            # No unlabeled block: the extended grounded system is the
            # 1x1 scalar ``s * f_q = c_l^T y``.
            labeled_mass = float(np.dot(row.weights, self.y[row.indices]))
            return InsertionResult(labeled_mass / s, 0)
        rq, cu = self._split(row)
        f_u0 = self.scores[self.n :]
        g = self.factor.solve(cu)
        denom = s - float(cu @ g)
        if denom > 0:
            f_q0 = (rq + float(cu @ f_u0)) / denom
        else:
            # Degenerate rank-1 border (possible for very strongly
            # coupled queries); fall back to the NW estimate as a guess.
            f_q0 = float(np.dot(row.weights, self.scores[row.indices]) / s)
        x0 = np.concatenate([f_u0 + g * f_q0, [f_q0]])
        rhs = np.concatenate([self._hard_rhs(), [rq]])
        system, factor, m = self.system, self.factor, self.m

        def matvec(v):
            vu, t = v[:m], v[m]
            top = system @ vu + cu * vu - cu * t
            bottom = s * t - float(cu @ vu)
            return np.concatenate([top, [bottom]])

        def precondition(r):
            return np.concatenate([factor.solve(r[:m]), [r[m] / s]])

        x, iterations = _pcg(matvec, rhs, precondition, x0)
        return InsertionResult(float(x[m]), iterations)

    def _hard_rhs(self) -> np.ndarray:
        if not hasattr(self, "_cached_hard_rhs"):
            w21 = self.workspace.weights[self.n :, : self.n]
            if self._sparse:
                rhs = np.asarray(w21 @ self.y).ravel()
            else:
                rhs = w21 @ self.y
            self._cached_hard_rhs = rhs
        return self._cached_hard_rhs

    # ------------------------------------------------------------------
    # Soft criterion (lam > 0)
    # ------------------------------------------------------------------

    def _insert_soft(self, row: QueryRow) -> InsertionResult:
        s = _require_support(row)
        lam, total = self.lam, self.n_total
        c = np.zeros(total)
        c[row.indices] = row.weights
        g = self.factor.solve(lam * c)
        denom = lam * s - float(lam * c @ g)
        if denom > 0:
            f_q0 = float(lam * c @ self.scores) / denom
        else:
            f_q0 = float(np.dot(row.weights, self.scores[row.indices]) / s)
        x0 = np.concatenate([self.scores + g * f_q0, [f_q0]])
        rhs = np.concatenate([self._soft_rhs(), [0.0]])
        system, factor = self.system, self.factor

        def matvec(v):
            vu, t = v[:total], v[total]
            top = system @ vu + lam * (c * vu) - lam * c * t
            bottom = lam * (s * t - float(c @ vu))
            return np.concatenate([top, [bottom]])

        def precondition(r):
            return np.concatenate([factor.solve(r[:total]), [r[total] / (lam * s)]])

        x, iterations = _pcg(matvec, rhs, precondition, x0)
        return InsertionResult(float(x[total]), iterations)

    def _soft_rhs(self) -> np.ndarray:
        if not hasattr(self, "_cached_soft_rhs"):
            rhs = np.zeros(self.n_total)
            rhs[: self.n] = self.y
            self._cached_soft_rhs = rhs
        return self._cached_soft_rhs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def insert(self, row: QueryRow) -> InsertionResult:
        """Exactly insert one query; returns its re-solved prediction."""
        if self.lam == 0.0:
            return self._insert_hard(row)
        return self._insert_soft(row)

    def variance(self, row: QueryRow, *, field_scale: float = 1.0, exact: bool = True) -> float:
        """Posterior variance of the query under the Gaussian-field view.

        Only defined for hard-criterion models (``lam = 0``), matching
        :mod:`repro.core.uncertainty`.  ``exact=False`` uses the
        first-order approximation described in the module docstring and
        silently upgrades to the exact solve when that approximation
        degenerates (non-positive Schur estimate).
        """
        if self.lam != 0.0:
            raise DataValidationError(
                "credible intervals are defined for hard-criterion models "
                "only (lam = 0); the soft criterion's Gaussian-field view "
                "has a different covariance"
            )
        s = _require_support(row)
        sigma_sq = float(field_scale) ** 2
        if self.m == 0:
            return sigma_sq / s
        _, cu = self._split(row)
        g = self.factor.solve(cu)
        if not exact:
            denom = s - float(cu @ g)
            if denom > 0:
                return sigma_sq / denom
        factor, system = self.factor, self.system

        def matvec(v):
            return system @ v + cu * v

        v, _ = _pcg(matvec, cu, factor.solve, g)
        denom = s - float(cu @ v)
        if denom <= 0:
            raise ConvergenceError(
                "insertion variance denominator is non-positive; the "
                "extended grounded system is numerically singular",
                iterations=0,
                residual=float("nan"),
            )
        return sigma_sq / denom
