"""`GraphSSLModel`: fit once on a reference graph, serve queries forever.

The transductive estimators in :mod:`repro.core` answer questions about
the vertices they were fitted on; predicting a *new* point means
rebuilding the graph and re-solving.  ``GraphSSLModel`` is the inductive
wrapper: :meth:`~GraphSSLModel.fit` builds the reference graph and
solves the criterion exactly once (through a per-model
:class:`~repro.linalg.workspace.SolveWorkspace`, so the factorization
and eigenbasis are cached), and then :meth:`~GraphSSLModel.predict` /
:meth:`~GraphSSLModel.predict_batch` answer out-of-sample queries
without ever re-solving, by one of three methods:

``"nw"`` (default)
    The Nadaraya-Watson/harmonic one-step rule over the fitted scores —
    O(row) per query, the paper's own Theorem II.1 device.
``"nystrom"``
    Nystrom extension of the cached Laplacian eigenbasis — O(row * k)
    per query after a lazily-built spectral cache.
``"exact"``
    Exact incremental vertex insertion (bordered solve against the
    cached factorization; see :mod:`repro.serving.insertion`) — the
    ground-truth slow path, matching a from-scratch rebuild-and-resolve
    to solver tolerance.

Determinism contract: every per-query quantity is computed from that
query's own arrays only (see :mod:`repro.serving.queries`), so
``predict_batch`` is bit-identical to a loop of ``predict`` and to any
``n_jobs`` fan-out of the same queries.

Serving boundary: malformed query input (wrong dimensionality, wrong
feature count, non-numeric dtype, empty batch, non-finite values) raises
:class:`~repro.exceptions.ConfigurationError` — the caller handed us a
request that can never be valid — which the CLI maps to a one-line
``error:`` message and exit status 2.  Data-dependent failures on valid
input (a query outside every kernel's support) stay
:class:`~repro.exceptions.DataValidationError`, like the rest of the
library.
"""

from __future__ import annotations

import time
import warnings
from typing import NamedTuple

import numpy as np

from repro import obs
from repro.core.estimators import _resolve_bandwidth
from repro.exceptions import ConfigurationError, NotFittedError
from repro.graph.similarity import build_similarity_graph
from repro.kernels.base import RadialKernel
from repro.kernels.library import GaussianKernel
from repro.linalg.workspace import SolveWorkspace
from repro.obs.serving_telemetry import (
    DriftWatchdog,
    ServingTelemetry,
    fit_drift_baseline,
)
from repro.serving.extension import nw_extend, nystrom_extend
from repro.serving.insertion import ExactInserter
from repro.serving.queries import QueryExtractor

__all__ = ["GraphSSLModel", "ServingStats", "SERVING_METHODS"]

SERVING_METHODS = ("nw", "nystrom", "exact")

#: Default eigenbasis size requested for ``method="nystrom"`` when the
#: model doesn't pin ``n_components`` (the workspace's own defaults —
#: full basis on dense graphs, 256 on sparse — are tuned for spectral
#: *solving*; serving only ever extends the smooth end stably).
DEFAULT_SERVING_COMPONENTS = 64

#: Nystrom serves only eigenpairs with ``mu_k <= fraction * d_low``
#: where ``d_low`` is a low degree quantile of the reference graph.  The
#: extension divides by ``d(x) - mu_k``; components with ``mu_k`` near
#: typical query degrees amplify noise unboundedly (and flip sign past
#: them), so they carry no servable information.  The cut keeps the
#: denominators uniformly bounded away from zero for in-distribution
#: queries.
NYSTROM_STABILITY_FRACTION = 0.5

#: The degree quantile standing in for "a low in-distribution query
#: degree" in the stability cut above.
NYSTROM_DEGREE_QUANTILE = 0.1


class ServingStats(NamedTuple):
    """Cumulative serving counters for one model (see ``stats()``)."""

    queries: int
    batches: int
    nw_queries: int
    nystrom_queries: int
    exact_queries: int
    interval_queries: int
    exact_iterations: int


def _predict_chunk(model: "GraphSSLModel", queries: np.ndarray, method: str) -> np.ndarray:
    """Worker entry point for ``predict_batch(n_jobs > 1)`` fan-out."""
    rows = model._extractor.extract(queries)
    return model._predict_rows(rows, method)


class GraphSSLModel:
    """Inductive graph-SSL model: ``fit()`` once, then ``predict(X_new)``.

    Parameters
    ----------
    lam:
        ``0.0`` (default) fits the hard criterion (Eq. 5); positive
        values fit the soft criterion.
    kernel, bandwidth:
        Radial kernel (default Gaussian) and bandwidth — a float or any
        rule name the transductive estimators accept (``"median"``
        default: it adapts to the pooled reference inputs).
    graph:
        Reference graph family: ``"full"`` (paper default), ``"knn"``
        or ``"epsilon"``.
    graph_params:
        Extra construction parameters (``k``/``mode`` for knn,
        ``radius`` for epsilon, ``construction_method`` to pin the
        dense/kd-tree route).
    n_components:
        Eigenbasis size for ``method="nystrom"`` (default: the
        workspace's — full basis on dense graphs, 256 on sparse).
    field_scale:
        Gaussian-field sigma used by credible intervals.
    telemetry:
        ``True`` (default) records per-batch phase timings
        (``serving.phase.*``) and query-drift statistics
        (``serving.drift.*``) on the serial serving paths; ``False`` is
        the low-overhead mode — no clocks, no drift math (the serving
        bench gates full-mode overhead at <5% of batched throughput).
    """

    def __init__(
        self,
        *,
        lam: float = 0.0,
        kernel: RadialKernel | None = None,
        bandwidth="median",
        graph: str = "full",
        graph_params: dict | None = None,
        n_components: int | None = None,
        field_scale: float = 1.0,
        telemetry: bool = True,
    ) -> None:
        if lam < 0:
            raise ConfigurationError(f"lam must be >= 0, got {lam}")
        if field_scale <= 0:
            raise ConfigurationError(f"field_scale must be > 0, got {field_scale}")
        self.lam = float(lam)
        self.kernel = kernel or GaussianKernel()
        self.bandwidth = bandwidth
        self.graph = graph
        self.graph_params = dict(graph_params or {})
        self.n_components = n_components
        self.field_scale = float(field_scale)
        self.telemetry = ServingTelemetry(enabled=telemetry)

        self.graph_ = None
        self.bandwidth_: float | None = None
        self.result_ = None
        self.scores_: np.ndarray | None = None
        self.n_labeled_: int | None = None
        self._y: np.ndarray | None = None
        self.drift_baseline_ = None
        self.drift_watchdog_: DriftWatchdog | None = None
        self._workspace: SolveWorkspace | None = None
        self._extractor: QueryExtractor | None = None
        self._inserter: ExactInserter | None = None
        self._nystrom_cache = None
        self._counters = dict.fromkeys(
            (
                "queries",
                "batches",
                "nw_queries",
                "nystrom_queries",
                "exact_queries",
                "interval_queries",
                "exact_iterations",
            ),
            0,
        )

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, x_labeled, y_labeled, x_unlabeled=None) -> "GraphSSLModel":
        """Build the reference graph and solve the criterion once.

        ``x_unlabeled`` may be omitted (serve directly off the labeled
        set); when given, the fitted scores cover the usual
        labeled-first transductive ordering.
        """
        from repro.utils.validation import check_labels, check_matrix_2d

        x_labeled = check_matrix_2d(x_labeled, "x_labeled")
        y_labeled = check_labels(y_labeled, name="y_labeled")
        if y_labeled.shape[0] != x_labeled.shape[0]:
            raise ConfigurationError(
                f"x_labeled has {x_labeled.shape[0]} rows but y_labeled "
                f"has {y_labeled.shape[0]} entries"
            )
        if x_unlabeled is None:
            x_unlabeled = np.zeros((0, x_labeled.shape[1]))
        else:
            x_unlabeled = check_matrix_2d(x_unlabeled, "x_unlabeled")
            if x_unlabeled.shape[1] != x_labeled.shape[1]:
                raise ConfigurationError(
                    f"x_unlabeled has {x_unlabeled.shape[1]} features but "
                    f"x_labeled has {x_labeled.shape[1]}"
                )
        x_all = np.vstack([x_labeled, x_unlabeled])
        n = x_labeled.shape[0]

        with obs.span(
            "repro.serving.fit",
            n_labeled=n,
            n_reference=int(x_all.shape[0]),
            lam=self.lam,
            graph=self.graph,
        ):
            self.bandwidth_ = _resolve_bandwidth(self.bandwidth, x_all, n)
            self.graph_ = build_similarity_graph(
                x_all,
                construction=self.graph,
                kernel=self.kernel,
                bandwidth=self.bandwidth_,
                **self.graph_params,
            )
            self._workspace = SolveWorkspace(
                self.graph_.weights, n_components=self.n_components
            )
            if self.lam == 0.0:
                from repro.core.hard import solve_hard_criterion

                result = solve_hard_criterion(
                    self.graph_.weights, y_labeled, workspace=self._workspace
                )
            else:
                from repro.core.soft import solve_soft_criterion

                result = solve_soft_criterion(
                    self.graph_.weights,
                    y_labeled,
                    self.lam,
                    workspace=self._workspace,
                )
            self.result_ = result
            self.scores_ = result.scores.copy()
            self.n_labeled_ = n
            self._y = y_labeled.copy()
            self._extractor = QueryExtractor(
                x_all,
                kernel=self.kernel,
                bandwidth=self.bandwidth_,
                construction=self.graph_.construction,
                params=self.graph_.params,
            )
            self._inserter = None
            self._nystrom_cache = None
            # Freeze the drift band from the same degree vector the
            # Nystrom stability cut quantiles, so "in regime" means the
            # same thing to serving and to the watchdog.
            self.drift_baseline_ = fit_drift_baseline(self._workspace.degrees)
            self.drift_watchdog_ = DriftWatchdog(self.drift_baseline_)
        return self

    @property
    def n_reference_(self) -> int:
        """Number of reference vertices (labeled + unlabeled)."""
        self._require_fitted()
        return int(self.scores_.shape[0])

    def _require_fitted(self) -> None:
        if self.scores_ is None or self._extractor is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fit() before serving queries"
            )

    # ------------------------------------------------------------------
    # Serving boundary validation
    # ------------------------------------------------------------------

    def _validate_queries(self, x) -> np.ndarray:
        """Validate a query batch; malformed requests are ConfigurationError."""
        self._require_fitted()
        try:
            queries = np.asarray(x, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"query batch is not numeric: {exc}"
            ) from exc
        if queries.ndim != 2:
            raise ConfigurationError(
                f"query batch must be 2-d (n_queries, n_features); got "
                f"{queries.ndim}-d input of shape {queries.shape} "
                f"(wrap a single point as x[None, :])"
            )
        if queries.shape[0] == 0:
            raise ConfigurationError(
                "query batch is empty; submit at least one query point"
            )
        expected = self._extractor.x_reference.shape[1]
        if queries.shape[1] != expected:
            raise ConfigurationError(
                f"query batch has {queries.shape[1]} features but the model "
                f"was fitted on {expected}"
            )
        if not np.all(np.isfinite(queries)):
            raise ConfigurationError(
                "query batch contains non-finite values (NaN or inf)"
            )
        return np.ascontiguousarray(queries)

    @staticmethod
    def _validate_method(method: str) -> str:
        if method not in SERVING_METHODS:
            raise ConfigurationError(
                f"unknown serving method {method!r}; known: {SERVING_METHODS}"
            )
        return method

    # ------------------------------------------------------------------
    # Prediction internals
    # ------------------------------------------------------------------

    def _ensure_nystrom(self):
        if self._nystrom_cache is None:
            n_total = self.n_reference_
            if self.n_components is not None:
                requested = self.n_components
            else:
                requested = max(1, min(DEFAULT_SERVING_COMPONENTS, n_total - 1))
            values, vectors = self._workspace.eigenbasis(requested)
            # Stability cut (see NYSTROM_STABILITY_FRACTION): keep the
            # smooth prefix whose denominators stay bounded for
            # in-distribution queries.  The constant eigenvector
            # (mu_1 = 0) always survives.
            degree_floor = float(
                np.quantile(self._workspace.degrees, NYSTROM_DEGREE_QUANTILE)
            )
            count = max(
                1,
                int(
                    np.searchsorted(
                        values,
                        NYSTROM_STABILITY_FRACTION * degree_floor,
                        side="right",
                    )
                ),
            )
            values = np.ascontiguousarray(values[:count])
            vectors = np.ascontiguousarray(vectors[:, :count])
            coefficients = vectors.T @ self.scores_
            self._nystrom_cache = (values, vectors, coefficients)
        return self._nystrom_cache

    def _ensure_inserter(self) -> ExactInserter:
        if self._inserter is None:
            if self._workspace is None:
                # A worker-side copy (see __getstate__) rebuilds lazily.
                self._workspace = SolveWorkspace(self.graph_.weights)
            self._inserter = ExactInserter(
                self.graph_.weights,
                self._y,
                self.scores_,
                self._workspace,
                lam=self.lam,
            )
        return self._inserter

    def _predict_rows(self, rows, method: str) -> np.ndarray:
        """Serve extracted query rows one at a time (the determinism core)."""
        out = np.empty(len(rows))
        if method == "nw":
            scores = self.scores_
            for i, row in enumerate(rows):
                out[i] = nw_extend(row, scores)
        elif method == "nystrom":
            values, vectors, coefficients = self._ensure_nystrom()
            for i, row in enumerate(rows):
                out[i] = nystrom_extend(row, values, vectors, coefficients)
        else:
            inserter = self._ensure_inserter()
            for i, row in enumerate(rows):
                result = inserter.insert(row)
                out[i] = result.prediction
                self._counters["exact_iterations"] += result.iterations
        return out

    def _observe_drift(self, rows, method: str) -> None:
        """Feed one extracted batch's degrees to the drift watchdog.

        The observed quantity is ``QueryRow.degree()`` — self weight
        plus attachment mass, exactly what the serving math divides by.
        ``mu_max`` is supplied only when the Nystrom cache exists, so
        margin erosion is tracked for the method it endangers.
        """
        if self.drift_watchdog_ is None or not rows:
            return
        degrees = self._extractor.last_degrees
        if degrees is None or len(degrees) != len(rows):
            # Not the batch the extractor just produced (defensive):
            # re-derive per row.
            degrees = np.fromiter(
                (row.self_weight + row.total for row in rows),
                dtype=np.float64,
                count=len(rows),
            )
        mu_max = None
        if method == "nystrom" and self._nystrom_cache is not None:
            values = self._nystrom_cache[0]
            if values.size:
                mu_max = float(values[-1])
        self.drift_watchdog_.observe(degrees, mu_max=mu_max)

    def _serve_chunk(self, chunk: np.ndarray, method: str):
        """Extract + predict one chunk on the serial path, instrumented.

        Returns ``(rows, predictions)``.  The telemetry cost is
        batch-granular — two clock reads, two histogram observations,
        and one vectorized drift pass per chunk — so per-request
        overhead vanishes as chunks grow.
        """
        if not self.telemetry.enabled:
            rows = self._extractor.extract(chunk)
            return rows, self._predict_rows(rows, method)
        t_start = time.perf_counter()
        rows = self._extractor.extract(chunk)
        t_extracted = time.perf_counter()
        predictions = self._predict_rows(rows, method)
        t_predicted = time.perf_counter()
        self.telemetry.record_phase("extract", t_extracted - t_start)
        self.telemetry.record_phase("predict", t_predicted - t_extracted)
        self._observe_drift(rows, method)
        return rows, predictions

    def _timed_variances(self, rows, method: str) -> np.ndarray:
        t_start = time.perf_counter()
        variances = self._variances(rows, method)
        self.telemetry.record_phase("interval", time.perf_counter() - t_start)
        return variances

    def _variances(self, rows, method: str) -> np.ndarray:
        inserter = self._ensure_inserter()
        out = np.empty(len(rows))
        exact = method == "exact"
        for i, row in enumerate(rows):
            out[i] = inserter.variance(
                row, field_scale=self.field_scale, exact=exact
            )
        return out

    def _record_stats(self, span) -> None:
        if span.recording:
            from repro.obs.probes import record_serving_stats

            record_serving_stats(span, self.stats())

    def _count(self, method: str, n_queries: int, *, batches: int, intervals: bool) -> None:
        self._counters["queries"] += n_queries
        self._counters["batches"] += batches
        self._counters[f"{method}_queries"] += n_queries
        if intervals:
            self._counters["interval_queries"] += n_queries
        registry = obs.get_registry()
        registry.counter("serving.queries").inc(n_queries)
        registry.counter("serving.batches").inc(batches)
        registry.counter(f"serving.{method}.queries").inc(n_queries)

    # ------------------------------------------------------------------
    # Public prediction API
    # ------------------------------------------------------------------

    def predict(self, x, *, method: str = "nw", return_interval: bool = False, z: float = 1.96):
        """Serve one validated query batch in a single shot.

        Returns the ``(n_queries,)`` predictions, or with
        ``return_interval=True`` a ``(predictions, lower, upper)`` triple
        where the interval is the Gaussian-field ``mean ± z * sd`` of the
        exactly-inserted query vertex (hard-criterion models only).
        """
        method = self._validate_method(method)
        queries = self._validate_queries(x)
        if return_interval and self.lam != 0.0:
            raise ConfigurationError(
                "credible intervals require a hard-criterion model (lam=0)"
            )
        if return_interval and z <= 0:
            raise ConfigurationError(f"z must be > 0, got {z}")
        with obs.span(
            "repro.serving.predict",
            method=method,
            n_queries=int(queries.shape[0]),
        ) as span:
            rows, predictions = self._serve_chunk(queries, method)
            self._count(
                method, len(rows), batches=1, intervals=return_interval
            )
            self._record_stats(span)
            if not return_interval:
                return predictions
            sd = np.sqrt(self._timed_variances(rows, method))
            return predictions, predictions - z * sd, predictions + z * sd

    def predict_batch(
        self,
        x,
        *,
        method: str = "nw",
        batch_size: int | None = None,
        n_jobs: int | None = 1,
        return_interval: bool = False,
        z: float = 1.96,
    ):
        """Serve a workload in micro-batches, optionally across processes.

        ``batch_size`` bounds the memory of each extraction (default:
        one shot); ``n_jobs`` fans micro-batches over a process pool
        (``-1`` = one worker per CPU) for the NW and Nystrom methods —
        results are bit-identical at every ``batch_size`` and ``n_jobs``
        setting, including to a plain loop of :meth:`predict`.
        """
        from repro.experiments.executor import resolve_n_jobs

        method = self._validate_method(method)
        queries = self._validate_queries(x)
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        workers = resolve_n_jobs(n_jobs)
        if workers > 1 and method == "exact":
            raise ConfigurationError(
                "method='exact' serves against the cached factorization, "
                "which does not ship across processes; use n_jobs=1"
            )
        total = queries.shape[0]
        size = total if batch_size is None else min(batch_size, total)
        starts = list(range(0, total, size))
        chunks = [queries[start : start + size] for start in starts]
        with obs.span(
            "repro.serving.predict_batch",
            method=method,
            n_queries=total,
            n_batches=len(chunks),
            n_jobs=workers,
        ) as span:
            if workers > 1 and len(chunks) > 1:
                # Phase timings and drift are serial-path features: the
                # workers' registries are private and their chunk rows
                # never return to this process.
                parts = self._predict_parallel(chunks, method, workers)
            else:
                parts = [
                    self._serve_chunk(chunk, method)[1] for chunk in chunks
                ]
            predictions = np.concatenate(parts)
            self._count(
                method, total, batches=len(chunks), intervals=return_interval
            )
            self._record_stats(span)
            if not return_interval:
                return predictions
            if self.lam != 0.0:
                raise ConfigurationError(
                    "credible intervals require a hard-criterion model (lam=0)"
                )
            if z <= 0:
                raise ConfigurationError(f"z must be > 0, got {z}")
            variances = np.concatenate(
                [
                    self._timed_variances(self._extractor.extract(chunk), method)
                    for chunk in chunks
                ]
            )
            sd = np.sqrt(variances)
            return predictions, predictions - z * sd, predictions + z * sd

    def _predict_parallel(self, chunks, method: str, workers: int):
        """Fan micro-batches over a process pool; degrade serially on failure."""
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments.executor import ParallelFallbackWarning

        if method == "nystrom":
            self._ensure_nystrom()  # ship the spectral cache, not the solver
        try:
            pickle.dumps(self)
        except Exception as exc:  # pragma: no cover - depends on payload
            warnings.warn(
                f"serving state is not picklable ({exc!r}); running the "
                f"batch serially (results are identical)",
                ParallelFallbackWarning,
                stacklevel=3,
            )
            return [
                self._predict_rows(self._extractor.extract(chunk), method)
                for chunk in chunks
            ]
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
                return list(
                    pool.map(_predict_chunk, [self] * len(chunks), chunks, [method] * len(chunks))
                )
        except BrokenProcessPool:
            warnings.warn(
                "worker pool died mid-batch; re-running serially "
                "(results are identical)",
                ParallelFallbackWarning,
                stacklevel=3,
            )
            return [
                self._predict_rows(self._extractor.extract(chunk), method)
                for chunk in chunks
            ]

    # ------------------------------------------------------------------
    # Introspection & pickling
    # ------------------------------------------------------------------

    def query_weights(self, x) -> list:
        """The frozen-graph edge rows a query batch would attach with.

        Exposed so oracles (and curious users) can build the *same*
        extended graph the serving methods answer questions about.
        """
        return self._extractor.extract(self._validate_queries(x))

    def stats(self) -> ServingStats:
        """Cumulative serving counters since ``fit()``."""
        return ServingStats(**self._counters)

    def __getstate__(self):
        # Factorizations (sparse splu handles) don't pickle; workers
        # rebuild lazily if they ever need the exact path.
        state = self.__dict__.copy()
        state["_workspace"] = None
        state["_inserter"] = None
        return state
