"""`ModelServer`: request batching in front of a fitted `GraphSSLModel`.

Production query traffic arrives one point at a time, but the model is
fastest when queries are served in batches (one vectorized extraction
plus amortized validation/dispatch).  ``ModelServer`` is the micro-
batching layer between the two: :meth:`~ModelServer.submit` enqueues a
single point and returns a :class:`PredictionTicket` immediately; the
queue is flushed through :meth:`GraphSSLModel.predict_batch` whenever it
reaches ``max_batch_size``, when :meth:`~ModelServer.flush` is called,
or lazily when any pending ticket's ``result()`` is read.

Because the model's per-query math is batch-independent (see
:mod:`repro.serving.model`), batching is *only* a latency/throughput
trade: every ticket resolves to exactly the value a standalone
``predict`` call would have produced.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.serving.model import GraphSSLModel

__all__ = ["ModelServer", "PredictionTicket", "ServerStats"]


class ServerStats(NamedTuple):
    """Cumulative request-batching counters for one server."""

    submitted: int
    answered: int
    flushes: int
    full_batches: int

    @property
    def pending(self) -> int:
        return self.submitted - self.answered


class PredictionTicket:
    """A handle for one submitted query; resolves when its batch flushes."""

    __slots__ = ("_server", "_value", "_done")

    def __init__(self, server: "ModelServer") -> None:
        self._server = server
        self._value = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> float:
        """The prediction, flushing the server's queue if still pending."""
        if not self._done:
            self._server.flush()
        return self._value

    def _resolve(self, value: float) -> None:
        self._value = value
        self._done = True


class ModelServer:
    """Micro-batching front end for a fitted :class:`GraphSSLModel`.

    Parameters
    ----------
    model:
        A fitted model (``fit()`` must already have run).
    method:
        Serving method for every flushed batch (``"nw"``, ``"nystrom"``
        or ``"exact"``).
    max_batch_size:
        Auto-flush threshold: submitting the point that fills the queue
        to this size triggers a flush.
    n_jobs:
        Forwarded to :meth:`GraphSSLModel.predict_batch` on each flush.
    """

    def __init__(
        self,
        model: GraphSSLModel,
        *,
        method: str = "nw",
        max_batch_size: int = 64,
        n_jobs: int | None = 1,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        model._require_fitted()
        self.model = model
        self.method = model._validate_method(method)
        self.max_batch_size = int(max_batch_size)
        self.n_jobs = n_jobs
        self._queue: list[np.ndarray] = []
        self._tickets: list[PredictionTicket] = []
        self._counters = {
            "submitted": 0,
            "answered": 0,
            "flushes": 0,
            "full_batches": 0,
        }

    def submit(self, x_point) -> PredictionTicket:
        """Enqueue one query point (``(d,)`` or ``(1, d)``)."""
        point = np.asarray(x_point, dtype=np.float64)
        if point.ndim == 1:
            point = point[None, :]
        # Full validation happens at flush time through the model's
        # serving boundary; this only normalizes the shape so the queue
        # can stack.
        if point.ndim != 2 or point.shape[0] != 1:
            raise ConfigurationError(
                f"submit() takes a single query point of shape (d,) or "
                f"(1, d); got shape {np.shape(x_point)}"
            )
        ticket = PredictionTicket(self)
        self._queue.append(point[0])
        self._tickets.append(ticket)
        self._counters["submitted"] += 1
        if len(self._queue) >= self.max_batch_size:
            self._counters["full_batches"] += 1
            self.flush()
        return ticket

    def flush(self) -> int:
        """Serve every pending query; returns how many were answered."""
        if not self._queue:
            return 0
        queue, tickets = self._queue, self._tickets
        self._queue, self._tickets = [], []
        batch = np.vstack(queue)
        with obs.span(
            "repro.serving.flush",
            method=self.method,
            n_queries=int(batch.shape[0]),
        ):
            predictions = self.model.predict_batch(
                batch, method=self.method, n_jobs=self.n_jobs
            )
        for ticket, value in zip(tickets, predictions):
            ticket._resolve(float(value))
        self._counters["answered"] += len(tickets)
        self._counters["flushes"] += 1
        obs.get_registry().counter("serving.server.flushes").inc()
        return len(tickets)

    def predict_many(self, x) -> np.ndarray:
        """Submit a whole workload point by point and return all results.

        Convenience driver (and the load-bench's batched path): the
        workload streams through the micro-batcher exactly as live
        traffic would, auto-flushing every ``max_batch_size`` points.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError(
                f"predict_many takes a 2-d workload, got shape {x.shape}"
            )
        tickets = [self.submit(row) for row in x]
        self.flush()
        return np.asarray([ticket.result() for ticket in tickets])

    def stats(self) -> ServerStats:
        """Cumulative batching counters since construction."""
        return ServerStats(**self._counters)
