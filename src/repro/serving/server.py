"""`ModelServer`: request batching in front of a fitted `GraphSSLModel`.

Production query traffic arrives one point at a time, but the model is
fastest when queries are served in batches (one vectorized extraction
plus amortized validation/dispatch).  ``ModelServer`` is the micro-
batching layer between the two: :meth:`~ModelServer.submit` enqueues a
single point and returns a :class:`PredictionTicket` immediately; the
queue is flushed through :meth:`GraphSSLModel.predict_batch` whenever it
reaches ``max_batch_size``, when :meth:`~ModelServer.flush` is called,
or lazily when any pending ticket's ``result()`` is read.

Because the model's per-query math is batch-independent (see
:mod:`repro.serving.model`), batching is *only* a latency/throughput
trade: every ticket resolves to exactly the value a standalone
``predict`` call would have produced.
"""

from __future__ import annotations

import time
from typing import NamedTuple

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs.serving_telemetry import ServingTelemetry
from repro.serving.model import GraphSSLModel

__all__ = ["ModelServer", "PredictionTicket", "ServerStats", "TELEMETRY_MODES"]

TELEMETRY_MODES = ("full", "off")


class ServerStats(NamedTuple):
    """Cumulative request-batching counters for one server.

    ``flushes`` is the total; ``full_batches``/``manual_flushes``/
    ``lazy_flushes`` split it by trigger (queue hit ``max_batch_size`` /
    explicit :meth:`ModelServer.flush` / a pending ticket's ``result()``
    forced it).  ``errors`` counts tickets resolved with an exception
    instead of a prediction.
    """

    submitted: int
    answered: int
    errors: int
    flushes: int
    full_batches: int
    manual_flushes: int
    lazy_flushes: int

    @property
    def pending(self) -> int:
        return self.submitted - self.answered - self.errors


class PredictionTicket:
    """A handle for one submitted query; resolves when its batch flushes."""

    __slots__ = ("_server", "_value", "_error", "_done")

    def __init__(self, server: "ModelServer") -> None:
        self._server = server
        self._value = None
        self._error = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> float:
        """The prediction, flushing the server's queue if still pending.

        If the ticket's batch failed, re-raises the exception that
        failed it (every ticket of a failed flush is resolved with the
        error — none stay pending forever).
        """
        if not self._done:
            self._server._flush("lazy")
        if self._error is not None:
            raise self._error
        return self._value

    def _resolve(self, value: float) -> None:
        self._value = value
        self._done = True

    def _resolve_error(self, error: BaseException) -> None:
        self._error = error
        self._done = True


class ModelServer:
    """Micro-batching front end for a fitted :class:`GraphSSLModel`.

    Parameters
    ----------
    model:
        A fitted model (``fit()`` must already have run).
    method:
        Serving method for every flushed batch (``"nw"``, ``"nystrom"``
        or ``"exact"``).
    max_batch_size:
        Auto-flush threshold: submitting the point that fills the queue
        to this size triggers a flush.
    n_jobs:
        Forwarded to :meth:`GraphSSLModel.predict_batch` on each flush.
    telemetry:
        ``"full"`` (default) records per-request latency/queue-wait
        distributions, flush-reason counters, and a throughput gauge
        under ``serving.request.*``; ``"off"`` is the low-overhead mode
        — the only per-request cost left is the queue append itself
        (the serving bench gates full-mode overhead at <5%).
    """

    #: Maps a flush trigger to its ServerStats counter key.
    _FLUSH_COUNTERS = {
        "full": "full_batches",
        "manual": "manual_flushes",
        "lazy": "lazy_flushes",
    }

    def __init__(
        self,
        model: GraphSSLModel,
        *,
        method: str = "nw",
        max_batch_size: int = 64,
        n_jobs: int | None = 1,
        telemetry: str = "full",
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if telemetry not in TELEMETRY_MODES:
            raise ConfigurationError(
                f"unknown telemetry mode {telemetry!r}; known: {TELEMETRY_MODES}"
            )
        model._require_fitted()
        self.model = model
        self.method = model._validate_method(method)
        self.max_batch_size = int(max_batch_size)
        self.n_jobs = n_jobs
        self.telemetry = ServingTelemetry(enabled=telemetry == "full")
        self._queue: list[np.ndarray] = []
        self._tickets: list[PredictionTicket] = []
        self._submit_times: list[float] = []
        self._counters = {
            "submitted": 0,
            "answered": 0,
            "errors": 0,
            "flushes": 0,
            "full_batches": 0,
            "manual_flushes": 0,
            "lazy_flushes": 0,
        }

    def submit(self, x_point) -> PredictionTicket:
        """Enqueue one query point (``(d,)`` or ``(1, d)``)."""
        point = np.asarray(x_point, dtype=np.float64)
        if point.ndim == 1:
            point = point[None, :]
        # Full validation happens at flush time through the model's
        # serving boundary; this only normalizes the shape so the queue
        # can stack.
        if point.ndim != 2 or point.shape[0] != 1:
            raise ConfigurationError(
                f"submit() takes a single query point of shape (d,) or "
                f"(1, d); got shape {np.shape(x_point)}"
            )
        ticket = PredictionTicket(self)
        self._queue.append(point[0])
        self._tickets.append(ticket)
        self._counters["submitted"] += 1
        if self.telemetry.enabled:
            # The only per-request instrumentation on the hot path: one
            # clock read.  Latency/queue-wait arrays are derived from it
            # in a single vectorized pass at flush time.
            self._submit_times.append(time.perf_counter())
        if len(self._queue) >= self.max_batch_size:
            self._flush("full")
        return ticket

    def flush(self) -> int:
        """Serve every pending query; returns how many were answered."""
        return self._flush("manual")

    def _flush(self, reason: str) -> int:
        if not self._queue:
            return 0
        queue, tickets = self._queue, self._tickets
        submit_times = self._submit_times
        self._queue, self._tickets, self._submit_times = [], [], []
        batch = np.vstack(queue)
        started = time.perf_counter()
        try:
            with obs.span(
                "repro.serving.flush",
                method=self.method,
                n_queries=int(batch.shape[0]),
                reason=reason,
            ) as span:
                predictions = self.model.predict_batch(
                    batch, method=self.method, n_jobs=self.n_jobs
                )
                finished = time.perf_counter()
                for ticket, value in zip(tickets, predictions):
                    ticket._resolve(float(value))
                self._counters["answered"] += len(tickets)
                self._count_flush(reason)
                self._record_stats(span)
        except Exception as exc:
            # A failed batch must not strand its tickets: resolve every
            # unresolved one with the error (result() re-raises it) so
            # no caller blocks on a prediction that will never arrive,
            # then propagate.
            unresolved = [ticket for ticket in tickets if not ticket.done]
            for ticket in unresolved:
                ticket._resolve_error(exc)
            if unresolved:
                self._counters["errors"] += len(unresolved)
                self._count_flush(reason)
                self.telemetry.record_errors(self.method, len(unresolved))
            raise
        if self.telemetry.enabled:
            times = np.asarray(submit_times)
            if times.size == len(tickets):
                self.telemetry.record_requests(
                    self.method,
                    len(tickets),
                    latencies_s=finished - times,
                    queue_waits_s=started - times,
                )
            else:  # pragma: no cover - telemetry toggled mid-queue
                self.telemetry.record_requests(self.method, len(tickets))
            elapsed = finished - started
            if elapsed > 0:
                self.telemetry.record_throughput(len(tickets) / elapsed)
        obs.get_registry().counter("serving.server.flushes").inc()
        return len(tickets)

    def _count_flush(self, reason: str) -> None:
        self._counters["flushes"] += 1
        self._counters[self._FLUSH_COUNTERS[reason]] += 1
        self.telemetry.record_flush(reason)

    def _record_stats(self, span) -> None:
        if span.recording:
            from repro.obs.probes import record_serving_stats

            record_serving_stats(span, self.stats())

    def predict_many(self, x) -> np.ndarray:
        """Submit a whole workload point by point and return all results.

        Convenience driver (and the load-bench's batched path): the
        workload streams through the micro-batcher exactly as live
        traffic would, auto-flushing every ``max_batch_size`` points.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError(
                f"predict_many takes a 2-d workload, got shape {x.shape}"
            )
        tickets = [self.submit(row) for row in x]
        self.flush()
        return np.asarray([ticket.result() for ticket in tickets])

    def stats(self) -> ServerStats:
        """Cumulative batching counters since construction."""
        return ServerStats(**self._counters)
