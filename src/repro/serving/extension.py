"""Out-of-sample extension rules over a fitted reference graph.

Two fast O(row) rules, both consuming the frozen-graph query rows from
:mod:`repro.serving.queries`:

* :func:`nw_extend` — the Nadaraya-Watson / harmonic one-step rule
  ``f(x) = sum_j w(x, x_j) f_j / sum_j w(x, x_j)`` over the *fitted*
  scores.  This is exactly the minimizer of the extended hard criterion
  when every reference score is held fixed, and the paper's Theorem II.1
  proof device (the hard criterion converges to this estimator).
* :func:`nystrom_extend` — the Nystrom extension of the cached Laplacian
  eigenbasis.  An eigenpair ``L u = mu u`` of the reference Laplacian
  satisfies ``u_i = (sum_j w_ij u_j) / (d_i - mu)``; applying the same
  identity at a new point extends each eigenvector, and the prediction
  is the fitted scores' projection onto the basis evaluated at the
  query: ``f(x) = sum_k a_k u_k(x)`` with ``a = U^T f``.

Both raise :class:`~repro.exceptions.DataValidationError` for queries
with zero coupling mass (no reference point inside the kernel/graph
support): there is no graph information about such a point, and a
silent 0/0 would serve NaNs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.serving.queries import QueryRow

__all__ = ["nw_extend", "nystrom_extend"]

#: Relative floor applied to Nystrom denominators ``d(x) - mu_k``.  A
#: component whose denominator vanishes carries no stable extension
#: information at this query; flooring (with sign preserved) keeps the
#: prediction finite instead of amplifying one component to infinity.
NYSTROM_DENOMINATOR_FLOOR = 1e-12


def _require_support(row: QueryRow, label: str) -> float:
    total = row.total
    if not total > 0.0:
        raise DataValidationError(
            f"{label}: query has no reference point within kernel support "
            f"(coupling mass is zero); cannot extend the fitted scores to it"
        )
    return total


def nw_extend(row: QueryRow, scores: np.ndarray) -> float:
    """Nadaraya-Watson extension of the fitted ``scores`` to one query.

    The self-weight never enters: holding reference scores fixed, the
    extended hard criterion minimizes ``sum_j w_j (f - f_j)^2`` and the
    query's diagonal term contributes ``(f - f)^2 = 0``.
    """
    total = _require_support(row, "nw_extend")
    return float(np.dot(row.weights, scores[row.indices]) / total)


def nystrom_extend(
    row: QueryRow,
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    coefficients: np.ndarray,
) -> float:
    """Nystrom extension of the eigenbasis projection to one query.

    Parameters
    ----------
    row:
        The query's edges into the reference graph.
    eigenvalues, eigenvectors:
        The cached ``(mu_k, U)`` pairs of the reference Laplacian
        (smoothest first, orthonormal columns), as returned by
        :meth:`repro.linalg.workspace.SolveWorkspace.eigenbasis`.
    coefficients:
        Basis coefficients ``a = U^T f`` of the fitted scores.
    """
    _require_support(row, "nystrom_extend")
    # The Nystrom degree is the kernel-row mass sum_j w(x, x_j).  At a
    # reference point this equals that vertex's graph degree (the j = i
    # term supplies the diagonal self-weight), which is what makes the
    # extension interpolate the cached eigenvectors exactly there on
    # full graphs; the query's own prospective diagonal w(x, x) never
    # enters, matching the identity u_i = (W u)_i / (d_i - mu).
    degree = row.total
    # (w^T U)_k, evaluated on this query's own arrays only — independent
    # of any batch it arrived in.
    projected = row.weights @ eigenvectors[row.indices]
    denominators = degree - eigenvalues
    floor = NYSTROM_DENOMINATOR_FLOOR * max(1.0, abs(degree))
    small = np.abs(denominators) < floor
    if np.any(small):
        signs = np.where(denominators[small] >= 0.0, 1.0, -1.0)
        denominators = denominators.copy()
        denominators[small] = signs * floor
    extended = projected / denominators
    return float(np.dot(coefficients, extended))
