"""Inductive serving layer: out-of-sample prediction without re-solving.

Everything in :mod:`repro.core` is transductive — predictions exist only
for the vertices the criterion was solved on.  This package is the
fit-once/query-many counterpart:

* :class:`~repro.serving.model.GraphSSLModel` — fit a reference graph
  once (cached factorization + eigenbasis via
  :class:`~repro.linalg.workspace.SolveWorkspace`), then serve new
  points through the Nadaraya-Watson rule, a Nystrom eigenbasis
  extension, or exact incremental vertex insertion, with optional
  per-query credible intervals.
* :class:`~repro.serving.server.ModelServer` — request micro-batching
  in front of a fitted model.
* :func:`~repro.serving.evaluate.run_serve_eval` — the ``repro
  serve-eval`` driver: throughput and exact-parity numbers for a
  synthetic serving workload.

See ``docs/SERVING.md`` for the accuracy-vs-latency trade-offs.
"""

from repro.serving.evaluate import ServeEvalResult, run_serve_eval
from repro.serving.insertion import ExactInserter, InsertionResult
from repro.serving.model import SERVING_METHODS, GraphSSLModel, ServingStats
from repro.serving.queries import QueryExtractor, QueryRow
from repro.serving.server import ModelServer, PredictionTicket, ServerStats

__all__ = [
    "GraphSSLModel",
    "ModelServer",
    "PredictionTicket",
    "ServerStats",
    "ServingStats",
    "SERVING_METHODS",
    "QueryExtractor",
    "QueryRow",
    "ExactInserter",
    "InsertionResult",
    "ServeEvalResult",
    "run_serve_eval",
]
