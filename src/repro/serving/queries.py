"""Query-edge extraction: how a new point attaches to a frozen reference graph.

Serving treats the fitted reference graph as *frozen*: answering a query
never changes reference-reference edges (a true kNN insertion could —
the query might displace some vertex's k-th neighbour — but re-wiring
the reference graph per query would defeat fit-once/query-many).  A
query vertex therefore connects by the same rule its graph family used,
applied one-sidedly from the query:

* ``full`` graphs — kernel weights to every reference point;
* ``knn`` graphs — kernel weights to the query's own ``k`` nearest
  reference points (regardless of the reference graph's symmetrization
  mode: reference vertices never "select" a point that did not exist
  when the graph was built);
* ``epsilon`` graphs — kernel weights to reference points within the
  construction radius.

The exact-insertion oracle in the parity suite builds its extended
graph from the same rows, so every serving method answers questions
about one well-defined extended graph.

Determinism contract
--------------------
Every extracted row depends only on its own query point — never on
which other queries share the batch.  The dense route computes cross
squared distances with ``np.einsum`` (fixed per-element summation
order, no batch-shaped BLAS blocking) and the sparse routes use
per-point ``cKDTree`` queries, so ``extract(batch)[i]`` is bit-identical
to ``extract(batch[i:i+1])[0]``.  Everything downstream (NW, Nystrom,
exact insertion) consumes these rows one query at a time, which is what
makes ``predict_batch`` bit-identical to a loop of ``predict``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernels.base import RadialKernel

__all__ = ["QueryRow", "QueryExtractor", "cross_sq_distances"]


def cross_sq_distances(queries: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Row-independent squared distances between queries and reference rows.

    Same quantity as :func:`repro.kernels.base.pairwise_sq_distances`
    but computed without the batch-shaped BLAS gemm, so each output row
    is a pure function of its own query point (see the module docstring
    for why serving needs that).
    """
    q_norms = np.einsum("ij,ij->i", queries, queries)
    r_norms = np.einsum("ij,ij->i", reference, reference)
    cross = np.einsum("id,jd->ij", queries, reference)
    sq = q_norms[:, None] + r_norms[None, :] - 2.0 * cross
    np.maximum(sq, 0.0, out=sq)
    return sq


@dataclass(frozen=True)
class QueryRow:
    """One query's edges into the reference graph.

    ``indices`` are reference-vertex positions (labeled-first ordering,
    matching the fit), ``weights`` the kernel edge weights, and
    ``self_weight`` the kernel's ``profile(0)`` — kept separate because
    it sits on the extended graph's diagonal (degree convention) but
    never couples the query to anything.
    """

    indices: np.ndarray
    weights: np.ndarray
    self_weight: float
    #: Coupling mass ``sum_j w(x, x_j)`` (diagonal excluded).  Stored at
    #: extraction time — it is read on every downstream use of the row
    #: (support check, NW denominator, degree), and an axis-1 reduction
    #: of the contiguous batch weights reduces each row independently,
    #: so precomputing it is bit-identical to summing per row.
    total: float

    def degree(self) -> float:
        """Extended-graph degree ``d(x) = self_weight + total``."""
        return self.self_weight + self.total


class QueryExtractor:
    """Extract :class:`QueryRow`\\ s for a fitted reference set.

    Parameters
    ----------
    x_reference:
        ``(N, d)`` reference inputs, labeled vertices first.
    kernel, bandwidth:
        The fitted kernel and resolved bandwidth.
    construction:
        ``"full"``, ``"knn"`` or ``"epsilon"`` — the reference graph's
        family, which fixes the attachment rule above.
    params:
        The graph's construction params (``k`` for knn, ``radius`` for
        epsilon).
    """

    def __init__(
        self,
        x_reference: np.ndarray,
        *,
        kernel: RadialKernel,
        bandwidth: float,
        construction: str,
        params: dict | None = None,
    ) -> None:
        params = dict(params or {})
        self.x_reference = np.ascontiguousarray(x_reference, dtype=np.float64)
        self.kernel = kernel
        self.bandwidth = float(bandwidth)
        self.construction = construction
        self.self_weight = float(kernel.profile(np.zeros(1))[0])
        #: Extended-graph degrees ``self_weight + total`` of the most
        #: recent :meth:`extract` batch, as one vector.  The drift
        #: watchdog reads this instead of re-deriving degrees row by
        #: row — the totals are already a vectorized axis-1 reduction
        #: here, so the per-row Python loop would be pure overhead.
        self.last_degrees: np.ndarray | None = None
        self._tree = None
        if construction == "full":
            self.k = None
            self.radius = None
        elif construction == "knn":
            self.k = int(params["k"])
            self.radius = None
        elif construction == "epsilon":
            self.k = None
            self.radius = float(params["radius"])
        else:
            raise ConfigurationError(
                f"cannot serve queries against a {construction!r} reference "
                f"graph; supported families: full, knn, epsilon"
            )

    @property
    def tree(self):
        """The kd-tree over reference points (built lazily, cached)."""
        if self._tree is None:
            from scipy.spatial import cKDTree

            self._tree = cKDTree(self.x_reference)
        return self._tree

    def extract(self, queries: np.ndarray) -> list[QueryRow]:
        """Edge rows for a validated ``(b, d)`` batch, one per query."""
        if self.construction == "knn":
            return self._extract_knn(queries)
        if self.construction == "epsilon":
            return self._extract_epsilon(queries)
        return self._extract_full(queries)

    def _extract_full(self, queries: np.ndarray) -> list[QueryRow]:
        sq = cross_sq_distances(queries, self.x_reference)
        weights = self.kernel.profile(np.sqrt(sq) / self.bandwidth)
        totals = weights.sum(axis=1)
        self.last_degrees = self.self_weight + totals
        indices = np.arange(self.x_reference.shape[0])
        return [
            QueryRow(indices, weights[i], self.self_weight, float(totals[i]))
            for i in range(queries.shape[0])
        ]

    def _extract_knn(self, queries: np.ndarray) -> list[QueryRow]:
        # The tree evaluates each query point independently, so batch
        # results match per-point results bit for bit.  The sort and
        # the kernel profile are likewise applied per row / element-wise
        # (axis-1 argsort and radial profiles never mix rows), so doing
        # them batch-at-a-time is purely a Python-overhead optimization.
        dist, idx = self.tree.query(queries, k=self.k)
        if self.k == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        order = np.argsort(idx, axis=1, kind="stable")
        indices = np.ascontiguousarray(
            np.take_along_axis(idx, order, axis=1), dtype=np.int64
        )
        weights = self.kernel.profile(
            np.take_along_axis(dist, order, axis=1) / self.bandwidth
        )
        totals = weights.sum(axis=1)
        self.last_degrees = self.self_weight + totals
        return [
            QueryRow(indices[i], weights[i], self.self_weight, float(totals[i]))
            for i in range(queries.shape[0])
        ]

    def _extract_epsilon(self, queries: np.ndarray) -> list[QueryRow]:
        rows = []
        for i in range(queries.shape[0]):
            indices = np.sort(
                np.asarray(
                    self.tree.query_ball_point(queries[i], self.radius),
                    dtype=np.int64,
                )
            )
            if indices.size:
                diffs = queries[i] - self.x_reference[indices]
                dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
                weights = self.kernel.profile(dist / self.bandwidth)
            else:
                weights = np.zeros(0)
            rows.append(
                QueryRow(indices, weights, self.self_weight, float(weights.sum()))
            )
        self.last_degrees = self.self_weight + np.asarray(
            [row.total for row in rows], dtype=np.float64
        )
        return rows
