"""Evaluation metrics: regression (RMSE family) and classification (AUC family)."""

from repro.metrics.classification import (
    accuracy,
    auc,
    confusion_counts,
    matthews_corrcoef,
    roc_curve,
    sensitivity_specificity,
)
from repro.metrics.isotonic import IsotonicCalibrator, pav_isotonic
from repro.metrics.probabilistic import (
    brier_score,
    log_loss,
    macro_ovr_auc,
    precision_recall_f1,
)
from repro.metrics.thresholds import best_f1_threshold, youden_threshold
from repro.metrics.regression import (
    calibration_error,
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
)

__all__ = [
    "root_mean_squared_error",
    "mean_squared_error",
    "mean_absolute_error",
    "calibration_error",
    "roc_curve",
    "auc",
    "accuracy",
    "confusion_counts",
    "matthews_corrcoef",
    "sensitivity_specificity",
    "brier_score",
    "log_loss",
    "precision_recall_f1",
    "macro_ovr_auc",
    "pav_isotonic",
    "IsotonicCalibrator",
    "youden_threshold",
    "best_f1_threshold",
]
