"""Probabilistic and threshold metrics beyond the paper's RMSE/AUC.

Round out the evaluation toolbox: Brier score and log loss for
probability quality, precision/recall/F1 at a threshold, and a macro
one-vs-rest AUC for the multiclass propagation module.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.metrics.classification import auc, confusion_counts
from repro.utils.validation import check_vector

__all__ = [
    "brier_score",
    "log_loss",
    "precision_recall_f1",
    "macro_ovr_auc",
]


def _binary_with_probs(y_true, probabilities) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_vector(y_true, "y_true")
    probabilities = check_vector(probabilities, "probabilities")
    if y_true.shape[0] != probabilities.shape[0]:
        raise DataValidationError(
            f"y_true and probabilities must have equal length; "
            f"got {y_true.shape[0]} and {probabilities.shape[0]}"
        )
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise DataValidationError("y_true must be binary 0/1")
    if probabilities.min() < 0 or probabilities.max() > 1:
        raise DataValidationError("probabilities must lie in [0, 1]")
    return y_true, probabilities


def brier_score(y_true, probabilities) -> float:
    """Mean squared error between outcomes and probabilities.

    Note this is *different* from the paper's RMSE metric, which
    compares against the true regression function ``q(X)`` rather than
    the realized 0/1 outcomes.
    """
    y_true, probabilities = _binary_with_probs(y_true, probabilities)
    return float(np.mean((y_true - probabilities) ** 2))


def log_loss(y_true, probabilities, *, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the outcomes.

    Probabilities are clipped to ``[eps, 1 - eps]`` so certain-but-wrong
    predictions yield a large finite penalty instead of infinity.
    """
    y_true, probabilities = _binary_with_probs(y_true, probabilities)
    clipped = np.clip(probabilities, eps, 1.0 - eps)
    return float(
        -np.mean(y_true * np.log(clipped) + (1.0 - y_true) * np.log(1.0 - clipped))
    )


def precision_recall_f1(y_true, y_pred) -> tuple[float, float, float]:
    """Precision, recall and F1 of hard 0/1 predictions.

    Degenerate denominators follow the usual convention: a quantity with
    an empty denominator is 0.
    """
    tp, fp, _, fn = confusion_counts(y_true, y_pred)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def macro_ovr_auc(y_true, score_matrix, classes=None) -> float:
    """Macro-averaged one-vs-rest AUC for multiclass scores.

    Parameters
    ----------
    y_true:
        Class labels of length m.
    score_matrix:
        ``(m, K)`` per-class scores (e.g.
        :attr:`repro.core.multiclass.MulticlassFit.scores`).
    classes:
        Class value per column; defaults to ``unique(y_true)`` which
        must then have exactly K values.

    Classes absent from ``y_true`` (no positives) are skipped; at least
    one class must be scorable.
    """
    y_true = check_vector(y_true, "y_true")
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[0] != y_true.shape[0]:
        raise DataValidationError(
            f"score_matrix must be (len(y_true), K); got {scores.shape}"
        )
    if classes is None:
        classes = np.unique(y_true)
    else:
        classes = np.asarray(classes)
    if classes.shape[0] != scores.shape[1]:
        raise DataValidationError(
            f"{classes.shape[0]} classes but {scores.shape[1]} score columns"
        )
    aucs = []
    for k, cls in enumerate(classes):
        positives = (y_true == cls).astype(float)
        if positives.min() == positives.max():
            continue  # class absent (or only class present): AUC undefined
        aucs.append(auc(positives, scores[:, k]))
    if not aucs:
        raise DataValidationError(
            "macro AUC undefined: no class has both positives and negatives"
        )
    return float(np.mean(aucs))
