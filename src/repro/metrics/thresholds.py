"""Decision-threshold selection for score-based classifiers.

The criteria output scores; turning them into labels requires a
threshold, and 0.5 is only right for calibrated scores.  Two standard
data-driven choices:

* :func:`youden_threshold` — maximizes Youden's J = sensitivity +
  specificity - 1, i.e. the ROC point farthest above the diagonal;
* :func:`best_f1_threshold` — maximizes F1 over all candidate
  thresholds.

Both consider the midpoints between consecutive distinct scores (plus
the extremes), so every achievable confusion table is examined.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.metrics.classification import roc_curve
from repro.metrics.probabilistic import precision_recall_f1
from repro.utils.validation import check_vector

__all__ = ["youden_threshold", "best_f1_threshold"]


def youden_threshold(y_true, scores) -> float:
    """Threshold maximizing Youden's J statistic.

    Uses the ROC curve's threshold set directly: J(t) = TPR(t) - FPR(t).
    Ties resolve to the smallest qualifying threshold (more sensitive).
    """
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    j_statistic = tpr - fpr
    # Skip the artificial (0,0) point at threshold +inf when any real
    # threshold matches its J value.
    best = int(np.argmax(j_statistic))
    if np.isinf(thresholds[best]):
        best = int(np.argmax(j_statistic[1:])) + 1
    return float(thresholds[best])


def best_f1_threshold(y_true, scores) -> float:
    """Threshold maximizing F1 of the rule ``score >= t``."""
    y_true = check_vector(y_true, "y_true")
    scores = check_vector(scores, "scores")
    if y_true.shape[0] != scores.shape[0]:
        raise DataValidationError(
            f"y_true and scores must have equal length; "
            f"got {y_true.shape[0]} and {scores.shape[0]}"
        )
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise DataValidationError("y_true must be binary 0/1")
    distinct = np.unique(scores)
    if distinct.shape[0] == 1:
        return float(distinct[0])
    candidates = np.concatenate(
        [
            [distinct[0] - 1.0],
            (distinct[:-1] + distinct[1:]) / 2.0,
            [distinct[-1] + 1.0],
        ]
    )
    best_threshold = candidates[0]
    best_f1 = -1.0
    for threshold in candidates:
        predictions = (scores >= threshold).astype(float)
        _, _, f1 = precision_recall_f1(y_true, predictions)
        if f1 > best_f1:
            best_f1 = f1
            best_threshold = threshold
    return float(best_threshold)
