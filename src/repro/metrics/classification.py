"""Binary-classification metrics, implemented from scratch.

The COIL experiment scores methods by the area under the ROC curve
(:func:`auc`), computed by sorting scores, sweeping every distinct
threshold, and integrating sensitivity against 1-specificity by the
trapezoidal rule — with proper tie handling (tied scores contribute a
single diagonal segment, which the rank-statistic form resolves as half
credit).  Accuracy, confusion counts, Matthews correlation and the
sensitivity/specificity pair (the ROC's axes, as the paper defines them)
are included for the extended studies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_vector

__all__ = [
    "roc_curve",
    "auc",
    "accuracy",
    "confusion_counts",
    "matthews_corrcoef",
    "sensitivity_specificity",
]


def _binary_pair(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_vector(y_true, "y_true")
    scores = check_vector(scores, "scores")
    if y_true.shape[0] != scores.shape[0]:
        raise DataValidationError(
            f"y_true and scores must have equal length; "
            f"got {y_true.shape[0]} and {scores.shape[0]}"
        )
    unique = np.unique(y_true)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise DataValidationError(
            f"y_true must contain only 0 and 1, got values {unique[:5]}"
        )
    return y_true, scores


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points ``(fpr, tpr, thresholds)``.

    Thresholds are the distinct score values in decreasing order; a point
    gives the false/true positive rates of the classifier
    ``score >= threshold``.  The returned arrays start at ``(0, 0)`` (an
    implicit threshold above every score) and end at ``(1, 1)``.

    Requires both classes present (the rates are otherwise undefined).
    """
    y_true, scores = _binary_pair(y_true, scores)
    n_pos = float(np.sum(y_true == 1.0))
    n_neg = float(np.sum(y_true == 0.0))
    if n_pos == 0 or n_neg == 0:
        raise DataValidationError(
            "roc_curve requires at least one positive and one negative sample"
        )
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_truth = y_true[order]

    # Indices where the score strictly drops — threshold boundaries.
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0.0)
    boundaries = np.concatenate([distinct, [sorted_scores.shape[0] - 1]])

    tps = np.cumsum(sorted_truth)[boundaries]
    fps = (boundaries + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[boundaries]])
    return fpr, tpr, thresholds


def auc(y_true, scores) -> float:
    """Area under the ROC curve by trapezoidal integration.

    Ties receive half credit (the trapezoid over a tied block has the
    same area as the Mann-Whitney rank statistic assigns).
    """
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = check_vector(y_true, "y_true")
    y_pred = check_vector(y_pred, "y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise DataValidationError(
            f"y_true and y_pred must have equal length; "
            f"got {y_true.shape[0]} and {y_pred.shape[0]}"
        )
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred) -> tuple[int, int, int, int]:
    """Binary confusion counts ``(tp, fp, tn, fn)`` at given hard labels."""
    y_true, y_pred = _binary_pair(y_true, y_pred)
    unique_pred = np.unique(y_pred)
    if not np.all(np.isin(unique_pred, (0.0, 1.0))):
        raise DataValidationError(
            f"y_pred must contain only 0 and 1, got values {unique_pred[:5]}"
        )
    tp = int(np.sum((y_true == 1.0) & (y_pred == 1.0)))
    fp = int(np.sum((y_true == 0.0) & (y_pred == 1.0)))
    tn = int(np.sum((y_true == 0.0) & (y_pred == 0.0)))
    fn = int(np.sum((y_true == 1.0) & (y_pred == 0.0)))
    return tp, fp, tn, fn


def matthews_corrcoef(y_true, y_pred) -> float:
    """Matthews correlation coefficient (the paper's future-work metric).

    Returns 0.0 when any marginal is empty (the standard degenerate-case
    convention), matching the limit of the formula as the product of
    marginals goes to zero.
    """
    tp, fp, tn, fn = confusion_counts(y_true, y_pred)
    denom_sq = float(tp + fp) * float(tp + fn) * float(tn + fp) * float(tn + fn)
    if denom_sq == 0.0:
        return 0.0
    return float((tp * tn - fp * fn) / np.sqrt(denom_sq))


def sensitivity_specificity(y_true, y_pred) -> tuple[float, float]:
    """Sensitivity (TPR) and specificity (TNR) at given hard labels.

    These are the ROC curve's axes as the paper defines them; both
    classes must be present.
    """
    tp, fp, tn, fn = confusion_counts(y_true, y_pred)
    if tp + fn == 0 or tn + fp == 0:
        raise DataValidationError(
            "sensitivity/specificity require both classes present in y_true"
        )
    return tp / (tp + fn), tn / (tn + fp)
