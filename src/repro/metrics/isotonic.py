"""Isotonic regression (pool-adjacent-violators) and score calibration.

The soft criterion shrinks scores toward the labeled mean, so at large
lambda its *ranking* stays informative while its *calibration* is
destroyed — which is exactly why the metric study sees AUC barely move
but MCC/accuracy collapse.  Monotone recalibration repairs that:
isotonic regression fits the best monotone map from scores to outcomes,
preserving the score *ranking* up to ties (pooled blocks become
constant, so AUC can shift slightly through tie credit — it cannot
collapse) while restoring threshold metrics.

:func:`pav_isotonic` is the classic O(n) pool-adjacent-violators
algorithm, written from scratch; :class:`IsotonicCalibrator` wraps it
with the usual fit-on-labeled / apply-to-unlabeled workflow
(interpolating between fitted score knots).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, NotFittedError
from repro.utils.validation import check_vector

__all__ = ["pav_isotonic", "IsotonicCalibrator"]


def pav_isotonic(values, weights=None) -> np.ndarray:
    """Best non-decreasing fit to ``values`` in weighted least squares.

    Pool-adjacent-violators: scan left to right, merging each new point
    into the previous block while the block means violate monotonicity;
    every element of a block receives the block's weighted mean.

    Parameters
    ----------
    values:
        The sequence to monotonize (already ordered by the predictor).
    weights:
        Optional positive weights, same length.
    """
    values = check_vector(values, "values")
    n = values.shape[0]
    if weights is None:
        weights = np.ones(n)
    else:
        weights = check_vector(weights, "weights", min_length=n)
        if weights.shape[0] != n:
            raise DataValidationError(
                f"weights must match values length {n}, got {weights.shape[0]}"
            )
        if np.any(weights <= 0):
            raise DataValidationError("weights must be strictly positive")

    # Blocks as (mean, weight, count) triples on a stack.
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            merged_weight = block_weights[-2] + block_weights[-1]
            merged_mean = (
                means[-2] * block_weights[-2] + means[-1] * block_weights[-1]
            ) / merged_weight
            merged_count = counts[-2] + counts[-1]
            means.pop(), block_weights.pop(), counts.pop()
            means[-1] = merged_mean
            block_weights[-1] = merged_weight
            counts[-1] = merged_count
    return np.repeat(means, counts)


class IsotonicCalibrator:
    """Monotone score-to-probability calibration.

    ``fit(scores, outcomes)`` sorts by score, runs PAV on the outcomes,
    and stores the (score, calibrated) knots; ``transform`` interpolates
    new scores between knots (clamping outside the fitted range).  The
    transform is non-decreasing, so rank metrics (AUC) are preserved
    while threshold metrics are repaired.
    """

    def __init__(self):
        self._knots_x: np.ndarray | None = None
        self._knots_y: np.ndarray | None = None

    def fit(self, scores, outcomes) -> "IsotonicCalibrator":
        scores = check_vector(scores, "scores", min_length=2)
        outcomes = check_vector(outcomes, "outcomes", min_length=2)
        if scores.shape[0] != outcomes.shape[0]:
            raise DataValidationError(
                f"scores and outcomes must have equal length; "
                f"got {scores.shape[0]} and {outcomes.shape[0]}"
            )
        order = np.argsort(scores, kind="stable")
        fitted = pav_isotonic(outcomes[order])
        # Collapse duplicate scores to a single knot (their PAV value is
        # constant within a tie block after averaging).
        sorted_scores = scores[order]
        knots_x: list[float] = []
        knots_y: list[float] = []
        start = 0
        for end in range(1, len(sorted_scores) + 1):
            if end == len(sorted_scores) or sorted_scores[end] != sorted_scores[start]:
                knots_x.append(float(sorted_scores[start]))
                knots_y.append(float(np.mean(fitted[start:end])))
                start = end
        self._knots_x = np.asarray(knots_x)
        self._knots_y = np.asarray(knots_y)
        return self

    def transform(self, scores) -> np.ndarray:
        if self._knots_x is None or self._knots_y is None:
            raise NotFittedError("IsotonicCalibrator.transform called before fit")
        scores = check_vector(scores, "scores", min_length=0)
        return np.interp(scores, self._knots_x, self._knots_y)

    def fit_transform(self, scores, outcomes) -> np.ndarray:
        return self.fit(scores, outcomes).transform(scores)
