"""Regression metrics.

The paper's synthetic experiments score estimators by the root mean
squared error between the estimated scores and the *true regression
function* on the unlabeled points:

    RMSE = sqrt( (1/m) sum_a ( q(X_{n+a}) - q_hat_{n+a} )^2 )

(:func:`root_mean_squared_error` with ``y_true = q``).  MSE, MAE and a
binned calibration error are included for the extended studies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_vector

__all__ = [
    "root_mean_squared_error",
    "mean_squared_error",
    "mean_absolute_error",
    "calibration_error",
]


def _paired(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_vector(y_true, "y_true")
    y_pred = check_vector(y_pred, "y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise DataValidationError(
            f"y_true and y_pred must have equal length; "
            f"got {y_true.shape[0]} and {y_pred.shape[0]}"
        )
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """The paper's RMSE: square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def calibration_error(y_true, probabilities, *, n_bins: int = 10) -> float:
    """Expected calibration error of probability predictions.

    Bins predictions into ``n_bins`` equal-width probability bins and
    averages ``|mean(y) - mean(p)|`` over bins, weighted by bin size.
    ``y_true`` must be 0/1 outcomes and ``probabilities`` in [0, 1].
    """
    y_true, probabilities = _paired(y_true, probabilities)
    if n_bins < 1:
        raise DataValidationError(f"n_bins must be >= 1, got {n_bins}")
    if probabilities.min() < 0 or probabilities.max() > 1:
        raise DataValidationError("probabilities must lie in [0, 1]")
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise DataValidationError("y_true must be binary 0/1 outcomes")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_ids = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    total = y_true.shape[0]
    error = 0.0
    for b in range(n_bins):
        mask = bin_ids == b
        count = int(np.sum(mask))
        if count == 0:
            continue
        gap = abs(float(np.mean(y_true[mask])) - float(np.mean(probabilities[mask])))
        error += (count / total) * gap
    return float(error)
