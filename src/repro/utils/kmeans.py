"""Lloyd's k-means, from scratch (used for anchor selection).

Implements k-means++ seeding and Lloyd iterations with empty-cluster
repair (an empty cluster is re-seeded at the point farthest from its
assigned center).  Only the pieces anchor selection needs — no
mini-batching, no multiple inits beyond ``n_init``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.kernels.base import pairwise_sq_distances
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix_2d

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit.

    Attributes
    ----------
    centers:
        ``(k, d)`` cluster centers.
    labels:
        Cluster assignment per input row.
    inertia:
        Sum of squared distances to assigned centers.
    iterations:
        Lloyd iterations performed in the winning init.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def _plus_plus_seeds(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = x[first]
    closest_sq = pairwise_sq_distances(x, centers[:1]).ravel()
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0:
            # All remaining points coincide with chosen centers.
            centers[j:] = x[rng.integers(0, n, size=k - j)]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[j] = x[choice]
        new_sq = pairwise_sq_distances(x, centers[j : j + 1]).ravel()
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


def _lloyd(
    x: np.ndarray, centers: np.ndarray, max_iter: int, tol: float
) -> tuple[np.ndarray, np.ndarray, float, int]:
    k = centers.shape[0]
    labels = np.zeros(x.shape[0], dtype=np.intp)
    for iteration in range(1, max_iter + 1):
        sq = pairwise_sq_distances(x, centers)
        labels = np.argmin(sq, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = x[labels == j]
            if members.shape[0] == 0:
                # Empty cluster: re-seed at the overall farthest point.
                farthest = int(np.argmax(np.min(sq, axis=1)))
                new_centers[j] = x[farthest]
            else:
                new_centers[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if shift <= tol:
            break
    sq = pairwise_sq_distances(x, centers)
    labels = np.argmin(sq, axis=1)
    inertia = float(np.sum(sq[np.arange(x.shape[0]), labels]))
    return centers, labels, inertia, iteration


def kmeans(
    x,
    k: int,
    *,
    n_init: int = 3,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed=None,
) -> KMeansResult:
    """Fit k-means with k-means++ seeding and ``n_init`` restarts.

    Parameters
    ----------
    x:
        Data matrix ``(n, d)`` with ``n >= k``.
    k:
        Number of clusters.
    n_init:
        Independent restarts; the lowest-inertia fit wins.
    max_iter, tol:
        Lloyd-iteration budget and center-shift stopping tolerance.
    seed:
        RNG seed.
    """
    x = check_matrix_2d(x, "x")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if x.shape[0] < k:
        raise DataValidationError(
            f"need at least k={k} samples, got {x.shape[0]}"
        )
    if n_init < 1:
        raise ConfigurationError(f"n_init must be >= 1, got {n_init}")
    rng = as_rng(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        centers = _plus_plus_seeds(x, k, rng)
        centers, labels, inertia, iterations = _lloyd(x, centers, max_iter, tol)
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                centers=centers, labels=labels, inertia=inertia, iterations=iterations
            )
    return best
