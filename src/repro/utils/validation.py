"""Input validation helpers.

Each checker raises :class:`repro.exceptions.DataValidationError` (or
:class:`repro.exceptions.GraphStructureError` for weight matrices) with a
message naming the offending argument, and returns the validated array as a
C-contiguous ``float64`` ndarray so downstream numeric code can rely on a
uniform dtype.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import DataValidationError, GraphStructureError

__all__ = [
    "check_finite_array",
    "check_labels",
    "check_matrix_2d",
    "check_positive_scalar",
    "check_square_matrix",
    "check_symmetric",
    "check_vector",
    "check_weight_matrix",
]


def check_finite_array(array, name: str = "array") -> np.ndarray:
    """Convert to a float64 ndarray and reject NaN/inf entries."""
    try:
        out = np.asarray(array, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{name} is not numeric: {exc}") from exc
    if not np.all(np.isfinite(out)):
        bad = int(np.sum(~np.isfinite(out)))
        raise DataValidationError(
            f"{name} contains {bad} non-finite (NaN/inf) entries"
        )
    return out


def check_vector(array, name: str = "vector", min_length: int = 1) -> np.ndarray:
    """Validate a 1-d finite vector of length at least ``min_length``."""
    out = check_finite_array(array, name)
    if out.ndim != 1:
        raise DataValidationError(f"{name} must be 1-d, got shape {out.shape}")
    if out.shape[0] < min_length:
        raise DataValidationError(
            f"{name} must have length >= {min_length}, got {out.shape[0]}"
        )
    return out


def check_matrix_2d(array, name: str = "matrix") -> np.ndarray:
    """Validate a 2-d finite matrix."""
    out = check_finite_array(array, name)
    if out.ndim != 2:
        raise DataValidationError(f"{name} must be 2-d, got shape {out.shape}")
    return out


def check_square_matrix(array, name: str = "matrix") -> np.ndarray:
    """Validate a square 2-d finite matrix."""
    out = check_matrix_2d(array, name)
    if out.shape[0] != out.shape[1]:
        raise DataValidationError(f"{name} must be square, got shape {out.shape}")
    return out


def check_symmetric(matrix: np.ndarray, name: str = "matrix", tol: float = 1e-10) -> np.ndarray:
    """Reject matrices that are not symmetric to within ``tol``."""
    asym = float(np.max(np.abs(matrix - matrix.T))) if matrix.size else 0.0
    if asym > tol:
        raise GraphStructureError(
            f"{name} must be symmetric; max |A - A.T| = {asym:.3e} > tol={tol:.1e}"
        )
    return matrix


def check_weight_matrix(weights, name: str = "weights", *, allow_sparse: bool = True):
    """Validate a similarity/weight matrix.

    Requirements: square, symmetric, finite, non-negative entries.  Sparse
    CSR/CSC matrices are accepted (and returned as CSR) when
    ``allow_sparse`` is true.
    """
    if sparse.issparse(weights):
        if not allow_sparse:
            raise DataValidationError(f"{name} must be dense for this operation")
        mat = weights.tocsr().astype(np.float64)
        if mat.shape[0] != mat.shape[1]:
            raise DataValidationError(f"{name} must be square, got shape {mat.shape}")
        if mat.nnz and not np.all(np.isfinite(mat.data)):
            raise DataValidationError(f"{name} contains non-finite entries")
        if mat.nnz and mat.data.min() < 0:
            raise GraphStructureError(f"{name} contains negative weights")
        asym = abs(mat - mat.T)
        if asym.nnz and asym.data.max() > 1e-10:
            raise GraphStructureError(f"{name} must be symmetric")
        return mat
    mat = check_square_matrix(weights, name)
    check_symmetric(mat, name)
    if mat.size and mat.min() < 0:
        raise GraphStructureError(
            f"{name} contains negative weights (min = {mat.min():.3e})"
        )
    return mat


def check_labels(labels, n_labeled: int | None = None, name: str = "labels") -> np.ndarray:
    """Validate a 1-d response vector, optionally of exact length."""
    out = check_vector(labels, name)
    if n_labeled is not None and out.shape[0] != n_labeled:
        raise DataValidationError(
            f"{name} must have length {n_labeled}, got {out.shape[0]}"
        )
    return out


def check_positive_scalar(value, name: str = "value", *, allow_zero: bool = False) -> float:
    """Validate a finite positive (or non-negative) scalar."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{name} must be a number: {exc}") from exc
    if not np.isfinite(out):
        raise DataValidationError(f"{name} must be finite, got {out}")
    if allow_zero:
        if out < 0:
            raise DataValidationError(f"{name} must be >= 0, got {out}")
    elif out <= 0:
        raise DataValidationError(f"{name} must be > 0, got {out}")
    return out
