"""Timing helpers for the complexity experiments.

The paper claims (Section II) that solving the hard criterion costs
``O(m^3)`` while the soft criterion's full-system form costs
``O((n+m)^3)``.  :class:`Stopwatch` collects wall-clock samples and
:func:`fit_power_law` fits the growth exponent ``b`` in ``t ≈ a·x^b`` by
least squares on log-log data, which is how ``bench_complexity``
verifies the claim.

``Stopwatch`` is retained for its aggregation API (``total`` / ``mean``
/ ``count`` by label) but is now a thin veneer over the span tracer in
:mod:`repro.obs`: every measurement also opens a ``stopwatch.<label>``
span on the active tracer, so stopwatch timings appear in traces for
free.  New code should instrument with :func:`repro.obs.span` directly
— the stopwatch exists for the established ``bench_complexity`` /
``fit_power_law`` callers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import obs

__all__ = ["Stopwatch", "collect_timings", "fit_power_law"]


def collect_timings(fn, repeats: int) -> tuple[list[float], object]:
    """Call ``fn`` ``repeats`` times, timing each call with ``perf_counter``.

    Returns ``(timings, last_result)`` — the per-call wall-clock seconds
    and the final call's return value.  This is the clean timing loop the
    benchmark recorder (:mod:`repro.obs.bench`) uses: no tracing, no
    tracemalloc, nothing between the clock reads but ``fn`` itself.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings: list[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return timings, result


@dataclass
class Stopwatch:
    """Accumulates labelled wall-clock samples.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("solve"):
    ...     _ = sum(range(1000))
    >>> watch.total("solve") >= 0.0
    True
    """

    samples: dict[str, list[float]] = field(default_factory=dict)

    def measure(self, label: str) -> "_Measurement":
        """Return a context manager that records one sample under ``label``."""
        return _Measurement(self, label)

    def add(self, label: str, seconds: float) -> None:
        self.samples.setdefault(label, []).append(float(seconds))

    def total(self, label: str) -> float:
        return float(sum(self.samples.get(label, [])))

    def mean(self, label: str) -> float:
        values = self.samples.get(label, [])
        if not values:
            raise KeyError(f"no samples recorded for label {label!r}")
        return float(np.mean(values))

    def count(self, label: str) -> int:
        return len(self.samples.get(label, []))


class _Measurement:
    def __init__(self, watch: Stopwatch, label: str):
        self._watch = watch
        self._label = label
        self._span = None
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._span = obs.span(f"stopwatch.{self._label}")
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._watch.add(self._label, elapsed)
        self._span.__exit__(*exc_info)
        self._span = None


def fit_power_law(sizes, times) -> tuple[float, float]:
    """Fit ``t = a * x**b`` by least squares in log-log space.

    Returns ``(a, b)``.  Used to estimate the empirical complexity
    exponent of the hard/soft solvers.

    Sub-resolution timings (``t == 0`` from ``perf_counter`` on very fast
    solves) are dropped with a warning rather than crashing the
    experiment; at least two strictly positive samples must survive.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.shape != times.shape or sizes.ndim != 1 or sizes.size < 2:
        raise ValueError("sizes and times must be equal-length 1-d arrays of length >= 2")
    if np.any(sizes <= 0):
        raise ValueError("power-law fit requires strictly positive sizes")
    positive = times > 0
    if not np.all(positive):
        dropped = int(np.sum(~positive))
        warnings.warn(
            f"fit_power_law: dropping {dropped} non-positive timing sample(s) "
            f"(likely below timer resolution); fitting the remaining "
            f"{int(np.sum(positive))}",
            RuntimeWarning,
            stacklevel=2,
        )
        obs.get_registry().counter("timing.zero_samples_dropped").inc(dropped)
        sizes = sizes[positive]
        times = times[positive]
    if sizes.size < 2:
        raise ValueError(
            "power-law fit requires at least two strictly positive timing samples"
        )
    slope, intercept = np.polyfit(np.log(sizes), np.log(times), deg=1)
    return float(np.exp(intercept)), float(slope)
