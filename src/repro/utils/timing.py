"""Timing helpers for the complexity experiments.

The paper claims (Section II) that solving the hard criterion costs
``O(m^3)`` while the soft criterion's full-system form costs
``O((n+m)^3)``.  :class:`Stopwatch` collects wall-clock samples and
:func:`fit_power_law` fits the growth exponent ``b`` in ``t ≈ a·x^b`` by
least squares on log-log data, which is how ``bench_complexity``
verifies the claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Stopwatch", "fit_power_law"]


@dataclass
class Stopwatch:
    """Accumulates labelled wall-clock samples.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("solve"):
    ...     _ = sum(range(1000))
    >>> watch.total("solve") >= 0.0
    True
    """

    samples: dict[str, list[float]] = field(default_factory=dict)

    def measure(self, label: str) -> "_Measurement":
        """Return a context manager that records one sample under ``label``."""
        return _Measurement(self, label)

    def add(self, label: str, seconds: float) -> None:
        self.samples.setdefault(label, []).append(float(seconds))

    def total(self, label: str) -> float:
        return float(sum(self.samples.get(label, [])))

    def mean(self, label: str) -> float:
        values = self.samples.get(label, [])
        if not values:
            raise KeyError(f"no samples recorded for label {label!r}")
        return float(np.mean(values))

    def count(self, label: str) -> int:
        return len(self.samples.get(label, []))


class _Measurement:
    def __init__(self, watch: Stopwatch, label: str):
        self._watch = watch
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._watch.add(self._label, time.perf_counter() - self._start)


def fit_power_law(sizes, times) -> tuple[float, float]:
    """Fit ``t = a * x**b`` by least squares in log-log space.

    Returns ``(a, b)``.  Used to estimate the empirical complexity
    exponent of the hard/soft solvers.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.shape != times.shape or sizes.ndim != 1 or sizes.size < 2:
        raise ValueError("sizes and times must be equal-length 1-d arrays of length >= 2")
    if np.any(sizes <= 0) or np.any(times <= 0):
        raise ValueError("power-law fit requires strictly positive sizes and times")
    slope, intercept = np.polyfit(np.log(sizes), np.log(times), deg=1)
    return float(np.exp(intercept)), float(slope)
