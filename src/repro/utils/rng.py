"""Random-number-generator management.

All stochastic code in this library takes a ``seed`` argument that may be
``None``, an integer, or an existing :class:`numpy.random.Generator`, and
normalizes it with :func:`as_rng`.  Experiment replicates draw independent
child generators via :func:`spawn_rngs` so that:

* every replicate is reproducible from the experiment's master seed, and
* replicates are statistically independent (numpy ``SeedSequence.spawn``),
  rather than consecutive slices of one stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs", "spawn_seeds"]

SeedLike = int | None | np.random.Generator | np.random.SeedSequence


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent seed sequences from a master ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream so repeated
        # calls on the same generator yield different (but deterministic)
        # families of children.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from a master ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
