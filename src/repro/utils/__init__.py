"""Shared utilities: RNG management, input validation, timing."""

from repro.utils.rng import as_rng, spawn_rngs, spawn_seeds
from repro.utils.timing import Stopwatch, fit_power_law
from repro.utils.validation import (
    check_finite_array,
    check_labels,
    check_matrix_2d,
    check_positive_scalar,
    check_square_matrix,
    check_symmetric,
    check_vector,
    check_weight_matrix,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "spawn_seeds",
    "Stopwatch",
    "fit_power_law",
    "check_finite_array",
    "check_labels",
    "check_matrix_2d",
    "check_positive_scalar",
    "check_square_matrix",
    "check_symmetric",
    "check_vector",
    "check_weight_matrix",
]
