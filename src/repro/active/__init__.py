"""Active learning with harmonic functions.

The hard criterion's Gaussian-field view yields principled query
strategies: ask for the label whose acquisition most reduces posterior
uncertainty or expected risk (Zhu, Lafferty & Ghahramani 2003).  This
subpackage implements the classic strategies over this library's graphs
and a simulation loop for label-budget experiments.
"""

from repro.active.loop import ActiveLearningHistory, run_active_learning
from repro.active.strategies import (
    expected_risk_strategy,
    margin_strategy,
    random_strategy,
    strategy_by_name,
    variance_strategy,
)

__all__ = [
    "random_strategy",
    "margin_strategy",
    "variance_strategy",
    "expected_risk_strategy",
    "strategy_by_name",
    "run_active_learning",
    "ActiveLearningHistory",
]
