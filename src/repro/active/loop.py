"""The active-learning simulation loop.

Starts from a small labeled seed, repeatedly asks a query strategy which
unlabeled vertex to label next, reveals the held-out truth, re-solves
the hard criterion, and records accuracy after every acquisition.  The
graph is built once over all points; each acquisition is a relabeling
(vertices are reordered so the labeled block stays first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.hard import solve_hard_criterion
from repro.exceptions import ConfigurationError, DataValidationError
from repro.metrics.classification import accuracy
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = ["ActiveLearningHistory", "run_active_learning"]


@dataclass(frozen=True)
class ActiveLearningHistory:
    """Trace of one active-learning run.

    Attributes
    ----------
    n_labeled:
        Labeled-set size after each acquisition (starting at the seed).
    accuracies:
        Transductive accuracy on the *remaining* unlabeled vertices at
        each step.
    queried:
        Original vertex indices queried, in order.
    strategy:
        The strategy name (or callable repr) used.
    """

    n_labeled: tuple[int, ...]
    accuracies: tuple[float, ...]
    queried: tuple[int, ...]
    strategy: str

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1]

    def area_under_curve(self) -> float:
        """Mean accuracy across acquisitions (label-efficiency summary)."""
        return float(np.mean(self.accuracies))


def run_active_learning(
    weights,
    y_true,
    *,
    seed_indices,
    budget: int,
    strategy,
    rng_seed=None,
) -> ActiveLearningHistory:
    """Simulate pool-based transductive active learning.

    Parameters
    ----------
    weights:
        Full ``(N, N)`` weight matrix over the pool (any vertex order).
    y_true:
        Ground-truth binary 0/1 labels for every vertex; revealed one at
        a time as the strategy queries.
    seed_indices:
        Vertices labeled before the first query (must be non-empty and
        contain both classes for the margin/risk strategies to be
        meaningful).
    budget:
        Number of queries to issue.
    strategy:
        A callable ``(weights, n_labeled, y_labeled, rng) -> int``
        (index into the unlabeled block), or a registry name from
        :func:`repro.active.strategies.strategy_by_name`.
    rng_seed:
        Seed for any strategy randomness.
    """
    from repro.active.strategies import strategy_by_name

    weights = check_weight_matrix(weights)
    if sparse.issparse(weights):
        weights = np.asarray(weights.todense())
    y_true = check_labels(y_true, weights.shape[0], name="y_true")
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise DataValidationError("y_true must be binary 0/1 labels")

    seed_indices = np.asarray(seed_indices, dtype=np.intp)
    if seed_indices.ndim != 1 or seed_indices.size == 0:
        raise ConfigurationError("seed_indices must be a non-empty 1-d index array")
    if np.unique(seed_indices).size != seed_indices.size:
        raise ConfigurationError("seed_indices contains duplicates")
    total = weights.shape[0]
    if seed_indices.min() < 0 or seed_indices.max() >= total:
        raise ConfigurationError("seed_indices out of range")
    if budget < 1 or budget > total - seed_indices.size - 1:
        raise ConfigurationError(
            f"budget must be in [1, {total - seed_indices.size - 1}], got {budget}"
        )
    if isinstance(strategy, str):
        strategy_name = strategy
        strategy = strategy_by_name(strategy)
    else:
        strategy_name = getattr(strategy, "__name__", repr(strategy))

    rng = as_rng(rng_seed)
    labeled = list(seed_indices)
    unlabeled = [i for i in range(total) if i not in set(labeled)]

    n_history: list[int] = []
    acc_history: list[float] = []
    queried: list[int] = []

    def evaluate() -> None:
        order = np.concatenate([labeled, unlabeled])
        w_perm = weights[np.ix_(order, order)]
        fit = solve_hard_criterion(
            w_perm, y_true[labeled], check_reachability=False
        )
        predictions = (fit.unlabeled_scores >= 0.5).astype(float)
        n_history.append(len(labeled))
        acc_history.append(accuracy(y_true[unlabeled], predictions))

    evaluate()
    for _ in range(budget):
        order = np.concatenate([labeled, unlabeled])
        w_perm = weights[np.ix_(order, order)]
        pick = strategy(w_perm, len(labeled), y_true[labeled], rng)
        if not 0 <= pick < len(unlabeled):
            raise ConfigurationError(
                f"strategy returned out-of-range unlabeled index {pick}"
            )
        vertex = unlabeled.pop(pick)
        labeled.append(vertex)
        queried.append(int(vertex))
        evaluate()

    return ActiveLearningHistory(
        n_labeled=tuple(n_history),
        accuracies=tuple(acc_history),
        queried=tuple(queried),
        strategy=strategy_name,
    )
