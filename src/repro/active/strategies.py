"""Query strategies for transductive active learning.

Each strategy is a function

    strategy(weights, n_labeled, y_labeled, rng) -> int

returning the index *within the unlabeled block* of the vertex to query
next.  The graph convention matches the rest of the library: labeled
vertices first.

Strategies
----------
* :func:`random_strategy` — uniform baseline.
* :func:`margin_strategy` — query the vertex whose hard-criterion score
  is closest to the decision boundary 1/2 (binary uncertainty
  sampling).
* :func:`variance_strategy` — query the largest Gaussian-field posterior
  variance (coverage-seeking; ignores the labels entirely).
* :func:`expected_risk_strategy` — Zhu-Lafferty-Ghahramani expected-risk
  minimization: for each candidate, compute the retrained harmonic
  solutions under both hypothetical answers in O(m) each via the
  rank-one Sherman-Morrison identity on (D22 - W22)^{-1}, and pick the
  candidate minimizing the expected resulting 0/1 risk estimate.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.uncertainty import gaussian_field_posterior
from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.validation import check_labels, check_weight_matrix

__all__ = [
    "random_strategy",
    "margin_strategy",
    "variance_strategy",
    "expected_risk_strategy",
    "strategy_by_name",
]


def _dense(weights) -> np.ndarray:
    weights = check_weight_matrix(weights)
    if sparse.issparse(weights):
        return np.asarray(weights.todense())
    return weights


def random_strategy(weights, n_labeled, y_labeled, rng) -> int:
    """Uniformly random unlabeled vertex."""
    total = weights.shape[0]
    m = total - n_labeled
    if m <= 0:
        raise DataValidationError("no unlabeled vertices left to query")
    return int(rng.integers(0, m))


def margin_strategy(weights, n_labeled, y_labeled, rng) -> int:
    """Vertex whose harmonic score is nearest the 1/2 boundary."""
    posterior = gaussian_field_posterior(weights, y_labeled)
    margins = np.abs(posterior.mean - 0.5)
    return int(np.argmin(margins))


def variance_strategy(weights, n_labeled, y_labeled, rng) -> int:
    """Vertex with the largest Gaussian-field posterior variance."""
    posterior = gaussian_field_posterior(weights, y_labeled)
    return int(posterior.most_uncertain(1)[0])


def expected_risk_strategy(weights, n_labeled, y_labeled, rng) -> int:
    """Zhu-Lafferty-Ghahramani expected-risk minimization.

    The estimated risk of a harmonic solution ``f`` is
    ``sum_u min(f_u, 1 - f_u)``.  Adding vertex ``k`` with answer
    ``y in {0, 1}`` clamps its score, and the retrained solution is the
    conditional of the Gaussian field:

        f^{+(k,y)} = f + (y - f_k) * Sigma[:, k] / Sigma[k, k].

    The strategy queries the k minimizing
    ``f_k * risk(f^{+(k,1)}) + (1 - f_k) * risk(f^{+(k,0)})``, using the
    current score as the probability of the answer.
    """
    y_labeled = check_labels(y_labeled, name="y_labeled")
    posterior = gaussian_field_posterior(weights, y_labeled)
    f = np.clip(posterior.mean, 0.0, 1.0)
    covariance = posterior.covariance
    variances = np.diagonal(covariance)
    m = f.shape[0]
    best_index = 0
    best_risk = np.inf
    for k in range(m):
        influence = covariance[:, k] / variances[k]
        risk = 0.0
        for answer, prob in ((1.0, f[k]), (0.0, 1.0 - f[k])):
            updated = np.clip(f + (answer - f[k]) * influence, 0.0, 1.0)
            updated_risk = float(np.sum(np.minimum(updated, 1.0 - updated)))
            # The queried vertex itself becomes labeled: zero risk there.
            updated_risk -= float(min(updated[k], 1.0 - updated[k]))
            risk += prob * updated_risk
        if risk < best_risk:
            best_risk = risk
            best_index = k
    return best_index


_STRATEGIES = {
    "random": random_strategy,
    "margin": margin_strategy,
    "variance": variance_strategy,
    "expected_risk": expected_risk_strategy,
}


def strategy_by_name(name: str):
    """Look up a query strategy by registry name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ConfigurationError(
            f"unknown strategy {name!r}; known strategies: {known}"
        ) from None
