"""Synthetic Columbia-Object-Image-Library-like dataset (Figure 5 substitute).

The paper evaluates on the COIL benchmark variant of Chapelle et al.
(2006): 24 objects photographed from 72 viewing angles, grouped into 6
classes of 250 images (38 of each class's 288 images discarded), inputs
taken from 16x16 pixels, and a binary version grouping the first three
and last three classes.  That dataset is not available offline, so this
module generates a *procedural* equivalent with the same geometry:

* 24 "objects", each a closed shape whose radial profile is a random
  harmonic series, rendered as a soft silhouette on a 16x16 grid;
* 72 viewing angles per object — the shape, its albedo texture, and the
  lighting all rotate with the angle, so each object's images trace a
  1-d manifold in pixel space exactly as real turntable images do;
* the paper's grouping: 4 objects per class, 6 classes, 38 images per
  class discarded at random, binary labels = first three classes vs last
  three;
* two difficulty knobs: ``noise`` (per-pixel Gaussian noise) and
  ``shared_structure`` (how much of the harmonic profile all objects
  share).  The defaults are calibrated so graph-based SSL attains
  mid-range AUC (~0.7 in the paper), keeping Figure 5's *shape*
  reproducible: AUC decreasing in lambda and in the unlabeled fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.rng import as_rng

__all__ = ["CoilLikeDataset", "make_coil_like"]

_N_OBJECTS = 24
_N_ANGLES = 72
_N_CLASSES = 6
_OBJECTS_PER_CLASS = _N_OBJECTS // _N_CLASSES
_N_HARMONICS = 4
_N_BUMPS = 3


@dataclass(frozen=True)
class CoilLikeDataset:
    """The generated image dataset.

    Attributes
    ----------
    images:
        ``(N, image_size**2)`` flattened grayscale images in roughly
        ``[0, 1]`` plus noise.
    class_labels:
        Integer class ids in ``0..5``.
    binary_labels:
        0/1 labels: classes {0,1,2} -> 0, classes {3,4,5} -> 1 (the
        paper's first-three/last-three grouping).
    object_ids:
        Which of the 24 objects each image depicts.
    angles:
        Viewing angle of each image, radians in ``[0, 2 pi)``.
    image_size:
        Side length of the square images.
    """

    images: np.ndarray
    class_labels: np.ndarray
    binary_labels: np.ndarray
    object_ids: np.ndarray
    angles: np.ndarray
    image_size: int

    @property
    def n_samples(self) -> int:
        return self.images.shape[0]

    def image(self, index: int) -> np.ndarray:
        """One image reshaped to ``(image_size, image_size)``."""
        return self.images[index].reshape(self.image_size, self.image_size)


def _object_parameters(
    rng: np.random.Generator, shared_structure: float, ring_amplitude: float
) -> list[dict]:
    """Draw per-object shape/texture parameters.

    A single "prototype" object is drawn first; each object interpolates
    between the prototype and an independent draw with weight
    ``shared_structure`` on the prototype, so larger values make all
    objects (and hence the two binary super-classes) harder to separate.
    """
    def draw() -> dict:
        return {
            "base_radius": rng.uniform(0.35, 0.55),
            "amplitudes": rng.normal(0.0, 0.08, size=_N_HARMONICS),
            "phases": rng.uniform(0.0, 2.0 * np.pi, size=_N_HARMONICS),
            "bump_heights": rng.uniform(0.2, 0.6, size=_N_BUMPS),
            "bump_angles": rng.uniform(0.0, 2.0 * np.pi, size=_N_BUMPS),
            "bump_sharpness": rng.uniform(1.0, 4.0, size=_N_BUMPS),
            "base_albedo": rng.uniform(0.45, 0.75),
            "ring_frequency": rng.uniform(4.0, 14.0),
            "ring_phase": rng.uniform(0.0, 2.0 * np.pi),
            "ring_amplitude": rng.uniform(0.3 * ring_amplitude, ring_amplitude)
            if ring_amplitude > 0
            else 0.0,
            "light_phase": rng.uniform(0.0, 2.0 * np.pi),
        }

    prototype = draw()
    objects = []
    w = shared_structure
    for _ in range(_N_OBJECTS):
        own = draw()
        blended = {
            key: w * np.asarray(prototype[key]) + (1.0 - w) * np.asarray(own[key])
            for key in own
        }
        objects.append(blended)
    return objects


def _install_confusable_pairs(
    objects: list[dict],
    rng: np.random.Generator,
    confusable_pairs: int,
    confusable_jitter: float,
) -> None:
    """Make some binary-group-B objects near-twins of group-A objects.

    Real COIL contains objects from different (arbitrarily grouped)
    classes that look nearly identical at 16x16 resolution; those
    confusable pairs are what makes graph smoothing *misleading* — the
    regime in which the paper observes the hard criterion winning.  Each
    selected object in the second binary group (ids 12..23) copies the
    parameters of a distinct object in the first group (ids 0..11) plus
    a small jitter, in place.
    """
    half = _N_OBJECTS // 2
    sources = rng.choice(half, size=confusable_pairs, replace=False)
    targets = half + rng.choice(half, size=confusable_pairs, replace=False)
    for source, target in zip(sources, targets):
        twin = {}
        for key, value in objects[source].items():
            value = np.asarray(value, dtype=np.float64)
            twin[key] = value + rng.normal(0.0, confusable_jitter, size=value.shape)
        objects[target] = twin


def _render_object(
    params: dict,
    angles: np.ndarray,
    image_size: int,
    softness: float,
    lighting_amplitude: float,
) -> np.ndarray:
    """Render one object at every viewing angle; returns ``(len(angles), P)``."""
    coords = np.linspace(-1.0, 1.0, image_size)
    xx, yy = np.meshgrid(coords, coords)
    pixel_r = np.sqrt(xx * xx + yy * yy).ravel()  # (P,)
    pixel_theta = np.arctan2(yy, xx).ravel()  # (P,)

    # Object-frame angle of each pixel under each viewing angle: (A, P).
    theta = pixel_theta[None, :] - angles[:, None]

    harmonics = np.arange(1, _N_HARMONICS + 1)
    # Radial profile rho(theta) = r0 + sum_k a_k cos(k theta + phi_k).
    profile = params["base_radius"] + np.sum(
        params["amplitudes"][:, None, None]
        * np.cos(harmonics[:, None, None] * theta[None, :, :] + params["phases"][:, None, None]),
        axis=0,
    )
    silhouette = 1.0 / (1.0 + np.exp(-(profile - pixel_r[None, :]) / softness))

    # Von-Mises-style albedo bumps attached to the object frame.
    albedo = np.full_like(theta, float(params["base_albedo"]))
    for height, center, kappa in zip(
        params["bump_heights"], params["bump_angles"], params["bump_sharpness"]
    ):
        albedo = albedo + height * np.exp(kappa * (np.cos(theta - center) - 1.0))

    # Rotation-invariant radial "ring" texture: a per-object signature
    # shared by ALL of the object's viewing angles, mirroring how real
    # objects keep their surface pattern and size across the turntable.
    rings = 1.0 + params["ring_amplitude"] * np.cos(
        params["ring_frequency"] * pixel_r + params["ring_phase"]
    )
    albedo = albedo * rings[None, :]

    # Lambertian-style global lighting varying with viewing angle.
    lighting = (1.0 - lighting_amplitude) + lighting_amplitude * np.cos(
        angles - params["light_phase"]
    )
    return silhouette * albedo * lighting[:, None]


def make_coil_like(
    *,
    image_size: int = 16,
    images_per_class: int = 250,
    noise: float = 0.0,
    shared_structure: float = 0.0,
    ring_amplitude: float = 0.0,
    lighting_amplitude: float = 0.25,
    confusable_pairs: int = 0,
    confusable_jitter: float = 0.02,
    softness: float = 0.06,
    seed=None,
) -> CoilLikeDataset:
    """Generate the COIL-like dataset.

    Parameters
    ----------
    image_size:
        Side length; the paper's inputs are 16x16 = 256 pixels.
    images_per_class:
        Images kept per class after random discarding (paper: 250 of the
        288 available, i.e. 38 discarded).
    noise:
        Std of per-pixel Gaussian noise; raises task difficulty.
    shared_structure:
        In [0, 1): how similar all objects are to a common prototype.
    ring_amplitude:
        Strength of each object's rotation-invariant radial texture.
        Larger values make every object a tight, well-separated graph
        cluster — the regime where *smoothing* (large lambda) wins;
        the default 0.0 keeps object clusters overlapping, which is the
        regime where the paper's "hard criterion best" finding lives and
        is what reproduces Figure 5's shape.  The knob is an ablation
        axis: it moves the task continuously between the two regimes.
    lighting_amplitude:
        Amplitude of the viewing-angle-dependent global lighting; larger
        values smear each object's images along a shared brightness axis.
    confusable_pairs:
        Number of cross-binary-group near-twin object pairs (see
        :func:`_install_confusable_pairs`); 0 (default) disables them.
        Twins make graph smoothing actively misleading; a second
        ablation axis for studying when clamping beats smoothing.
    confusable_jitter:
        Parameter-space distance between twins (smaller = more
        confusable).
    softness:
        Silhouette edge softness (sub-pixel anti-aliasing scale).
    seed:
        RNG seed for object parameters, discarding, and noise.
    """
    if image_size < 4:
        raise DataValidationError(f"image_size must be >= 4, got {image_size}")
    max_per_class = _OBJECTS_PER_CLASS * _N_ANGLES
    if not 1 <= images_per_class <= max_per_class:
        raise DataValidationError(
            f"images_per_class must be in [1, {max_per_class}], got {images_per_class}"
        )
    if not 0.0 <= shared_structure < 1.0:
        raise ConfigurationError(
            f"shared_structure must be in [0, 1), got {shared_structure}"
        )
    if noise < 0:
        raise ConfigurationError(f"noise must be >= 0, got {noise}")
    if ring_amplitude < 0:
        raise ConfigurationError(f"ring_amplitude must be >= 0, got {ring_amplitude}")
    if not 0.0 <= lighting_amplitude < 1.0:
        raise ConfigurationError(
            f"lighting_amplitude must be in [0, 1), got {lighting_amplitude}"
        )

    if not 0 <= confusable_pairs <= _N_OBJECTS // 2:
        raise ConfigurationError(
            f"confusable_pairs must be in [0, {_N_OBJECTS // 2}], got {confusable_pairs}"
        )
    if confusable_jitter < 0:
        raise ConfigurationError(
            f"confusable_jitter must be >= 0, got {confusable_jitter}"
        )

    rng = as_rng(seed)
    objects = _object_parameters(rng, shared_structure, ring_amplitude)
    if confusable_pairs:
        _install_confusable_pairs(objects, rng, confusable_pairs, confusable_jitter)
    angles = np.linspace(0.0, 2.0 * np.pi, _N_ANGLES, endpoint=False)

    images = []
    class_labels = []
    object_ids = []
    image_angles = []
    for object_id, params in enumerate(objects):
        rendered = _render_object(params, angles, image_size, softness, lighting_amplitude)
        images.append(rendered)
        class_labels.append(np.full(_N_ANGLES, object_id // _OBJECTS_PER_CLASS))
        object_ids.append(np.full(_N_ANGLES, object_id))
        image_angles.append(angles)
    images = np.vstack(images)
    class_labels = np.concatenate(class_labels)
    object_ids = np.concatenate(object_ids)
    image_angles = np.concatenate(image_angles)

    # Random per-class discarding down to images_per_class (paper: 288->250).
    keep = []
    for cls in range(_N_CLASSES):
        members = np.flatnonzero(class_labels == cls)
        chosen = rng.choice(members, size=images_per_class, replace=False)
        keep.append(np.sort(chosen))
    keep = np.concatenate(keep)
    order = rng.permutation(keep.shape[0])
    keep = keep[order]

    images = images[keep]
    if noise > 0:
        images = images + rng.normal(0.0, noise, size=images.shape)
    class_labels = class_labels[keep]
    binary_labels = (class_labels >= _N_CLASSES // 2).astype(np.float64)
    return CoilLikeDataset(
        images=images,
        class_labels=class_labels.astype(np.int64),
        binary_labels=binary_labels,
        object_ids=object_ids[keep].astype(np.int64),
        angles=image_angles[keep],
        image_size=image_size,
    )
