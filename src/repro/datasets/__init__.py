"""Datasets: the paper's synthetic models, a COIL-like substitute, and toys."""

from repro.datasets.coil import CoilLikeDataset, make_coil_like
from repro.datasets.splits import (
    kfold_indices,
    paper_coil_protocol,
    stratified_kfold_indices,
    stratified_labeled_split,
    transductive_splits,
)
from repro.datasets.io import (
    load_transductive_csv,
    load_transductive_npz,
    save_transductive_npz,
)
from repro.datasets.synthetic import (
    SyntheticDataset,
    make_regression_dataset,
    make_synthetic_dataset,
    model1_logit,
    model2_logit,
    sample_binary_responses,
    sigmoid,
    true_regression,
    truncated_mvn_inputs,
)
from repro.datasets.toy import (
    ConstantInputToy,
    concentric_circles,
    constant_input_toy,
    gaussian_blobs,
    swiss_roll,
    two_moons,
)

__all__ = [
    "SyntheticDataset",
    "make_synthetic_dataset",
    "make_regression_dataset",
    "load_transductive_csv",
    "load_transductive_npz",
    "save_transductive_npz",
    "truncated_mvn_inputs",
    "model1_logit",
    "model2_logit",
    "true_regression",
    "sample_binary_responses",
    "sigmoid",
    "CoilLikeDataset",
    "make_coil_like",
    "ConstantInputToy",
    "constant_input_toy",
    "two_moons",
    "concentric_circles",
    "gaussian_blobs",
    "swiss_roll",
    "kfold_indices",
    "stratified_kfold_indices",
    "stratified_labeled_split",
    "transductive_splits",
    "paper_coil_protocol",
]
