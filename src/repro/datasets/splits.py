"""Transductive split protocols (the paper's Section V-B schemes).

The COIL experiment varies the labeled/unlabeled ratio three ways:

* **80/20** — split into 5 folds; each fold in turn is the unlabeled/test
  set and the other four are labeled (so every sample is predicted once
  per repetition);
* **20/80** — 5 folds, but one fold is *labeled* and the other four are
  unlabeled;
* **10/90** — 10 folds, one labeled, nine unlabeled.

:func:`paper_coil_protocol` yields ``(labeled_idx, unlabeled_idx)`` pairs
implementing each setting, repeated ``repeats`` times with fresh fold
shuffles — the paper repeats 100 times, giving 500 experiments for the
first two settings and 1000 for the third.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.rng import as_rng

__all__ = [
    "kfold_indices",
    "stratified_kfold_indices",
    "stratified_labeled_split",
    "transductive_splits",
    "paper_coil_protocol",
    "COIL_SETTINGS",
]

#: The paper's three labeled-to-unlabeled settings: name -> (n_folds, labeled_folds).
COIL_SETTINGS = {
    "80/20": (5, 4),
    "20/80": (5, 1),
    "10/90": (10, 1),
}


def kfold_indices(n_samples: int, n_folds: int, seed=None) -> list[np.ndarray]:
    """Shuffle ``0..n_samples-1`` into ``n_folds`` nearly equal folds."""
    if n_folds < 2:
        raise ConfigurationError(f"n_folds must be >= 2, got {n_folds}")
    if n_samples < n_folds:
        raise DataValidationError(
            f"n_samples={n_samples} is smaller than n_folds={n_folds}"
        )
    rng = as_rng(seed)
    permuted = rng.permutation(n_samples)
    return [np.sort(fold) for fold in np.array_split(permuted, n_folds)]


def stratified_kfold_indices(labels, n_folds: int, seed=None) -> list[np.ndarray]:
    """K folds preserving class proportions.

    Each class's members are shuffled and dealt round-robin across
    folds, so every fold's class mix matches the full set's to within
    one sample per class.  Useful for the COIL protocol when class
    balance inside the labeled fold matters (small labeled fractions).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise DataValidationError("labels must be 1-d")
    n_samples = labels.shape[0]
    if n_folds < 2:
        raise ConfigurationError(f"n_folds must be >= 2, got {n_folds}")
    if n_samples < n_folds:
        raise DataValidationError(
            f"n_samples={n_samples} is smaller than n_folds={n_folds}"
        )
    rng = as_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    offset = 0
    for cls in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == cls))
        for position, index in enumerate(members):
            folds[(offset + position) % n_folds].append(int(index))
        offset += members.shape[0]
    return [np.sort(np.asarray(fold, dtype=np.intp)) for fold in folds]


def stratified_labeled_split(
    labels,
    labeled_fraction: float,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """One stratified (labeled_idx, unlabeled_idx) split.

    Guarantees at least one labeled sample per class (so reachable
    classes exist for propagation) while matching ``labeled_fraction``
    as closely as the class sizes allow.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] == 0:
        raise DataValidationError("labels must be a non-empty 1-d array")
    if not 0.0 < labeled_fraction < 1.0:
        raise ConfigurationError(
            f"labeled_fraction must be in (0, 1), got {labeled_fraction}"
        )
    rng = as_rng(seed)
    labeled: list[int] = []
    for cls in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == cls))
        count = max(1, int(round(labeled_fraction * members.shape[0])))
        count = min(count, members.shape[0])
        labeled.extend(int(i) for i in members[:count])
    labeled_idx = np.sort(np.asarray(labeled, dtype=np.intp))
    unlabeled_idx = np.setdiff1d(np.arange(labels.shape[0]), labeled_idx)
    if unlabeled_idx.size == 0:
        raise ConfigurationError(
            "labeled_fraction leaves no unlabeled samples; lower it"
        )
    return labeled_idx, unlabeled_idx


def transductive_splits(
    n_samples: int,
    *,
    n_folds: int,
    labeled_folds: int,
    seed=None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (labeled_idx, unlabeled_idx) over all rotations of one k-fold split.

    Each of the ``n_folds`` rotations takes a different contiguous block
    of ``labeled_folds`` folds (cyclically) as the labeled set, so that
    every fold appears in the unlabeled role the same number of times.
    """
    if not 1 <= labeled_folds < n_folds:
        raise ConfigurationError(
            f"labeled_folds must be in [1, n_folds); got {labeled_folds} of {n_folds}"
        )
    folds = kfold_indices(n_samples, n_folds, seed=seed)
    for rotation in range(n_folds):
        chosen = [(rotation + offset) % n_folds for offset in range(labeled_folds)]
        labeled = np.sort(np.concatenate([folds[i] for i in chosen]))
        remaining = [i for i in range(n_folds) if i not in chosen]
        unlabeled = np.sort(np.concatenate([folds[i] for i in remaining]))
        yield labeled, unlabeled


def paper_coil_protocol(
    n_samples: int,
    setting: str,
    *,
    repeats: int = 100,
    seed=None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """The paper's Section V-B protocol for one labeled-ratio setting.

    Parameters
    ----------
    n_samples:
        Dataset size (1500 for the paper's COIL variant).
    setting:
        ``"80/20"``, ``"20/80"`` or ``"10/90"``.
    repeats:
        Number of independent fold shuffles (paper: 100).  The total
        number of yielded experiments is ``repeats * n_folds``.
    seed:
        Master seed; each repeat gets an independent child stream.
    """
    if setting not in COIL_SETTINGS:
        known = ", ".join(sorted(COIL_SETTINGS))
        raise ConfigurationError(f"unknown setting {setting!r}; known: {known}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    n_folds, labeled_folds = COIL_SETTINGS[setting]
    rng = as_rng(seed)
    for _ in range(repeats):
        yield from transductive_splits(
            n_samples, n_folds=n_folds, labeled_folds=labeled_folds, seed=rng
        )
