"""Loading and saving transductive problems.

Downstream users bring their own partially-labeled data; these helpers
read the library's standard problem shape — feature columns plus a label
column where *missing entries mark the unlabeled rows* — from CSV and
NPZ files, and write it back.

CSV convention
--------------
One header row; every column except the label column is a float
feature.  The label column may contain empty cells (or a configurable
missing marker such as ``?``) for unlabeled rows.

NPZ convention
--------------
Arrays ``x_labeled``, ``y_labeled``, ``x_unlabeled`` (and optionally
``y_unlabeled`` for held-out evaluation labels).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_labels, check_matrix_2d

__all__ = [
    "TransductiveProblem",
    "load_transductive_csv",
    "load_transductive_npz",
    "save_transductive_npz",
]


@dataclass(frozen=True)
class TransductiveProblem:
    """A user-supplied transductive problem.

    Attributes
    ----------
    x_labeled, y_labeled:
        The labeled rows and their responses.
    x_unlabeled:
        Rows whose label cell was missing.
    y_unlabeled:
        Held-out evaluation labels for the unlabeled rows, when the
        source provided them (``None`` otherwise).
    feature_names:
        Column names, when the source had a header.
    """

    x_labeled: np.ndarray
    y_labeled: np.ndarray
    x_unlabeled: np.ndarray
    y_unlabeled: np.ndarray | None = None
    feature_names: tuple[str, ...] = ()

    @property
    def n_labeled(self) -> int:
        return self.x_labeled.shape[0]

    @property
    def n_unlabeled(self) -> int:
        return self.x_unlabeled.shape[0]

    @property
    def x_all(self) -> np.ndarray:
        return np.vstack([self.x_labeled, self.x_unlabeled])


def load_transductive_csv(
    path,
    *,
    label_column: str,
    missing_markers: tuple[str, ...] = ("", "?", "NA", "nan"),
) -> TransductiveProblem:
    """Read a transductive problem from a headed CSV file.

    Parameters
    ----------
    path:
        CSV file with a header row.
    label_column:
        Name of the label column; rows whose cell matches one of
        ``missing_markers`` (case-sensitive, stripped) become the
        unlabeled block.
    missing_markers:
        Cell values denoting "no label".
    """
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataValidationError(f"{path} is empty") from None
        if label_column not in header:
            raise DataValidationError(
                f"label column {label_column!r} not in header {header}"
            )
        label_pos = header.index(label_column)
        feature_names = tuple(
            name for i, name in enumerate(header) if i != label_pos
        )
        markers = set(missing_markers)

        labeled_rows: list[list[float]] = []
        labels: list[float] = []
        unlabeled_rows: list[list[float]] = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise DataValidationError(
                    f"{path}:{line_number}: expected {len(header)} cells, "
                    f"got {len(row)}"
                )
            label_cell = row[label_pos].strip()
            try:
                features = [
                    float(cell) for i, cell in enumerate(row) if i != label_pos
                ]
            except ValueError as exc:
                raise DataValidationError(
                    f"{path}:{line_number}: non-numeric feature: {exc}"
                ) from exc
            if label_cell in markers:
                unlabeled_rows.append(features)
            else:
                try:
                    labels.append(float(label_cell))
                except ValueError as exc:
                    raise DataValidationError(
                        f"{path}:{line_number}: non-numeric label "
                        f"{label_cell!r}"
                    ) from exc
                labeled_rows.append(features)

    if not labeled_rows:
        raise DataValidationError(f"{path} contains no labeled rows")
    if not unlabeled_rows:
        raise DataValidationError(
            f"{path} contains no unlabeled rows (no cells matched the "
            f"missing markers {sorted(markers)})"
        )
    return TransductiveProblem(
        x_labeled=np.asarray(labeled_rows, dtype=np.float64),
        y_labeled=np.asarray(labels, dtype=np.float64),
        x_unlabeled=np.asarray(unlabeled_rows, dtype=np.float64),
        feature_names=feature_names,
    )


def load_transductive_npz(path) -> TransductiveProblem:
    """Read a transductive problem from an NPZ archive."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such file: {path}")
    with np.load(path) as archive:
        required = ("x_labeled", "y_labeled", "x_unlabeled")
        missing = [key for key in required if key not in archive]
        if missing:
            raise DataValidationError(
                f"{path} is missing required arrays {missing}; "
                f"found {sorted(archive.files)}"
            )
        x_labeled = check_matrix_2d(archive["x_labeled"], "x_labeled")
        y_labeled = check_labels(
            archive["y_labeled"], x_labeled.shape[0], name="y_labeled"
        )
        x_unlabeled = check_matrix_2d(archive["x_unlabeled"], "x_unlabeled")
        if x_unlabeled.shape[1] != x_labeled.shape[1]:
            raise DataValidationError(
                f"x_labeled has {x_labeled.shape[1]} columns but "
                f"x_unlabeled has {x_unlabeled.shape[1]}"
            )
        y_unlabeled = None
        if "y_unlabeled" in archive:
            y_unlabeled = check_labels(
                archive["y_unlabeled"], x_unlabeled.shape[0], name="y_unlabeled"
            )
    return TransductiveProblem(
        x_labeled=x_labeled,
        y_labeled=y_labeled,
        x_unlabeled=x_unlabeled,
        y_unlabeled=y_unlabeled,
    )


def save_transductive_npz(path, problem: TransductiveProblem) -> Path:
    """Write a transductive problem to an NPZ archive; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        "x_labeled": problem.x_labeled,
        "y_labeled": problem.y_labeled,
        "x_unlabeled": problem.x_unlabeled,
    }
    if problem.y_unlabeled is not None:
        arrays["y_unlabeled"] = problem.y_unlabeled
    np.savez_compressed(path, **arrays)
    return path
