"""The paper's synthetic data-generating process (Section V-A).

Inputs are drawn from a *truncated* 5-dimensional multivariate normal:
``X~ ~ N(mu, Sigma)`` with ``mu = (0.5, ..., 0.5)`` and
``Sigma = 0.05 * (I + 1 1^T)`` (0.1 on the diagonal, 0.05 off-diagonal);
each coordinate is kept if it falls in ``[0, 1]`` and *set to zero*
otherwise — the paper's exact truncation rule (zeroing, not clipping),
which gives the density compact support as Theorem II.1 requires.

Responses are Bernoulli with logistic success probability:

* Model 1 (linear logit):
  ``logit q(X) = -1.35 + 2 X1 - X2 + X3 - X4 + 2 X5``;
* Model 2 (non-linear): Model 1 plus ``X1 X3 + X2 X4``.

:func:`make_synthetic_dataset` bundles a labeled/unlabeled draw together
with the *true* regression function values ``q(X)`` on both parts, which
is what the paper's RMSE metric compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix_2d

__all__ = [
    "DEFAULT_DIM",
    "truncated_mvn_inputs",
    "sigmoid",
    "model1_logit",
    "model2_logit",
    "true_regression",
    "sample_binary_responses",
    "SyntheticDataset",
    "make_synthetic_dataset",
    "make_regression_dataset",
]

#: The paper's input dimension ``p = 5``.
DEFAULT_DIM = 5

_MODEL1_COEFS = np.array([2.0, -1.0, 1.0, -1.0, 2.0])
_INTERCEPT = -1.35


def truncated_mvn_inputs(
    n_samples: int,
    *,
    dim: int = DEFAULT_DIM,
    mean: float = 0.5,
    variance: float = 0.1,
    covariance: float = 0.05,
    seed=None,
) -> np.ndarray:
    """Draw the paper's truncated multivariate-normal inputs.

    Coordinates outside ``[0, 1]`` are set to zero (the paper's rule),
    so the support is exactly ``[0, 1]^dim`` — compact, as the theorem
    assumes.
    """
    if n_samples < 1:
        raise DataValidationError(f"n_samples must be >= 1, got {n_samples}")
    if dim < 1:
        raise DataValidationError(f"dim must be >= 1, got {dim}")
    if variance <= 0 or abs(covariance) >= variance:
        raise ConfigurationError(
            f"need variance > 0 and |covariance| < variance for positive "
            f"definiteness; got variance={variance}, covariance={covariance}"
        )
    rng = as_rng(seed)
    cov = np.full((dim, dim), covariance)
    np.fill_diagonal(cov, variance)
    raw = rng.multivariate_normal(np.full(dim, mean), cov, size=n_samples)
    inside = (raw >= 0.0) & (raw <= 1.0)
    return np.where(inside, raw, 0.0)


def sigmoid(logits: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    logits = np.asarray(logits, dtype=np.float64)
    out = np.empty_like(logits)
    positive = logits >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-logits[positive]))
    exp_l = np.exp(logits[~positive])
    out[~positive] = exp_l / (1.0 + exp_l)
    return out


def _check_five_dim(x: np.ndarray, model: str) -> np.ndarray:
    x = check_matrix_2d(x, "x")
    if x.shape[1] != DEFAULT_DIM:
        raise DataValidationError(
            f"{model} is defined for {DEFAULT_DIM}-dimensional inputs, "
            f"got {x.shape[1]} columns"
        )
    return x


def model1_logit(x: np.ndarray) -> np.ndarray:
    """Model 1's linear logit: ``-1.35 + 2X1 - X2 + X3 - X4 + 2X5``."""
    x = _check_five_dim(x, "model 1")
    return _INTERCEPT + x @ _MODEL1_COEFS


def model2_logit(x: np.ndarray) -> np.ndarray:
    """Model 2's logit: Model 1 plus the interactions ``X1X3 + X2X4``."""
    x = _check_five_dim(x, "model 2")
    return model1_logit(x) + x[:, 0] * x[:, 2] + x[:, 1] * x[:, 3]


_LOGITS = {"model1": model1_logit, "model2": model2_logit}


def true_regression(x: np.ndarray, model: str = "model1") -> np.ndarray:
    """The true regression function ``q(X) = E[Y|X]`` under a model."""
    try:
        logit = _LOGITS[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {model!r}; known models: {sorted(_LOGITS)}"
        ) from None
    return sigmoid(logit(x))


def sample_binary_responses(q: np.ndarray, seed=None) -> np.ndarray:
    """Bernoulli responses with success probabilities ``q``."""
    q = np.asarray(q, dtype=np.float64)
    if q.size and (q.min() < 0 or q.max() > 1):
        raise DataValidationError("probabilities must lie in [0, 1]")
    rng = as_rng(seed)
    return (rng.random(q.shape) < q).astype(np.float64)


@dataclass(frozen=True)
class SyntheticDataset:
    """One draw of the paper's synthetic transductive problem.

    Attributes
    ----------
    x_labeled, y_labeled:
        The ``n`` labeled inputs and their Bernoulli responses.
    x_unlabeled:
        The ``m`` unlabeled inputs.
    q_labeled, q_unlabeled:
        True regression-function values ``q(X)`` (the RMSE target).
    y_unlabeled:
        Responses on the unlabeled points (hidden from the learner; kept
        for AUC-style evaluations).
    model:
        ``"model1"`` or ``"model2"``.
    """

    x_labeled: np.ndarray
    y_labeled: np.ndarray
    x_unlabeled: np.ndarray
    q_labeled: np.ndarray
    q_unlabeled: np.ndarray
    y_unlabeled: np.ndarray
    model: str

    @property
    def n_labeled(self) -> int:
        return self.x_labeled.shape[0]

    @property
    def n_unlabeled(self) -> int:
        return self.x_unlabeled.shape[0]

    @property
    def x_all(self) -> np.ndarray:
        """Labeled inputs stacked above unlabeled inputs."""
        return np.vstack([self.x_labeled, self.x_unlabeled])


def make_regression_dataset(
    n_labeled: int,
    n_unlabeled: int,
    *,
    model: str = "model1",
    noise_std: float = 0.1,
    seed=None,
) -> SyntheticDataset:
    """The paper's *regression case*: continuous bounded responses.

    Theorem II.1 covers continuous responses too (it only requires the
    ``Y_i`` bounded).  This generator keeps the same truncated-MVN inputs
    and regression function ``q(X) = sigmoid(logit(X))`` as the
    classification DGP but draws

        ``Y = q(X) + eps``,  ``eps ~ Uniform(-noise_std*sqrt(3), +...)``

    — bounded noise, so the theorem's assumption holds exactly.  The
    returned object reuses :class:`SyntheticDataset`; ``y_*`` are the
    continuous responses and ``q_*`` remain the regression targets.
    """
    if n_labeled < 1 or n_unlabeled < 0:
        raise DataValidationError(
            f"need n_labeled >= 1 and n_unlabeled >= 0, "
            f"got {n_labeled}, {n_unlabeled}"
        )
    if noise_std < 0:
        raise ConfigurationError(f"noise_std must be >= 0, got {noise_std}")
    rng = as_rng(seed)
    total = n_labeled + n_unlabeled
    x_all = truncated_mvn_inputs(total, seed=rng)
    q_all = true_regression(x_all, model)
    half_width = noise_std * np.sqrt(3.0)  # uniform with this std
    y_all = q_all + rng.uniform(-half_width, half_width, size=total)
    return SyntheticDataset(
        x_labeled=x_all[:n_labeled],
        y_labeled=y_all[:n_labeled],
        x_unlabeled=x_all[n_labeled:],
        q_labeled=q_all[:n_labeled],
        q_unlabeled=q_all[n_labeled:],
        y_unlabeled=y_all[n_labeled:],
        model=model,
    )


def make_synthetic_dataset(
    n_labeled: int,
    n_unlabeled: int,
    *,
    model: str = "model1",
    seed=None,
) -> SyntheticDataset:
    """Draw one labeled/unlabeled problem from the paper's Section V-A DGP."""
    if n_labeled < 1 or n_unlabeled < 0:
        raise DataValidationError(
            f"need n_labeled >= 1 and n_unlabeled >= 0, "
            f"got {n_labeled}, {n_unlabeled}"
        )
    rng = as_rng(seed)
    total = n_labeled + n_unlabeled
    x_all = truncated_mvn_inputs(total, seed=rng)
    q_all = true_regression(x_all, model)
    y_all = sample_binary_responses(q_all, seed=rng)
    return SyntheticDataset(
        x_labeled=x_all[:n_labeled],
        y_labeled=y_all[:n_labeled],
        x_unlabeled=x_all[n_labeled:],
        q_labeled=q_all[:n_labeled],
        q_unlabeled=q_all[n_labeled:],
        y_unlabeled=y_all[n_labeled:],
        model=model,
    )
