"""Toy datasets: the Section III constant-input example and SSL classics.

:func:`constant_input_toy` reproduces the paper's Section III geometry —
all inputs equal, so with an RBF kernel every weight is 1 and the hard
criterion's closed form is computable by hand: the labeled mean on every
unlabeled vertex.  The returned object carries that theoretical solution
together with the explicit ``(D22 - W22)^{-1}`` entries the paper writes
out, so tests can check both.

The rest are the classic manifold/cluster-assumption generators SSL
papers motivate with: two moons, concentric circles, Gaussian blobs, and
a 3-d swiss roll.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.rng import as_rng

__all__ = [
    "ConstantInputToy",
    "constant_input_toy",
    "two_moons",
    "concentric_circles",
    "gaussian_blobs",
    "swiss_roll",
]


@dataclass(frozen=True)
class ConstantInputToy:
    """Section III's toy problem and its hand-derived solution.

    Attributes
    ----------
    x_all:
        ``(n+m, d)`` inputs, all rows identical.
    y_labeled:
        The ``n`` observed responses.
    expected_unlabeled_score:
        The paper's closed form: ``mean(y_labeled)`` at every unlabeled
        vertex.
    expected_inverse_diagonal, expected_inverse_off_diagonal:
        The entries of ``(D22 - W22)^{-1}`` the paper derives:
        ``(n+1)/(n(m+n))`` on the diagonal and ``1/(n(m+n))`` off it.
    """

    x_all: np.ndarray
    y_labeled: np.ndarray
    n_labeled: int
    expected_unlabeled_score: float
    expected_inverse_diagonal: float
    expected_inverse_off_diagonal: float


def constant_input_toy(
    n_labeled: int,
    n_unlabeled: int,
    *,
    dim: int = 2,
    value: float = 0.3,
    response_std: float = 1.0,
    response_mean: float = 0.0,
    seed=None,
) -> ConstantInputToy:
    """Build Section III's constant-input problem with Gaussian responses."""
    if n_labeled < 1 or n_unlabeled < 1:
        raise DataValidationError(
            f"need n_labeled >= 1 and n_unlabeled >= 1, "
            f"got {n_labeled}, {n_unlabeled}"
        )
    rng = as_rng(seed)
    total = n_labeled + n_unlabeled
    x_all = np.full((total, dim), float(value))
    y_labeled = rng.normal(response_mean, response_std, size=n_labeled)
    denom = n_labeled * (n_labeled + n_unlabeled)
    return ConstantInputToy(
        x_all=x_all,
        y_labeled=y_labeled,
        n_labeled=n_labeled,
        expected_unlabeled_score=float(np.mean(y_labeled)),
        expected_inverse_diagonal=(n_labeled + 1) / denom,
        expected_inverse_off_diagonal=1.0 / denom,
    )


def _check_counts(n_samples: int, minimum: int = 2) -> None:
    if n_samples < minimum:
        raise DataValidationError(f"n_samples must be >= {minimum}, got {n_samples}")


def two_moons(n_samples: int, *, noise: float = 0.1, seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-circles; returns ``(x, y)`` with y in {0, 1}."""
    _check_counts(n_samples)
    rng = as_rng(seed)
    n_upper = n_samples // 2
    n_lower = n_samples - n_upper
    theta_upper = rng.uniform(0.0, np.pi, n_upper)
    theta_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.column_stack([np.cos(theta_upper), np.sin(theta_upper)])
    lower = np.column_stack([1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)])
    x = np.vstack([upper, lower])
    if noise > 0:
        x = x + rng.normal(0.0, noise, size=x.shape)
    y = np.concatenate([np.zeros(n_upper), np.ones(n_lower)])
    order = rng.permutation(n_samples)
    return x[order], y[order]


def concentric_circles(
    n_samples: int, *, radii: tuple[float, float] = (1.0, 2.0), noise: float = 0.1, seed=None
) -> tuple[np.ndarray, np.ndarray]:
    """Two concentric circles; returns ``(x, y)`` with y in {0, 1}."""
    _check_counts(n_samples)
    if radii[0] <= 0 or radii[1] <= radii[0]:
        raise DataValidationError(f"need 0 < radii[0] < radii[1], got {radii}")
    rng = as_rng(seed)
    n_inner = n_samples // 2
    n_outer = n_samples - n_inner
    points = []
    for count, radius in ((n_inner, radii[0]), (n_outer, radii[1])):
        theta = rng.uniform(0.0, 2.0 * np.pi, count)
        points.append(radius * np.column_stack([np.cos(theta), np.sin(theta)]))
    x = np.vstack(points)
    if noise > 0:
        x = x + rng.normal(0.0, noise, size=x.shape)
    y = np.concatenate([np.zeros(n_inner), np.ones(n_outer)])
    order = rng.permutation(n_samples)
    return x[order], y[order]


def gaussian_blobs(
    n_samples: int,
    *,
    centers: np.ndarray | None = None,
    std: float = 0.5,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian clusters; returns ``(x, y)`` with integer labels."""
    _check_counts(n_samples)
    rng = as_rng(seed)
    if centers is None:
        centers = np.array([[0.0, 0.0], [3.0, 0.0], [1.5, 2.5]])
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2:
        raise DataValidationError("centers must be a 2-d array of cluster centers")
    n_clusters = centers.shape[0]
    assignments = rng.integers(0, n_clusters, size=n_samples)
    x = centers[assignments] + rng.normal(0.0, std, size=(n_samples, centers.shape[1]))
    return x, assignments.astype(np.float64)


def swiss_roll(n_samples: int, *, noise: float = 0.05, seed=None) -> tuple[np.ndarray, np.ndarray]:
    """3-d swiss roll; returns ``(x, t)`` where t is the manifold coordinate.

    Useful for regression experiments on the low-dimensional-manifold
    assumption: the target is the unrolled coordinate ``t``.
    """
    _check_counts(n_samples)
    rng = as_rng(seed)
    t = rng.uniform(1.5 * np.pi, 4.5 * np.pi, n_samples)
    height = rng.uniform(0.0, 10.0, n_samples)
    x = np.column_stack([t * np.cos(t), height, t * np.sin(t)])
    if noise > 0:
        x = x + rng.normal(0.0, noise, size=x.shape)
    return x, t
