"""Property-based tests for the neighbor-based (kd-tree) graph routes.

The dense route is the reference implementation; these properties pin the
densification-free route to it on random point clouds:

* symmetry and non-negativity of the assembled CSR,
* nnz within the combinatorial bound of the symmetrization mode,
* exact (floating-point) weight agreement with the dense construction.

Point clouds are generated from a hypothesis-drawn RNG seed rather than
hypothesis float arrays: the adversarial duplicate/subnormal values those
produce create exact distance ties, where *any* k-nearest-neighbour
definition is ambiguous and the two routes may legitimately differ.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.similarity import epsilon_graph, knn_graph


@st.composite
def clouds(draw, min_points=8, max_points=32):
    n = draw(st.integers(min_points, max_points))
    dim = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(-2.0, 2.0, size=(n, dim))


def _dense(graph) -> np.ndarray:
    return graph.dense_weights()


class TestKnnNeighborProperties:
    @given(x=clouds(), k=st.integers(1, 6), mode=st.sampled_from(["union", "intersection"]))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_nonnegative(self, x, k, mode):
        k = min(k, x.shape[0] - 1)
        graph = knn_graph(x, k=k, bandwidth=1.0, mode=mode, construction="neighbors")
        assert graph.is_sparse
        w = graph.weights
        asym = abs(w - w.T)
        assert asym.nnz == 0 or asym.data.max() == 0.0
        assert w.data.min() >= 0.0

    @given(x=clouds(), k=st.integers(1, 6), mode=st.sampled_from(["union", "intersection"]))
    @settings(max_examples=60, deadline=None)
    def test_nnz_bound(self, x, k, mode):
        n = x.shape[0]
        k = min(k, n - 1)
        graph = knn_graph(x, k=k, bandwidth=1.0, mode=mode, construction="neighbors")
        directed_cap = n * k if mode == "intersection" else 2 * n * k
        assert graph.weights.nnz <= n + directed_cap

    @given(x=clouds(), k=st.integers(1, 6), mode=st.sampled_from(["union", "intersection"]))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_dense_construction(self, x, k, mode):
        k = min(k, x.shape[0] - 1)
        dense_route = _dense(
            knn_graph(x, k=k, bandwidth=1.0, mode=mode, construction="dense")
        )
        neighbor_route = _dense(
            knn_graph(x, k=k, bandwidth=1.0, mode=mode, construction="neighbors")
        )
        np.testing.assert_array_equal(dense_route > 0, neighbor_route > 0)
        np.testing.assert_allclose(neighbor_route, dense_route, atol=1e-7)

    @given(x=clouds(), k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_intersection_pattern_subset_of_union(self, x, k):
        k = min(k, x.shape[0] - 1)
        union = _dense(knn_graph(x, k=k, bandwidth=1.0, mode="union", construction="neighbors"))
        inter = _dense(
            knn_graph(x, k=k, bandwidth=1.0, mode="intersection", construction="neighbors")
        )
        assert np.all((inter > 0) <= (union > 0))

    @given(x=clouds(), k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_union_degree_at_least_k(self, x, k):
        """Union symmetrization never drops a vertex's own k selections."""
        k = min(k, x.shape[0] - 1)
        graph = knn_graph(x, k=k, bandwidth=1.0, mode="union", construction="neighbors")
        offdiag = graph.weights.copy().tolil()
        offdiag.setdiag(0.0)
        neighbours_per_vertex = (offdiag.tocsr() != 0).sum(axis=1)
        assert np.all(np.asarray(neighbours_per_vertex).ravel() >= k)


class TestEpsilonNeighborProperties:
    @given(x=clouds(), radius=st.floats(0.2, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_nonnegative(self, x, radius):
        graph = epsilon_graph(x, radius=radius, bandwidth=1.0, construction="neighbors")
        w = graph.weights
        asym = abs(w - w.T)
        assert asym.nnz == 0 or asym.data.max() == 0.0
        assert w.data.min() >= 0.0

    @given(x=clouds(), radius=st.floats(0.2, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_dense_construction(self, x, radius):
        dense_route = _dense(
            epsilon_graph(x, radius=radius, bandwidth=1.0, construction="dense")
        )
        neighbor_route = _dense(
            epsilon_graph(x, radius=radius, bandwidth=1.0, construction="neighbors")
        )
        np.testing.assert_array_equal(dense_route > 0, neighbor_route > 0)
        np.testing.assert_allclose(neighbor_route, dense_route, atol=1e-7)

    @given(x=clouds(), radius=st.floats(0.2, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_edges_within_radius(self, x, radius):
        graph = epsilon_graph(x, radius=radius, bandwidth=1.0, construction="neighbors")
        coo = graph.weights.tocoo()
        off = coo.row != coo.col
        dists = np.linalg.norm(x[coo.row[off]] - x[coo.col[off]], axis=1)
        assert dists.size == 0 or dists.max() <= radius * (1 + 1e-12)

    @given(x=clouds())
    @settings(max_examples=30, deadline=None)
    def test_nnz_bounded_by_pair_count(self, x):
        n = x.shape[0]
        graph = epsilon_graph(x, radius=1.0, bandwidth=1.0, construction="neighbors")
        assert graph.weights.nnz <= n * n
