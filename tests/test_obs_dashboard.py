"""``repro obs top``: frame rendering and the tail-refresh loop.

:func:`render_top` is pure (events + metrics in, one frame out), so most
coverage is direct string assertions; :func:`run_top` is driven with
``max_refreshes`` against real files on disk — including a file that
appears *between* refreshes, the "point it at the paths before the run
starts" contract.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs.dashboard import (
    read_metrics_dump,
    read_progress_events,
    render_top,
    run_top,
)
from repro.obs.metrics import MetricsRegistry


def progress_events(*, ended=True) -> list[dict]:
    events = [
        {"type": "start", "task": "serve-eval", "total": 4, "completed": 0,
         "elapsed_s": 0.0, "eta_s": None},
        {"type": "replicate", "task": "serve-eval", "total": 4, "completed": 2,
         "elapsed_s": 1.0, "eta_s": 1.0, "index": 2, "status": "ok"},
    ]
    if ended:
        events.append(
            {"type": "end", "task": "serve-eval", "total": 4, "completed": 4,
             "elapsed_s": 2.0, "status": "complete"}
        )
    return events


def serving_metrics() -> dict:
    reg = MetricsRegistry()
    reg.log_histogram("serving.request.latency_s").observe_many(
        np.full(50, 0.002)
    )
    reg.log_histogram("serving.request.queue_wait_s").observe_many(
        np.full(50, 0.0004)
    )
    reg.counter("serving.request.outcome.ok").inc(49)
    reg.counter("serving.request.outcome.error").inc(1)
    reg.gauge("serving.request.throughput_qps").set(880.0)
    reg.counter("serving.drift.observed").inc(50)
    reg.counter("serving.drift.flagged").inc(3)
    reg.gauge("serving.drift.flag_fraction").set(0.06)
    reg.gauge("serving.drift.nystrom_margin_min").set(0.42)
    return reg.snapshot()


def write_jsonl(path, events) -> None:
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


class TestRenderTop:
    def test_waiting_frame_when_no_stream(self):
        frame = render_top(None, progress_path="run.jsonl")
        assert "waiting for progress stream" in frame
        assert "run.jsonl" in frame

    def test_running_task_shows_bar_pct_rate_eta(self):
        frame = render_top(progress_events(ended=False))
        assert "serve-eval" in frame
        assert "2/4" in frame
        assert "50.0%" in frame
        assert "2.00/s" in frame
        assert "eta 1.0s" in frame
        assert "[" in frame and "#" in frame

    def test_ended_task_shows_status_not_eta(self):
        frame = render_top(progress_events(ended=True))
        assert "complete" in frame
        assert "eta" not in frame

    def test_serving_panel(self):
        frame = render_top(progress_events(), serving_metrics())
        assert "880 q/s" in frame
        # 2ms lands on the sketch's bucket representative (alpha=5%)
        assert "p50 1.92ms" in frame
        assert "49 ok, 1 error (2.00% errors)" in frame
        assert "6.00% flagged (3/50)" in frame
        assert "nystrom margin min +0.420" in frame

    def test_no_serving_metrics_no_panel(self):
        reg = MetricsRegistry()
        reg.counter("unrelated").inc()
        frame = render_top(progress_events(), reg.snapshot())
        assert "serving" not in frame

    def test_waiting_for_metrics_dump(self):
        frame = render_top(progress_events(), None, metrics_path="m.json")
        assert "waiting for metrics dump at m.json" in frame


class TestFileReaders:
    def test_missing_progress_file_is_none(self, tmp_path):
        assert read_progress_events(tmp_path / "absent.jsonl") is None

    def test_partial_trailing_line_tolerated_silently(self, tmp_path, recwarn):
        path = tmp_path / "p.jsonl"
        path.write_text(
            json.dumps(progress_events()[0]) + "\n" + '{"type": "repl'
        )
        events = read_progress_events(path)
        assert len(events) == 1
        assert not recwarn.list  # PartialArtifactWarning suppressed

    def test_missing_or_invalid_metrics_dump_is_none(self, tmp_path):
        assert read_metrics_dump(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_metrics_dump(bad) is None

    def test_metrics_dump_reads_metrics_object(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"metrics": serving_metrics()}))
        assert "serving.request.throughput_qps" in read_metrics_dump(path)


class TestRunTop:
    def test_exits_zero_when_all_tasks_ended(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_jsonl(path, progress_events(ended=True))
        stream = io.StringIO()
        code = run_top(path, interval=0.0, stream=stream)
        assert code == 0
        assert "complete" in stream.getvalue()

    def test_max_refreshes_bounds_a_live_run(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_jsonl(path, progress_events(ended=False))
        stream = io.StringIO()
        code = run_top(path, interval=0.0, max_refreshes=3, stream=stream)
        assert code == 0
        assert stream.getvalue().count("repro obs top") == 3

    def test_waits_for_file_to_appear(self, tmp_path):
        path = tmp_path / "late.jsonl"
        stream = io.StringIO()
        code = run_top(path, interval=0.0, max_refreshes=2, stream=stream)
        assert code == 0
        assert "waiting for progress stream" in stream.getvalue()

    def test_clear_codes_only_when_requested(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_jsonl(path, progress_events(ended=True))
        plain, cleared = io.StringIO(), io.StringIO()
        run_top(path, interval=0.0, stream=plain, clear=False)
        run_top(path, interval=0.0, stream=cleared, clear=True)
        assert "\x1b[2J" not in plain.getvalue()
        assert "\x1b[2J" in cleared.getvalue()


class TestCliVerb:
    def test_obs_top_renders_and_exits(self, tmp_path, capsys):
        progress = tmp_path / "p.jsonl"
        write_jsonl(progress, progress_events(ended=True))
        dump = tmp_path / "m.json"
        dump.write_text(json.dumps({"metrics": serving_metrics()}))
        code = main(
            [
                "obs", "top", str(progress),
                "--metrics-dump", str(dump),
                "--interval", "0",
                "--refreshes", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-eval" in out
        assert "880 q/s" in out


def workspace_metrics() -> dict:
    reg = MetricsRegistry()
    reg.counter("workspace.path.matrix_free.float32").inc()
    reg.counter("workspace.solves").inc(20)
    reg.counter("workspace.multigrid_solves").inc(20)
    reg.counter("workspace.factor.hits").inc(3)
    reg.counter("workspace.factor.misses").inc(1)
    return reg.snapshot()


class TestWorkspacePanel:
    def test_panel_shows_solve_path_and_counts(self):
        frame = render_top(progress_events(), workspace_metrics())
        assert "workspace" in frame
        assert "matrix_free / float32" in frame
        assert "solves          20 (20 multigrid)" in frame
        assert "3 hit / 1 miss (75%)" in frame

    def test_no_workspace_metrics_no_panel(self):
        frame = render_top(progress_events(), serving_metrics())
        assert "workspace" not in frame

    def test_live_workspace_metrics_round_trip(self, tmp_path):
        # a real multigrid sweep's dump, through the file reader
        import scipy.sparse as sparse

        from repro.linalg.workspace import SolveWorkspace
        from repro.obs.export import dump_metrics_json
        from repro.obs.metrics import use_registry

        rng = np.random.default_rng(3)
        x = rng.normal(size=(120, 2))
        diffs = x[:, None, :] - x[None, :, :]
        weights = np.exp(-(diffs**2).sum(axis=2))
        np.fill_diagonal(weights, 0.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            ws = SolveWorkspace(
                sparse.csr_matrix(weights),
                backend="multigrid",
                hierarchy_mode="matrix_free",
                dtype_policy="float32",
            )
            ws.sweep_soft(np.sign(x[:40, 0]), [0.1, 1.0])
        dump = dump_metrics_json(registry, tmp_path / "m.json")
        metrics = read_metrics_dump(dump)
        frame = render_top(progress_events(), metrics)
        assert "matrix_free / float32" in frame
