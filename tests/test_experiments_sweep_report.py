"""Unit tests for SweepResult and the reporting helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report import ascii_table, format_sweep_result, write_csv
from repro.experiments.sweep import SweepResult


@pytest.fixture
def sweep():
    return SweepResult(
        name="demo",
        x_label="n",
        x_values=(10, 20, 30),
        series_labels=("hard", "soft"),
        means=np.array([[0.3, 0.2, 0.1], [0.4, 0.35, 0.3]]),
        stds=np.zeros((2, 3)),
        sems=np.zeros((2, 3)),
        metric="rmse",
        n_replicates=5,
        meta={"model": "model1"},
    )


class TestSweepResult:
    def test_series_lookup(self, sweep):
        np.testing.assert_array_equal(sweep.series("hard"), [0.3, 0.2, 0.1])

    def test_unknown_series_raises(self, sweep):
        with pytest.raises(ConfigurationError, match="unknown series"):
            sweep.series("medium")

    def test_rows_and_headers_align(self, sweep):
        rows = sweep.to_rows()
        headers = sweep.headers()
        assert headers == ["n", "hard", "soft"]
        assert rows[0] == [10, 0.3, 0.4]
        assert len(rows) == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="shape"):
            SweepResult(
                name="bad",
                x_label="n",
                x_values=(1, 2),
                series_labels=("a",),
                means=np.zeros((2, 2)),
                stds=np.zeros((1, 2)),
                sems=np.zeros((1, 2)),
                metric="rmse",
                n_replicates=1,
            )

    def test_dominates_smaller_is_better(self, sweep):
        assert sweep.series_dominates("hard", "soft")
        assert not sweep.series_dominates("soft", "hard")

    def test_dominates_with_slack(self, sweep):
        assert sweep.series_dominates("soft", "hard", slack=0.5)

    def test_dominates_larger_is_better(self, sweep):
        assert sweep.series_dominates("soft", "hard", larger_is_better=True)

    def test_trend_sign(self, sweep):
        assert sweep.series_trend("hard") < 0
        rising = SweepResult(
            name="up",
            x_label="m",
            x_values=(1, 2, 3),
            series_labels=("s",),
            means=np.array([[0.1, 0.2, 0.4]]),
            stds=np.zeros((1, 3)),
            sems=np.zeros((1, 3)),
            metric="rmse",
            n_replicates=1,
        )
        assert rising.series_trend("s") > 0


class TestAsciiTable:
    def test_alignment_and_separator(self):
        table = ascii_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1].replace(" ", "")) == {"-"}
        # Fixed-width layout: every line has the same length.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        table = ascii_table(["x"], [[0.123456]])
        assert "0.1235" in table

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError, match="cells"):
            ascii_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ConfigurationError):
            ascii_table([], [])


class TestFormatAndCsv:
    def test_format_contains_title_meta_and_data(self, sweep):
        text = format_sweep_result(sweep)
        assert "demo" in text
        assert "RMSE" in text
        assert "model=model1" in text
        assert "0.3000" in text

    def test_write_csv_roundtrip(self, sweep, tmp_path):
        path = write_csv(tmp_path / "out" / "demo.csv", sweep.headers(), sweep.to_rows())
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "n,hard,soft"
        assert len(lines) == 4
        assert lines[1].startswith("10,0.3")
