"""Unit tests for the paper's synthetic data-generating process."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_synthetic_dataset,
    model1_logit,
    model2_logit,
    sample_binary_responses,
    sigmoid,
    true_regression,
    truncated_mvn_inputs,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestTruncatedInputs:
    def test_support_is_unit_cube(self):
        x = truncated_mvn_inputs(5000, seed=0)
        assert x.min() >= 0.0
        assert x.max() <= 1.0

    def test_shape_and_dim(self):
        x = truncated_mvn_inputs(10, dim=3, seed=0)
        assert x.shape == (10, 3)

    def test_truncation_zeroes_not_clips(self):
        """Out-of-range draws must be set to 0, not clipped to the edge.

        With variance 0.1 around 0.5 a noticeable mass exceeds 1; clipping
        would pile it at 1.0, zeroing piles it at 0.0.  An atom at exactly
        1.0 would reveal clipping.
        """
        x = truncated_mvn_inputs(20_000, seed=1)
        assert np.sum(x == 1.0) == 0
        assert np.sum(x == 0.0) > 100  # both tails mapped to zero

    def test_interior_moments(self):
        """Mean is close to 0.5 (mild truncation) and correlations positive."""
        x = truncated_mvn_inputs(50_000, seed=2)
        assert abs(x.mean() - 0.5) < 0.08
        corr = np.corrcoef(x.T)
        off_diag = corr[np.triu_indices(5, k=1)]
        assert np.all(off_diag > 0.1)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            truncated_mvn_inputs(10, seed=3), truncated_mvn_inputs(10, seed=3)
        )

    def test_invalid_covariance_raises(self):
        with pytest.raises(ConfigurationError):
            truncated_mvn_inputs(10, variance=0.1, covariance=0.2)

    def test_invalid_counts_raise(self):
        with pytest.raises(DataValidationError):
            truncated_mvn_inputs(0)


class TestLogits:
    def test_model1_hand_computed(self):
        x = np.array([[1.0, 1.0, 1.0, 1.0, 1.0]])
        # -1.35 + 2 - 1 + 1 - 1 + 2 = 1.65
        assert model1_logit(x)[0] == pytest.approx(1.65)

    def test_model2_adds_interactions(self):
        x = np.array([[0.5, 0.5, 0.5, 0.5, 0.5]])
        assert model2_logit(x)[0] == pytest.approx(model1_logit(x)[0] + 0.25 + 0.25)

    def test_zero_input(self):
        x = np.zeros((1, 5))
        assert model1_logit(x)[0] == pytest.approx(-1.35)
        assert model2_logit(x)[0] == pytest.approx(-1.35)

    def test_wrong_dim_raises(self):
        with pytest.raises(DataValidationError, match="5-dimensional"):
            model1_logit(np.zeros((2, 3)))


class TestSigmoidAndRegression:
    def test_sigmoid_symmetry(self):
        z = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), np.ones(5), atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == 0.0
        assert out[1] == 1.0

    def test_true_regression_in_unit_interval(self):
        x = truncated_mvn_inputs(100, seed=0)
        for model in ("model1", "model2"):
            q = true_regression(x, model)
            assert q.min() >= 0.0 and q.max() <= 1.0

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            true_regression(np.zeros((1, 5)), "model3")


class TestResponses:
    def test_respects_probabilities(self):
        rng_q = np.full(100_000, 0.3)
        y = sample_binary_responses(rng_q, seed=0)
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert abs(y.mean() - 0.3) < 0.01

    def test_deterministic_extremes(self):
        y = sample_binary_responses(np.array([0.0, 1.0]), seed=0)
        np.testing.assert_array_equal(y, [0.0, 1.0])

    def test_invalid_probabilities_raise(self):
        with pytest.raises(DataValidationError):
            sample_binary_responses(np.array([1.5]))


class TestMakeDataset:
    def test_shapes_consistent(self):
        data = make_synthetic_dataset(50, 20, seed=0)
        assert data.x_labeled.shape == (50, 5)
        assert data.x_unlabeled.shape == (20, 5)
        assert data.y_labeled.shape == (50,)
        assert data.q_unlabeled.shape == (20,)
        assert data.x_all.shape == (70, 5)
        assert data.n_labeled == 50
        assert data.n_unlabeled == 20

    def test_q_matches_inputs(self):
        data = make_synthetic_dataset(30, 10, model="model2", seed=1)
        np.testing.assert_allclose(
            data.q_unlabeled, true_regression(data.x_unlabeled, "model2")
        )

    def test_labels_binary(self):
        data = make_synthetic_dataset(100, 5, seed=2)
        assert set(np.unique(data.y_labeled)) <= {0.0, 1.0}
        assert set(np.unique(data.y_unlabeled)) <= {0.0, 1.0}

    def test_reproducible(self):
        a = make_synthetic_dataset(20, 5, seed=7)
        b = make_synthetic_dataset(20, 5, seed=7)
        np.testing.assert_array_equal(a.x_all, b.x_all)
        np.testing.assert_array_equal(a.y_labeled, b.y_labeled)

    def test_zero_unlabeled_allowed(self):
        data = make_synthetic_dataset(10, 0, seed=0)
        assert data.n_unlabeled == 0

    def test_invalid_sizes_raise(self):
        with pytest.raises(DataValidationError):
            make_synthetic_dataset(0, 5)
