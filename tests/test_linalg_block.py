"""Unit tests for repro.linalg.block (the paper's inversion formula)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, SingularSystemError
from repro.linalg.block import BlockMatrix, block_inverse, schur_complement


def _random_invertible(rng, n):
    """Random well-conditioned matrix: A + n*I with A ~ N(0,1)."""
    return rng.normal(size=(n, n)) + n * np.eye(n)


class TestPartition:
    def test_roundtrip(self, rng):
        m = rng.normal(size=(7, 7))
        blocks = BlockMatrix.partition(m, 3)
        np.testing.assert_array_equal(blocks.assemble(), m)
        assert blocks.a11.shape == (3, 3)
        assert blocks.a12.shape == (3, 4)
        assert blocks.a21.shape == (4, 3)
        assert blocks.a22.shape == (4, 4)

    def test_edge_partitions(self, rng):
        m = rng.normal(size=(4, 4))
        zero = BlockMatrix.partition(m, 0)
        assert zero.a11.shape == (0, 0)
        np.testing.assert_array_equal(zero.assemble(), m)
        full = BlockMatrix.partition(m, 4)
        assert full.a22.shape == (0, 0)
        np.testing.assert_array_equal(full.assemble(), m)

    def test_invalid_split_raises(self, rng):
        with pytest.raises(DataValidationError):
            BlockMatrix.partition(rng.normal(size=(4, 4)), 5)

    def test_non_square_raises(self, rng):
        with pytest.raises(DataValidationError):
            BlockMatrix.partition(rng.normal(size=(3, 4)), 2)


class TestSchurComplement:
    def test_both_complements(self, rng):
        m = _random_invertible(rng, 6)
        blocks = BlockMatrix.partition(m, 2)
        s22 = schur_complement(blocks, "a22")
        expected = blocks.a11 - blocks.a12 @ np.linalg.solve(blocks.a22, blocks.a21)
        np.testing.assert_allclose(s22, expected, atol=1e-10)
        s11 = schur_complement(blocks, "a11")
        expected = blocks.a22 - blocks.a21 @ np.linalg.solve(blocks.a11, blocks.a12)
        np.testing.assert_allclose(s11, expected, atol=1e-10)

    def test_determinant_factorization(self, rng):
        """det(A) = det(A22) det(A11 - A12 A22^{-1} A21)."""
        m = _random_invertible(rng, 5)
        blocks = BlockMatrix.partition(m, 2)
        lhs = np.linalg.det(m)
        rhs = np.linalg.det(blocks.a22) * np.linalg.det(schur_complement(blocks, "a22"))
        assert lhs == pytest.approx(rhs, rel=1e-8)

    def test_empty_block_passthrough(self, rng):
        m = _random_invertible(rng, 4)
        blocks = BlockMatrix.partition(m, 4)
        np.testing.assert_array_equal(schur_complement(blocks, "a22"), blocks.a11)

    def test_singular_block_raises(self):
        m = np.array(
            [
                [1.0, 0.0, 1.0],
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
            ]
        )
        blocks = BlockMatrix.partition(m, 2)
        # a22 = [[0]] is singular.
        with pytest.raises(SingularSystemError):
            schur_complement(blocks, "a22")

    def test_invalid_eliminate_raises(self, rng):
        blocks = BlockMatrix.partition(_random_invertible(rng, 4), 2)
        with pytest.raises(DataValidationError):
            schur_complement(blocks, "a12")


class TestBlockInverse:
    @pytest.mark.parametrize("n,split", [(4, 2), (6, 1), (6, 5), (9, 4)])
    def test_matches_numpy_inverse(self, rng, n, split):
        m = _random_invertible(rng, n)
        blocks = BlockMatrix.partition(m, split)
        inverse = block_inverse(blocks).assemble()
        np.testing.assert_allclose(inverse, np.linalg.inv(m), atol=1e-8)

    def test_symmetric_input_symmetric_inverse(self, rng):
        a = rng.normal(size=(5, 5))
        m = a @ a.T + 5 * np.eye(5)
        inverse = block_inverse(BlockMatrix.partition(m, 2)).assemble()
        np.testing.assert_allclose(inverse, inverse.T, atol=1e-9)

    def test_identity_blocks(self):
        blocks = BlockMatrix.partition(np.eye(5), 2)
        np.testing.assert_allclose(block_inverse(blocks).assemble(), np.eye(5), atol=1e-12)

    def test_singular_raises_library_error(self):
        m = np.ones((4, 4))  # rank 1
        with pytest.raises(SingularSystemError):
            block_inverse(BlockMatrix.partition(m, 2))
