"""Unit tests for the soft criterion (Eq. 2/3/4)."""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.soft import (
    soft_criterion_objective,
    soft_lambda_infinity_limit,
    solve_soft_criterion,
)
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    DisconnectedGraphError,
)


class TestStationarity:
    def test_full_solves_stationarity_system(self, small_problem):
        """(V + lam L) f = (y; 0) holds for the returned scores."""
        data, weights, _ = small_problem
        lam = 0.3
        n = data.n_labeled
        fit = solve_soft_criterion(weights, data.y_labeled, lam, method="full")
        degrees = weights.sum(axis=1)
        lap = np.diag(degrees) - weights
        system = lam * lap
        system[np.arange(n), np.arange(n)] += 1.0
        rhs = np.zeros(weights.shape[0])
        rhs[:n] = data.y_labeled
        np.testing.assert_allclose(system @ fit.scores, rhs, atol=1e-8)

    def test_schur_matches_full(self, small_problem):
        data, weights, _ = small_problem
        for lam in (0.01, 0.1, 1.0, 5.0):
            full = solve_soft_criterion(weights, data.y_labeled, lam, method="full")
            schur = solve_soft_criterion(weights, data.y_labeled, lam, method="schur")
            np.testing.assert_allclose(schur.scores, full.scores, atol=1e-8)

    def test_matches_eq4_bruteforce(self, small_problem):
        """The schur path equals a literal transcription of Eq. (4)."""
        data, weights, _ = small_problem
        n = data.n_labeled
        lam = 0.2
        degrees = weights.sum(axis=1)
        d11 = np.diag(degrees[:n])
        d22 = np.diag(degrees[n:])
        w11, w12 = weights[:n, :n], weights[:n, n:]
        w21, w22 = weights[n:, :n], weights[n:, n:]
        inner = np.eye(n) + lam * d11 - lam * w11
        inner_inv = np.linalg.inv(inner)
        system = d22 - w22 - lam * (w21 @ inner_inv @ w12)
        expected = np.linalg.solve(system, w21 @ inner_inv @ data.y_labeled)
        fit = solve_soft_criterion(weights, data.y_labeled, lam, method="schur")
        np.testing.assert_allclose(fit.unlabeled_scores, expected, atol=1e-9)

    def test_is_minimizer_of_objective(self, small_problem, rng):
        """Random perturbations never decrease Eq. (2)'s objective."""
        data, weights, _ = small_problem
        lam = 0.5
        fit = solve_soft_criterion(weights, data.y_labeled, lam)
        base = soft_criterion_objective(weights, data.y_labeled, fit.scores, lam)
        for _ in range(10):
            perturbed = fit.scores + 0.05 * rng.normal(size=fit.scores.shape)
            value = soft_criterion_objective(weights, data.y_labeled, perturbed, lam)
            assert value >= base - 1e-9


class TestProposition21:
    """Proposition II.1: lam -> 0 recovers the hard criterion."""

    def test_lam_zero_delegates_to_hard(self, small_problem):
        data, weights, _ = small_problem
        soft = solve_soft_criterion(weights, data.y_labeled, 0.0)
        hard = solve_hard_criterion(weights, data.y_labeled)
        np.testing.assert_allclose(soft.scores, hard.scores, atol=1e-12)
        assert soft.criterion == "soft"

    def test_limit_is_continuous(self, small_problem):
        data, weights, _ = small_problem
        hard = solve_hard_criterion(weights, data.y_labeled)
        deviations = []
        for lam in (1e-2, 1e-4, 1e-6, 1e-8):
            soft = solve_soft_criterion(weights, data.y_labeled, lam)
            deviations.append(
                np.max(np.abs(soft.unlabeled_scores - hard.unlabeled_scores))
            )
        assert all(b < a for a, b in zip(deviations, deviations[1:]))
        assert deviations[-1] < 1e-6


class TestProposition22:
    """Proposition II.2: lam -> inf collapses to the labeled mean."""

    def test_collapse_to_labeled_mean(self, small_problem):
        data, weights, _ = small_problem
        mean = data.y_labeled.mean()
        soft = solve_soft_criterion(weights, data.y_labeled, 1e9)
        np.testing.assert_allclose(
            soft.scores, np.full(weights.shape[0], mean), atol=1e-5
        )

    def test_infinity_limit_helper(self):
        limit = soft_lambda_infinity_limit(np.array([1.0, 0.0, 1.0]), 5)
        np.testing.assert_allclose(limit, np.full(5, 2.0 / 3.0))

    def test_infinity_limit_rejects_short_total(self):
        with pytest.raises(DataValidationError):
            soft_lambda_infinity_limit(np.ones(5), 3)

    def test_monotone_shrinkage_toward_mean(self, small_problem):
        """Distance to the mean vector decreases along increasing lambda."""
        data, weights, _ = small_problem
        mean = data.y_labeled.mean()
        distances = []
        for lam in (0.1, 1.0, 10.0, 100.0):
            soft = solve_soft_criterion(weights, data.y_labeled, lam)
            distances.append(np.max(np.abs(soft.scores - mean)))
        assert all(b < a for a, b in zip(distances, distances[1:]))


class TestValidationAndErrors:
    def test_negative_lambda_raises(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(DataValidationError):
            solve_soft_criterion(weights, data.y_labeled, -0.1)

    def test_unknown_method_raises(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(ConfigurationError, match="method"):
            solve_soft_criterion(weights, data.y_labeled, 0.1, method="magic")

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            solve_soft_criterion(disconnected_weights, np.array([1.0, 0.0]), 0.1)

    def test_too_many_labels_raises(self, tiny_weights):
        with pytest.raises(DataValidationError):
            solve_soft_criterion(tiny_weights, np.ones(5), 0.1)

    def test_no_unlabeled_shrinks_labels(self, rng):
        """With m = 0 the soft criterion is ridge-like on the labels."""
        from repro.graph.similarity import full_kernel_graph

        x = rng.normal(size=(6, 2))
        graph = full_kernel_graph(x, bandwidth=1.0)
        y = rng.normal(size=6)
        fit = solve_soft_criterion(graph.weights, y, 0.5, method="schur")
        assert fit.scores.shape == (6,)
        # Shrinkage: the fitted spread cannot exceed the label spread.
        assert fit.scores.std() < y.std() + 1e-12

    def test_labeled_scores_not_clamped(self, small_problem):
        """Unlike the hard criterion, soft smooths the labeled scores."""
        data, weights, _ = small_problem
        fit = solve_soft_criterion(weights, data.y_labeled, 1.0)
        assert np.max(np.abs(fit.labeled_scores - data.y_labeled)) > 1e-3


class TestObjectiveHelper:
    def test_perfect_fit_zero_loss(self, tiny_weights):
        scores = np.ones(4)
        value = soft_criterion_objective(tiny_weights, np.ones(2), scores, 2.0)
        assert value == pytest.approx(0.0)

    def test_decomposition(self, tiny_weights, rng):
        y = rng.normal(size=2)
        scores = rng.normal(size=4)
        lam = 0.7
        loss = np.sum((y - scores[:2]) ** 2)
        diffs = scores[:, None] - scores[None, :]
        penalty = 0.5 * lam * np.sum(tiny_weights * diffs**2)
        got = soft_criterion_objective(tiny_weights, y, scores, lam)
        assert got == pytest.approx(loss + penalty, rel=1e-10)
