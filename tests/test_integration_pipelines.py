"""Integration tests: full user-facing pipelines on realistic scenarios."""

import numpy as np

from repro.core.estimators import (
    GraphSSLClassifier,
    HardLabelPropagation,
    NadarayaWatsonClassifier,
    SoftLabelPropagation,
)
from repro.core.baselines import KNNClassifier, MeanPredictor
from repro.datasets.coil import make_coil_like
from repro.datasets.splits import paper_coil_protocol
from repro.datasets.synthetic import make_synthetic_dataset
from repro.datasets.toy import concentric_circles, two_moons
from repro.metrics.classification import accuracy, auc
from repro.metrics.regression import root_mean_squared_error


class TestTwoMoonsScenario:
    """The classic SSL showcase: few labels + manifold structure."""

    def test_hard_criterion_nails_two_moons(self):
        x, y = two_moons(300, noise=0.06, seed=0)
        # Label only 5 points per moon.
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
        )
        unlabeled_idx = np.setdiff1d(np.arange(300), labeled_idx)
        model = GraphSSLClassifier(bandwidth=0.25)
        model.fit(x[labeled_idx], y[labeled_idx], x[unlabeled_idx])
        assert accuracy(y[unlabeled_idx], model.predict()) > 0.9

    def test_ssl_beats_knn_with_scarce_labels(self):
        x, y = two_moons(400, noise=0.06, seed=1)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:4], np.flatnonzero(y == 1.0)[:4]]
        )
        unlabeled_idx = np.setdiff1d(np.arange(400), labeled_idx)
        ssl = GraphSSLClassifier(bandwidth=0.25)
        ssl.fit(x[labeled_idx], y[labeled_idx], x[unlabeled_idx])
        ssl_acc = accuracy(y[unlabeled_idx], ssl.predict())
        knn = KNNClassifier(k=3).fit(x[labeled_idx], y[labeled_idx])
        knn_acc = accuracy(y[unlabeled_idx], knn.predict(x[unlabeled_idx]))
        assert ssl_acc >= knn_acc

    def test_circles_scenario(self):
        x, y = concentric_circles(300, radii=(1.0, 2.5), noise=0.08, seed=2)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
        )
        unlabeled_idx = np.setdiff1d(np.arange(300), labeled_idx)
        model = GraphSSLClassifier(bandwidth=0.4)
        model.fit(x[labeled_idx], y[labeled_idx], x[unlabeled_idx])
        assert accuracy(y[unlabeled_idx], model.predict()) > 0.9


class TestSyntheticScenario:
    def test_hard_beats_mean_baseline(self):
        data = make_synthetic_dataset(200, 30, seed=3)
        hard = HardLabelPropagation(bandwidth="paper")
        scores = hard.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
        hard_rmse = root_mean_squared_error(data.q_unlabeled, scores)
        baseline = MeanPredictor().fit(data.x_labeled, data.y_labeled)
        mean_rmse = root_mean_squared_error(
            data.q_unlabeled, baseline.predict(data.x_unlabeled)
        )
        assert hard_rmse < mean_rmse

    def test_hard_beats_large_lambda_soft(self):
        """The paper's punchline as a single pipeline comparison."""
        totals = [0.0, 0.0]
        for seed in range(10):
            data = make_synthetic_dataset(150, 30, seed=100 + seed)
            hard = HardLabelPropagation(bandwidth="paper")
            soft = SoftLabelPropagation(5.0, bandwidth="paper")
            for slot, model in enumerate((hard, soft)):
                scores = model.fit_predict(
                    data.x_labeled, data.y_labeled, data.x_unlabeled
                )
                totals[slot] += root_mean_squared_error(data.q_unlabeled, scores)
        assert totals[0] < totals[1]

    def test_nw_classifier_comparable_to_hard(self):
        data = make_synthetic_dataset(300, 40, seed=5)
        hard = GraphSSLClassifier(bandwidth="paper")
        hard.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        hard_auc = auc(data.y_unlabeled, hard.decision_scores())
        nw = NadarayaWatsonClassifier(bandwidth="paper")
        nw.fit(data.x_labeled, data.y_labeled)
        nw_auc = auc(data.y_unlabeled, nw.predict_proba(data.x_unlabeled))
        assert abs(hard_auc - nw_auc) < 0.1


class TestCoilScenario:
    def test_coil_pipeline_end_to_end(self):
        """Dataset -> protocol splits -> classifier -> AUC, all public API."""
        dataset = make_coil_like(images_per_class=30, seed=7)
        aucs = []
        for labeled_idx, unlabeled_idx in paper_coil_protocol(
            dataset.n_samples, "80/20", repeats=1, seed=0
        ):
            model = GraphSSLClassifier(bandwidth="median")
            model.fit(
                dataset.images[labeled_idx],
                dataset.binary_labels[labeled_idx],
                dataset.images[unlabeled_idx],
            )
            aucs.append(
                auc(dataset.binary_labels[unlabeled_idx], model.decision_scores())
            )
        assert len(aucs) == 5
        assert np.mean(aucs) > 0.55  # informative, mid-range like the paper

    def test_sparse_graph_pipeline(self):
        """The k-NN sparsifier works through the estimator interface."""
        dataset = make_coil_like(images_per_class=25, seed=8)
        n_lab = 120
        model = GraphSSLClassifier(
            bandwidth="median", graph="knn", graph_params={"k": 15}
        )
        model.fit(
            dataset.images[:n_lab],
            dataset.binary_labels[:n_lab],
            dataset.images[n_lab:],
        )
        score = auc(dataset.binary_labels[n_lab:], model.decision_scores())
        assert score > 0.5
