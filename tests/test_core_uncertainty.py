"""Unit tests for the Gaussian-field posterior (uncertainty quantification)."""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.uncertainty import gaussian_field_posterior
from repro.exceptions import DataValidationError, DisconnectedGraphError


class TestPosterior:
    def test_mean_is_hard_solution(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        hard = solve_hard_criterion(weights, data.y_labeled)
        np.testing.assert_allclose(posterior.mean, hard.unlabeled_scores, atol=1e-10)

    def test_covariance_is_grounded_laplacian_inverse(self, small_problem):
        data, weights, _ = small_problem
        n = data.n_labeled
        posterior = gaussian_field_posterior(weights, data.y_labeled, field_scale=2.0)
        degrees = weights.sum(axis=1)
        grounded = np.diag(degrees[n:]) - weights[n:, n:]
        np.testing.assert_allclose(
            posterior.covariance, 4.0 * np.linalg.inv(grounded), atol=1e-8
        )

    def test_covariance_spd(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        np.testing.assert_allclose(
            posterior.covariance, posterior.covariance.T, atol=1e-10
        )
        assert np.linalg.eigvalsh(posterior.covariance).min() > 0

    def test_field_scale_scales_variance_not_mean(self, small_problem):
        data, weights, _ = small_problem
        p1 = gaussian_field_posterior(weights, data.y_labeled, field_scale=1.0)
        p3 = gaussian_field_posterior(weights, data.y_labeled, field_scale=3.0)
        np.testing.assert_allclose(p1.mean, p3.mean)
        np.testing.assert_allclose(9.0 * p1.variance, p3.variance, rtol=1e-10)

    def test_variance_larger_far_from_labels(self):
        """On a path labeled at one end, variance grows with distance."""
        length = 6
        w = np.zeros((length, length))
        for i in range(length - 1):
            w[i, i + 1] = w[i + 1, i] = 1.0
        posterior = gaussian_field_posterior(w, np.array([0.5]))
        assert np.all(np.diff(posterior.variance) > 0)

    def test_credible_interval_contains_mean(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        low, high = posterior.credible_interval()
        assert np.all(low < posterior.mean)
        assert np.all(posterior.mean < high)

    def test_credible_interval_z_validation(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        with pytest.raises(DataValidationError):
            posterior.credible_interval(z=0.0)

    def test_most_uncertain_ordering(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        top3 = posterior.most_uncertain(3)
        variances = posterior.variance
        assert variances[top3[0]] >= variances[top3[1]] >= variances[top3[2]]
        assert variances[top3[0]] == variances.max()

    def test_most_uncertain_count_validation(self, small_problem):
        data, weights, _ = small_problem
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        with pytest.raises(DataValidationError):
            posterior.most_uncertain(0)
        with pytest.raises(DataValidationError):
            posterior.most_uncertain(posterior.mean.shape[0] + 1)

    def test_requires_unlabeled(self, tiny_weights):
        with pytest.raises(DataValidationError):
            gaussian_field_posterior(tiny_weights, np.ones(4))

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            gaussian_field_posterior(disconnected_weights, np.array([1.0, 0.0]))

    def test_conditioning_consistency_with_resistance(self, small_problem):
        """Variance relates to graph coupling: the unlabeled vertex with
        the largest total weight to the labeled set is not the most
        uncertain one."""
        data, weights, _ = small_problem
        n = data.n_labeled
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        labeled_mass = weights[n:, :n].sum(axis=1)
        most_connected = int(np.argmax(labeled_mass))
        assert posterior.variance[most_connected] < posterior.variance.max()
