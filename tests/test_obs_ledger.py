"""Tests for the run ledger (repro.obs.ledger) and trend gate (repro.obs.trend)."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import BenchRecord, BenchRecorder
from repro.obs.ledger import RunLedger, render_span_tree
from repro.obs.progress import ProgressEmitter
from repro.obs.trend import history_series, render_trend_report, trend_runs


def _write_bench_run(directory, run_id, samples_by_name, created=None):
    """A BENCH_*.json on disk, optionally with a pinned creation time."""
    recorder = BenchRecorder(scale="quick", run_id=run_id)
    for name, samples in samples_by_name.items():
        recorder.add(BenchRecord.from_samples(name, samples))
    path = recorder.write_run(directory)
    if created is not None:
        data = json.loads(path.read_text())
        data["created_unix"] = created
        for record in data["benchmarks"]:
            record["created_unix"] = created
        path.write_text(json.dumps(data))
    return path


def _bench_run_dict(run_id, created, samples_by_name):
    """An in-memory bench-run dict (for trend unit tests)."""
    records = []
    for name, samples in samples_by_name.items():
        record = BenchRecord.from_samples(name, samples).to_dict()
        record["created_unix"] = created
        records.append(record)
    return {
        "run_id": run_id,
        "created_unix": created,
        "scale": "quick",
        "environment": {"schema": "repro.env/v1", "git_sha": run_id},
        "benchmarks": records,
    }


def _write_progress(path, *, interrupt=False):
    emitter = ProgressEmitter(jsonl_path=path, run_id=path.stem)
    task = emitter.task("work", total=3)
    task.__enter__()
    task.replicate_done(0)
    if interrupt:
        task.__exit__(KeyboardInterrupt, KeyboardInterrupt(), None)
    else:
        task.replicate_done(1)
        task.replicate_done(2)
        task.__exit__(None, None, None)
    emitter.close()
    return path


def _write_trace(path):
    from repro import obs
    from repro.obs.export import write_jsonl

    tracer = obs.RecordingTracer(track_memory=True)
    with obs.use_tracer(tracer):
        with obs.span("outer", n=5):
            with obs.span("inner", kind="test"):
                _ = [0.0] * 20000
    return write_jsonl(tracer, path)


class TestIngestion:
    def test_bench_run_ingested(self, tmp_path):
        path = _write_bench_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(path)
            assert (result.run_id, result.kind) == ("r1", "bench")
            assert result.n_records == 1 and not result.replaced
            assert ledger.bench_names() == ["solve"]

    def test_single_record_twin_ingested(self, tmp_path):
        record = BenchRecord.from_samples("micro", [0.01, 0.011])
        twin = record.write_json(tmp_path / "micro.json")
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(twin)
            assert result.kind == "bench"
            assert ledger.bench_names() == ["micro"]

    def test_reingest_replaces_not_duplicates(self, tmp_path):
        path = _write_bench_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            assert not ledger.ingest(path).replaced
            assert ledger.ingest(path).replaced
            assert len(ledger.runs()) == 1
            assert len(ledger.history("solve")) == 1

    def test_trace_ingested_with_memory_columns(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(path)
            assert result.kind == "trace"
            records = ledger.span_records(result.run_id)
        names = [r["name"] for r in records]
        assert names == ["outer", "inner"]
        assert "memory.peak_bytes" in records[0]["attributes"]
        tree = render_span_tree(records)
        assert "outer" in tree and "peak MB" in tree

    def test_metrics_dump_ingested(self, tmp_path):
        from repro import obs
        from repro.obs.export import dump_metrics_json

        registry = obs.MetricsRegistry()
        registry.counter("solves.hard").inc(3)
        dump = dump_metrics_json(registry, tmp_path / "m.json", command="toy")
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(dump)
            assert result.kind == "metrics"
            assert result.n_records == 1
            detail = ledger.show(result.run_id)
        assert "solves.hard" in detail["artifacts"][0]["metrics"]

    def test_complete_progress_stream(self, tmp_path):
        path = _write_progress(tmp_path / "p.jsonl")
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(path)
            assert (result.kind, result.status) == ("progress", "complete")
            events = ledger.progress_events(result.run_id)
        assert [e["type"] for e in events][-1] == "end"

    def test_interrupted_progress_is_partial(self, tmp_path):
        path = _write_progress(tmp_path / "p.jsonl", interrupt=True)
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            result = ledger.ingest(path)
        assert result.status == "partial"

    def test_killed_mid_run_prefix_is_partial(self, tmp_path):
        """A stream with no end event at all (process killed) is partial."""
        path = _write_progress(tmp_path / "p.jsonl")
        lines = path.read_text().splitlines()
        truncated = tmp_path / "killed.jsonl"
        truncated.write_text("\n".join(lines[:4]) + "\n")  # header..first replicate
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            assert ledger.ingest(truncated).status == "partial"

    def test_unknown_artifact_rejected(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text('{"hello": "world"}')
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            with pytest.raises(ValueError, match="not a recognized"):
                ledger.ingest(junk)

    def test_runs_listing_carries_provenance(self, tmp_path):
        path = _write_bench_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            ledger.ingest(path)
            (row,) = ledger.runs()
        assert row["run_id"] == "r1"
        assert row["git_sha"] is not None or row["env_digest"] is not None
        assert row["n_records"] == 1


class TestHistory:
    def test_history_spans_multiple_runs_in_time_order(self, tmp_path):
        a = _write_bench_run(tmp_path / "a", "r1", {"solve": [0.10, 0.11]}, created=100.0)
        b = _write_bench_run(tmp_path / "b", "r2", {"solve": [0.12, 0.13]}, created=200.0)
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            ledger.ingest(b)  # ingest out of order on purpose
            ledger.ingest(a)
            points = ledger.history("solve")
        assert [p.run_id for p in points] == ["r1", "r2"]
        assert points[0].record.min_s == pytest.approx(0.10)
        assert points[1].record.min_s == pytest.approx(0.12)

    def test_history_series_pure_function(self):
        runs = [
            _bench_run_dict("r1", 100.0, {"solve": [0.1]}),
            _bench_run_dict("r2", 200.0, {"solve": [0.2]}),
            _bench_run_dict("r3", 300.0, {"other": [0.3]}),
        ]
        points = history_series(runs, "solve")
        assert [p.run_id for p in points] == ["r1", "r2"]
        # provenance comes from the record's own fingerprint when present
        assert points[0].env_digest is not None


class TestTrendGate:
    def _runs(self, mins, repeats=3):
        return [
            _bench_run_dict(
                f"r{i}", 100.0 * (i + 1), {"solve": [m] * repeats}
            )
            for i, m in enumerate(mins)
        ]

    def test_steady_series_ok(self):
        report = trend_runs(self._runs([0.10, 0.102, 0.098, 0.101]))
        (entry,) = report.entries
        assert entry.status == "ok"
        assert report.ok

    def test_sustained_regression_detected(self):
        report = trend_runs(self._runs([0.10, 0.10, 0.15, 0.16]))
        (entry,) = report.entries
        assert entry.status == "regression"
        assert entry.ratio == pytest.approx(1.6)
        assert not report.ok

    def test_single_noisy_run_does_not_gate(self):
        # last run regressed but the one before it did not: not sustained
        report = trend_runs(self._runs([0.10, 0.10, 0.101, 0.16]))
        (entry,) = report.entries
        assert entry.status == "ok"

    def test_slow_creep_caught_via_best_prior_baseline(self):
        # no adjacent pair exceeds 15%, but the last two are far above
        # the best early measurement
        report = trend_runs(self._runs([0.10, 0.11, 0.121, 0.13, 0.14]))
        (entry,) = report.entries
        assert entry.status == "regression"

    def test_low_repeat_runs_never_gate(self):
        report = trend_runs(self._runs([0.10, 0.10, 0.20, 0.20], repeats=1))
        (entry,) = report.entries
        assert entry.status == "informational"
        assert report.ok

    def test_needs_sustain_plus_one_eligible_runs(self):
        report = trend_runs(self._runs([0.10, 0.20]))
        (entry,) = report.entries
        assert entry.status == "informational"

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            trend_runs([], threshold=0.0)
        with pytest.raises(ValueError):
            trend_runs([], sustain=0)
        with pytest.raises(ValueError):
            trend_runs([], min_repeats=0)

    def test_render_names_the_regression(self):
        report = trend_runs(self._runs([0.10, 0.10, 0.15, 0.16]))
        text = render_trend_report(report)
        assert "solve" in text and "regression" in text


class TestObsCli:
    def _ledger_args(self, tmp_path):
        return ["--ledger", str(tmp_path / "L.sqlite")]

    def test_ingest_and_runs(self, capsys, tmp_path):
        path = _write_bench_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        assert main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ingested bench run r1" in out
        assert main(["obs", "runs", *self._ledger_args(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "r1" in out and "bench" in out

    def test_ingest_glob_pattern(self, capsys, tmp_path):
        _write_bench_run(tmp_path / "a", "r1", {"solve": [0.1]}, created=100.0)
        _write_bench_run(tmp_path / "b", "r2", {"solve": [0.1]}, created=200.0)
        pattern = str(tmp_path) + "/*/BENCH_*.json"
        assert main(["obs", "ingest", pattern, *self._ledger_args(tmp_path)]) == 0
        capsys.readouterr()
        main(["obs", "runs", *self._ledger_args(tmp_path)])
        out = capsys.readouterr().out
        assert "r1" in out and "r2" in out

    def test_ingest_missing_file_exits_two(self, capsys, tmp_path):
        code = main([
            "obs", "ingest", str(tmp_path / "gone.json"),
            *self._ledger_args(tmp_path),
        ])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_history_across_two_runs(self, capsys, tmp_path):
        a = _write_bench_run(tmp_path / "a", "r1", {"solve": [0.10, 0.11, 0.12]},
                             created=100.0)
        b = _write_bench_run(tmp_path / "b", "r2", {"solve": [0.12, 0.13, 0.14]},
                             created=200.0)
        main(["obs", "ingest", str(a), str(b), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "history", "solve", *self._ledger_args(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert out.index("r1") < out.index("r2")

    def test_history_unknown_bench_hints_known_names(self, capsys, tmp_path):
        path = _write_bench_run(tmp_path, "r1", {"solve": [0.1]})
        main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "history", "nope", *self._ledger_args(tmp_path)]) == 2
        assert "solve" in capsys.readouterr().err

    def test_trend_exit_one_on_injected_regression(self, capsys, tmp_path):
        mins = [0.010, 0.010, 0.015, 0.016]
        for i, m in enumerate(mins):
            path = _write_bench_run(
                tmp_path / f"run{i}", f"r{i}",
                {"solve": [m, m * 1.01, m * 1.02]},
                created=100.0 * (i + 1),
            )
            main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "trend", *self._ledger_args(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_trend_exit_zero_on_steady_series(self, capsys, tmp_path):
        for i in range(3):
            path = _write_bench_run(
                tmp_path / f"run{i}", f"r{i}",
                {"solve": [0.01, 0.0101, 0.0102]},
                created=100.0 * (i + 1),
            )
            main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "trend", *self._ledger_args(tmp_path)]) == 0
        capsys.readouterr()

    def test_trend_empty_ledger_exits_zero(self, capsys, tmp_path):
        assert main(["obs", "trend", *self._ledger_args(tmp_path)]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_show_progress_run(self, capsys, tmp_path):
        path = _write_progress(tmp_path / "p.jsonl", interrupt=True)
        main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "show", "p", *self._ledger_args(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "status=partial" in out
        assert "1/3" in out

    def test_show_unknown_run_exits_two(self, capsys, tmp_path):
        assert main(["obs", "show", "ghost", *self._ledger_args(tmp_path)]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_span_tree_renders_memory_columns(self, capsys, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        main(["obs", "ingest", str(path), *self._ledger_args(tmp_path)])
        capsys.readouterr()
        with RunLedger(tmp_path / "L.sqlite") as ledger:
            run_id = ledger.runs(kind="trace")[0]["run_id"]
        assert main(["obs", "span-tree", run_id, *self._ledger_args(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out and "peak MB" in out
