"""Unit tests for the supervised baselines."""

import numpy as np
import pytest

from repro.core.baselines import KNNClassifier, KNNRegressor, MeanPredictor
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


class TestKNNRegressor:
    def test_k1_returns_nearest_label(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNNRegressor(k=1).fit(x, y)
        got = model.predict(np.array([[0.1], [1.9]]))
        np.testing.assert_array_equal(got, [10.0, 30.0])

    def test_uniform_average(self):
        x = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNNRegressor(k=2).fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(1.0)

    def test_distance_weighting(self):
        x = np.array([[0.0], [3.0]])
        y = np.array([0.0, 3.0])
        model = KNNRegressor(k=2, weighting="distance").fit(x, y)
        # Query at 1.0: weights 1/1 and 1/2 -> (0*1 + 3*0.5) / 1.5 = 1.0
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(1.0)

    def test_distance_weighting_exact_match(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([5.0, 9.0])
        model = KNNRegressor(k=2, weighting="distance").fit(x, y)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(9.0)

    def test_k_larger_than_train_raises(self):
        with pytest.raises(DataValidationError):
            KNNRegressor(k=5).fit(np.zeros((3, 1)), np.zeros(3))

    def test_invalid_constructor_args(self):
        with pytest.raises(ConfigurationError):
            KNNRegressor(k=0)
        with pytest.raises(ConfigurationError):
            KNNRegressor(weighting="cosine")

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNNRegressor().predict(np.zeros((1, 2)))

    def test_k_equals_n_gives_global_mean(self, rng):
        x = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        model = KNNRegressor(k=10).fit(x, y)
        got = model.predict(rng.normal(size=(3, 2)))
        np.testing.assert_allclose(got, np.full(3, y.mean()), atol=1e-12)


class TestKNNClassifier:
    def test_requires_binary(self, rng):
        with pytest.raises(DataValidationError, match="binary"):
            KNNClassifier().fit(rng.normal(size=(5, 2)), np.arange(5.0))

    def test_proba_is_neighbour_fraction(self):
        x = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array([1.0, 1.0, 0.0, 0.0])
        model = KNNClassifier(k=3).fit(x, y)
        assert model.predict_proba(np.array([[0.05]]))[0] == pytest.approx(2 / 3)

    def test_predict_thresholds(self):
        x = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([1.0, 1.0, 0.0, 0.0])
        model = KNNClassifier(k=2).fit(x, y)
        np.testing.assert_array_equal(model.predict(np.array([[0.0], [5.0]])), [1.0, 0.0])

    def test_tie_breaks_positive(self):
        """A 50/50 neighbourhood vote maps to the positive class."""
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        model = KNNClassifier(k=2).fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == 1.0

    def test_separable_clusters_perfect(self, rng):
        x0 = rng.normal(size=(30, 2))
        x1 = rng.normal(size=(30, 2)) + 10.0
        x = np.vstack([x0, x1])
        y = np.concatenate([np.zeros(30), np.ones(30)])
        model = KNNClassifier(k=5).fit(x, y)
        queries = np.vstack([rng.normal(size=(5, 2)), rng.normal(size=(5, 2)) + 10.0])
        expected = np.concatenate([np.zeros(5), np.ones(5)])
        np.testing.assert_array_equal(model.predict(queries), expected)


class TestMeanPredictor:
    def test_predicts_mean_everywhere(self, rng):
        x = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        model = MeanPredictor().fit(x, y)
        got = model.predict(rng.normal(size=(7, 3)))
        np.testing.assert_allclose(got, np.full(7, y.mean()))

    def test_matches_soft_infinity_limit(self, rng):
        from repro.core.soft import soft_lambda_infinity_limit

        y = rng.normal(size=10)
        model = MeanPredictor().fit(rng.normal(size=(10, 2)), y)
        got = model.predict(rng.normal(size=(4, 2)))
        limit = soft_lambda_infinity_limit(y, 14)
        np.testing.assert_allclose(got, limit[10:])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MeanPredictor().predict(np.zeros((1, 2)))
