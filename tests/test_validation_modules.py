"""Tests for the proof-construct and consistency validation modules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.validation.consistency import run_consistency_curve
from repro.validation.proof_constructs import (
    proof_construct_snapshot,
    run_proof_construct_sweep,
)


class TestProofConstructSnapshot:
    def test_snapshot_quantities_valid(self):
        snap = proof_construct_snapshot(n_labeled=80, n_unlabeled=15, seed=0)
        assert snap.n == 80 and snap.m == 15
        assert 0 < snap.tiny_elements_max < 1
        assert snap.spectral_radius < 1.0
        assert np.isfinite(snap.neumann_max)
        assert snap.g_max <= snap.g_envelope + 1e-12
        assert snap.hard_nw_gap >= 0

    def test_g_bounded_by_unlabeled_mass(self):
        """|g_(n+a)| <= sum_{k>n} w_{k,n+a} / d_{n+a}: the proof's bound."""
        snap = proof_construct_snapshot(n_labeled=60, n_unlabeled=30, seed=1)
        assert snap.g_max <= snap.g_envelope

    def test_explicit_bandwidth_respected(self):
        snap = proof_construct_snapshot(
            n_labeled=50, n_unlabeled=10, bandwidth=0.9, seed=0
        )
        assert snap.bandwidth == 0.9


class TestProofConstructSweep:
    def test_constructs_shrink_with_n(self):
        """The proof's 'with probability approaching 1' made numerical:
        every tracked quantity decreases from the smallest to largest n."""
        snaps = run_proof_construct_sweep(
            n_values=(50, 200, 800), n_unlabeled=15, seed=0
        )
        tiny = [s.tiny_elements_max for s in snaps]
        gaps = [s.hard_nw_gap for s in snaps]
        gs = [s.g_max for s in snaps]
        assert tiny[-1] < tiny[0]
        assert gaps[-1] < gaps[0]
        assert gs[-1] < gs[0]

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            run_proof_construct_sweep(n_values=(50,))


class TestPhiConcentration:
    def test_bound_holds_and_concentrates(self):
        from repro.validation.proof_constructs import run_phi_concentration

        result = run_phi_concentration(
            n_values=(100, 400, 1600),
            dim=2,
            delta_h=0.15,
            epsilon=0.3,
            n_replicates=150,
            seed=0,
        )
        assert result.bound_holds
        assert result.concentrates
        # At the largest n the ratio has essentially concentrated.
        assert result.exceedance[-1] < 0.05

    def test_chebyshev_bound_formula(self):
        from repro.core.theory import volume_unit_ball
        from repro.validation.proof_constructs import run_phi_concentration

        result = run_phi_concentration(
            n_values=(200,), dim=2, delta_h=0.1, epsilon=0.5,
            n_replicates=10, seed=1,
        )
        mass = volume_unit_ball(2) * 0.1**2
        expected = min(1.0, 1.0 / (0.25 * 200 * mass))
        assert result.chebyshev_bound[0] == pytest.approx(expected)

    def test_validation(self):
        from repro.validation.proof_constructs import run_phi_concentration

        with pytest.raises(ConfigurationError):
            run_phi_concentration(delta_h=0.6, n_replicates=1)
        with pytest.raises(ConfigurationError):
            run_phi_concentration(epsilon=0.0, n_replicates=1)


class TestConsistencyCurve:
    def test_rmse_decreases_and_nw_shadowed(self):
        curve = run_consistency_curve(
            n_values=(25, 100, 400),
            n_unlabeled=10,
            n_replicates=20,
            seed=0,
        )
        assert curve.rmse_decreases
        # Hard tracks NW: their RMSEs agree within 20% at the largest n.
        assert curve.hard_rmse[-1] == pytest.approx(curve.nw_rmse[-1], rel=0.2)

    def test_exceedance_probability_decreases(self):
        curve = run_consistency_curve(
            n_values=(25, 400),
            n_unlabeled=10,
            epsilon=0.4,
            n_replicates=30,
            seed=1,
        )
        assert curve.exceedance[-1] <= curve.exceedance[0]

    def test_rows_align(self):
        curve = run_consistency_curve(
            n_values=(25, 50), n_unlabeled=5, n_replicates=2, seed=0
        )
        rows = curve.to_rows()
        assert len(rows) == 2
        assert len(rows[0]) == len(curve.headers())

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            run_consistency_curve(n_values=(50,), n_replicates=1)
        with pytest.raises(ConfigurationError):
            run_consistency_curve(n_values=(50, 100), epsilon=0.0, n_replicates=1)
