"""Property-based tests (hypothesis) on the core invariants.

Strategy note: weight matrices are generated as kernel matrices of random
point clouds (always symmetric, positive, well-conditioned) rather than
raw random matrices, so every generated instance is a *valid* similarity
graph and the properties under test are the mathematical ones, not input
validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.core.soft import solve_soft_criterion
from repro.graph.laplacian import laplacian
from repro.graph.similarity import full_kernel_graph
from repro.metrics.classification import auc
from repro.metrics.regression import root_mean_squared_error


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def graph_problems(min_labeled=2, max_labeled=8, min_unlabeled=1, max_unlabeled=6):
    """A (weights, y_labeled) pair from a random point cloud."""

    @st.composite
    def _build(draw):
        n = draw(st.integers(min_labeled, max_labeled))
        m = draw(st.integers(min_unlabeled, max_unlabeled))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.0, 1.0, size=(n + m, 3))
        weights = full_kernel_graph(x, bandwidth=1.5).dense_weights()
        y = rng.uniform(-5.0, 5.0, size=n)
        return weights, y

    return _build()


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Hard criterion invariants
# ----------------------------------------------------------------------

class TestHardCriterionProperties:
    @given(problem=graph_problems())
    @settings(max_examples=40, deadline=None)
    def test_maximum_principle(self, problem):
        """Harmonic scores never leave the labeled range."""
        weights, y = problem
        fit = solve_hard_criterion(weights, y)
        assert fit.unlabeled_scores.min() >= y.min() - 1e-8
        assert fit.unlabeled_scores.max() <= y.max() + 1e-8

    @given(problem=graph_problems(), shift=finite_floats, scale=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_affine_equivariance(self, problem, shift, scale):
        """Solving with a*y + b gives a*f + b (the solution is linear in y)."""
        weights, y = problem
        base = solve_hard_criterion(weights, y).unlabeled_scores
        transformed = solve_hard_criterion(weights, scale * y + shift).unlabeled_scores
        np.testing.assert_allclose(
            transformed, scale * base + shift, atol=1e-6 * (1 + abs(shift) + abs(scale) * np.abs(base).max())
        )

    @given(problem=graph_problems())
    @settings(max_examples=40, deadline=None)
    def test_constant_labels_propagate_exactly(self, problem):
        weights, y = problem
        constant = np.full(y.shape, 2.5)
        fit = solve_hard_criterion(weights, constant)
        np.testing.assert_allclose(
            fit.unlabeled_scores, np.full(fit.n_unlabeled, 2.5), atol=1e-8
        )

    @given(problem=graph_problems())
    @settings(max_examples=40, deadline=None)
    def test_weight_scaling_invariance(self, problem):
        """Rescaling all weights by c > 0 leaves the solution unchanged."""
        weights, y = problem
        base = solve_hard_criterion(weights, y).unlabeled_scores
        scaled = solve_hard_criterion(3.7 * weights, y).unlabeled_scores
        np.testing.assert_allclose(scaled, base, atol=1e-8)


# ----------------------------------------------------------------------
# Soft criterion invariants
# ----------------------------------------------------------------------

class TestSoftCriterionProperties:
    @given(problem=graph_problems(), lam=st.floats(1e-4, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_schur_equals_full(self, problem, lam):
        weights, y = problem
        full = solve_soft_criterion(weights, y, lam, method="full")
        schur = solve_soft_criterion(weights, y, lam, method="schur")
        scale = 1 + np.abs(full.scores).max()
        np.testing.assert_allclose(schur.scores, full.scores, atol=1e-7 * scale)

    @given(problem=graph_problems(), lam=st.floats(1e-3, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_objective_no_worse_than_competitors(self, problem, lam):
        """The solver's objective value beats hard clamping and the mean."""
        from repro.core.soft import soft_criterion_objective

        weights, y = problem
        fit = solve_soft_criterion(weights, y, lam)
        value = soft_criterion_objective(weights, y, fit.scores, lam)
        hard_scores = solve_hard_criterion(weights, y).scores
        mean_scores = np.full(weights.shape[0], y.mean())
        assert value <= soft_criterion_objective(weights, y, hard_scores, lam) + 1e-8
        assert value <= soft_criterion_objective(weights, y, mean_scores, lam) + 1e-8

    @given(problem=graph_problems())
    @settings(max_examples=30, deadline=None)
    def test_soft_interpolates_hard_and_mean(self, problem):
        """Unlabeled soft scores move from the hard solution (lam small)
        toward the labeled mean (lam large)."""
        weights, y = problem
        hard = solve_hard_criterion(weights, y).unlabeled_scores
        small = solve_soft_criterion(weights, y, 1e-8).unlabeled_scores
        large = solve_soft_criterion(weights, y, 1e8).unlabeled_scores
        scale = 1 + np.abs(y).max()
        np.testing.assert_allclose(small, hard, atol=1e-4 * scale)
        np.testing.assert_allclose(
            large, np.full_like(large, y.mean()), atol=1e-4 * scale
        )


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------

class TestGraphProperties:
    @given(problem=graph_problems())
    @settings(max_examples=40, deadline=None)
    def test_laplacian_psd_and_zero_rowsum(self, problem):
        weights, _ = problem
        lap = laplacian(weights)
        np.testing.assert_allclose(
            lap.sum(axis=1), np.zeros(lap.shape[0]), atol=1e-9
        )
        assert np.linalg.eigvalsh(lap).min() >= -1e-8

    @given(problem=graph_problems())
    @settings(max_examples=40, deadline=None)
    def test_nw_is_convex_combination(self, problem):
        weights, y = problem
        nw = nadaraya_watson_from_weights(weights, y)
        assert nw.min() >= y.min() - 1e-9
        assert nw.max() <= y.max() + 1e-9


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------

class TestMetricProperties:
    @given(
        scores=hnp.arrays(
            np.float64,
            st.integers(4, 30),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_auc_monotone_transform_invariance(self, scores, seed):
        # Quantize so affine transforms cannot absorb sub-epsilon score
        # differences into ties (a floating-point artifact, not an AUC
        # property violation).
        scores = np.round(scores, 3)
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, scores.shape[0]).astype(float)
        y[0], y[1] = 0.0, 1.0
        base = auc(y, scores)
        assert auc(y, 2.0 * scores + 3.0) == pytest.approx(base, abs=1e-12)
        assert auc(y, np.tanh(scores / 10)) == pytest.approx(base, abs=1e-12)

    @given(
        y_pair=st.integers(0, 2**31 - 1),
        length=st.integers(2, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_rmse_nonnegative_zero_iff_equal(self, y_pair, length):
        rng = np.random.default_rng(y_pair)
        a = rng.normal(size=length)
        b = rng.normal(size=length)
        assert root_mean_squared_error(a, b) >= 0
        assert root_mean_squared_error(a, a) == 0.0
        if not np.array_equal(a, b):
            assert root_mean_squared_error(a, b) > 0

    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(4, 40))
    @settings(max_examples=50, deadline=None)
    def test_auc_label_flip_complement(self, seed, length):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, length).astype(float)
        y[0], y[1] = 0.0, 1.0
        scores = rng.normal(size=length)
        assert auc(y, scores) + auc(1 - y, scores) == pytest.approx(1.0, abs=1e-12)
