"""Tests for the eigenbasis baseline and the soft fixed-point iteration."""

import numpy as np
import pytest

from repro.core.eigenbasis import EigenbasisRegressor, solve_eigenbasis
from repro.core.propagation import propagate_soft
from repro.core.soft import solve_soft_criterion
from repro.datasets.toy import two_moons
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
    NotFittedError,
)
from repro.graph.similarity import full_kernel_graph


class TestSoftPropagation:
    @pytest.mark.parametrize("lam", [0.05, 0.5, 2.0])
    def test_fixed_point_matches_closed_form(self, small_problem, lam):
        data, weights, _ = small_problem
        prop = propagate_soft(weights, data.y_labeled, lam, tol=1e-13)
        closed = solve_soft_criterion(weights, data.y_labeled, lam, method="full")
        assert prop.converged
        np.testing.assert_allclose(prop.scores, closed.scores, atol=1e-9)

    def test_labeled_scores_not_clamped(self, small_problem):
        data, weights, _ = small_problem
        prop = propagate_soft(weights, data.y_labeled, 1.0, tol=1e-12)
        assert np.max(np.abs(prop.scores[: data.n_labeled] - data.y_labeled)) > 1e-3

    def test_sparse_input(self, small_problem):
        from scipy import sparse

        data, weights, _ = small_problem
        dense = propagate_soft(weights, data.y_labeled, 0.3, tol=1e-12)
        sp = propagate_soft(
            sparse.csr_matrix(weights), data.y_labeled, 0.3, tol=1e-12
        )
        np.testing.assert_allclose(sp.scores, dense.scores, atol=1e-9)

    def test_lambda_zero_rejected(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(DataValidationError, match="lam > 0"):
            propagate_soft(weights, data.y_labeled, 0.0)

    def test_budget_exhaustion(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(ConvergenceError):
            propagate_soft(weights, data.y_labeled, 0.5, tol=1e-15, max_iter=2)

    def test_larger_lambda_converges_more_slowly(self, small_problem):
        """Heavier smoothing couples vertices more strongly, so the
        fixed point takes more sweeps."""
        data, weights, _ = small_problem
        fast = propagate_soft(weights, data.y_labeled, 0.01, tol=1e-10)
        slow = propagate_soft(weights, data.y_labeled, 10.0, tol=1e-10)
        assert slow.iterations > fast.iterations


class TestEigenbasis:
    def test_solves_two_moons(self):
        x, y = two_moons(300, noise=0.07, seed=1)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:6], np.flatnonzero(y == 1.0)[:6]]
        )
        rest = np.setdiff1d(np.arange(300), labeled_idx)
        order = np.concatenate([labeled_idx, rest])
        graph = full_kernel_graph(x[order], bandwidth=0.25)
        fit = solve_eigenbasis(graph.weights, y[labeled_idx], n_components=6)
        predictions = (fit.unlabeled_scores >= 0.5).astype(float)
        assert np.mean(predictions == y[rest]) > 0.95

    def test_one_component_is_constant_fit(self, small_problem):
        """p=1: the basis is the constant vector, so every score equals
        the labeled mean (the connected graph's smoothest function)."""
        data, weights, _ = small_problem
        fit = solve_eigenbasis(weights, data.y_labeled, n_components=1)
        np.testing.assert_allclose(
            fit.scores, np.full(weights.shape[0], data.y_labeled.mean()), atol=1e-6
        )

    def test_ridge_caps_coefficient_blowup(self, small_problem):
        """On a flat graph, stronger ridge gives smaller score norms."""
        data, weights, _ = small_problem
        loose = solve_eigenbasis(
            weights, data.y_labeled, n_components=10, ridge=1e-9
        )
        tight = solve_eigenbasis(
            weights, data.y_labeled, n_components=10, ridge=1.0
        )
        assert np.abs(tight.scores).max() <= np.abs(loose.scores).max() + 1e-9

    def test_component_budget_validation(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(ConfigurationError):
            solve_eigenbasis(weights, data.y_labeled, n_components=0)
        with pytest.raises(ConfigurationError):
            solve_eigenbasis(
                weights, data.y_labeled, n_components=data.n_labeled + 1
            )
        with pytest.raises(ConfigurationError):
            solve_eigenbasis(
                weights, data.y_labeled, n_components=2, ridge=-1.0
            )

    def test_estimator_interface(self):
        x, y = two_moons(150, noise=0.07, seed=2)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
        )
        rest = np.setdiff1d(np.arange(150), labeled_idx)
        model = EigenbasisRegressor(5, bandwidth=0.25)
        scores = model.fit_predict(x[labeled_idx], y[labeled_idx], x[rest])
        assert scores.shape == (len(rest),)
        predictions = (scores >= 0.5).astype(float)
        assert np.mean(predictions == y[rest]) > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            EigenbasisRegressor(3).predict()

    def test_invalid_constructor(self):
        with pytest.raises(ConfigurationError):
            EigenbasisRegressor(0)
